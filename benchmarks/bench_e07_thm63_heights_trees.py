"""E7 -- Lemma 6.2 / Theorem 6.3: arbitrary heights on trees.

Claims reproduced: the narrow algorithm's certified ratio stays within
``(2*6^2+1)/(1-eps) = 73/(1-eps)`` and the combined wide/narrow
algorithm within ``80/(1-eps)``; measured ratios against the exact
optimum are far smaller.  The stage count per epoch grows like
``O((1/hmin) log(1/eps))`` as hmin shrinks -- the price of heights paid
in rounds, not in solution quality.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import solve_arbitrary_trees, solve_exact
from repro.algorithms.narrow_trees import solve_narrow_trees
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest

EPSILON = 0.1
HMINS = (0.5, 0.25, 0.1)


def run_experiment():
    rows = []
    stages_by_hmin = {}
    for hmin in HMINS:
        for seed in range(3):
            problem = random_tree_problem(
                random_forest(20, 2, seed=seed + 3),
                m=12,
                seed=seed + 60,
                height_profile="narrow",
                hmin=hmin,
            )
            narrow = solve_narrow_trees(problem, epsilon=EPSILON, seed=seed, hmin=hmin)
            narrow.solution.verify()
            opt = solve_exact(problem).profit
            measured = opt / narrow.profit if narrow.profit else float("inf")
            assert opt <= narrow.guarantee * narrow.profit + 1e-6
            assert narrow.guarantee <= 73.0 / (1 - EPSILON) + 1e-6
            stages = len(narrow.result.thresholds)
            stages_by_hmin[hmin] = stages
            rows.append(
                [hmin, seed, "narrow (Lem 6.2)", narrow.profit, opt, measured, stages]
            )
    # Stage count grows as hmin shrinks (the O(1/hmin) factor).
    assert stages_by_hmin[0.1] > stages_by_hmin[0.5]

    for seed in range(3):
        problem = random_tree_problem(
            random_forest(20, 2, seed=seed + 9),
            m=12,
            seed=seed + 90,
            height_profile="bimodal",
            hmin=0.2,
        )
        combined = solve_arbitrary_trees(problem, epsilon=EPSILON, seed=seed)
        combined.solution.verify()
        opt = solve_exact(problem).profit
        measured = opt / combined.profit if combined.profit else float("inf")
        assert opt <= combined.guarantee * combined.profit + 1e-6
        assert combined.guarantee <= 80.0 / (1 - EPSILON) + 1e-6
        rows.append([0.2, seed, "combined (Thm 6.3)", combined.profit, opt, measured, "-"])

    out = table(
        ["hmin", "seed", "algorithm", "profit", "exact OPT", "measured ratio", "stages/epoch"],
        rows,
    )
    return "E7 - Arbitrary heights on trees (Theorem 6.3)", out, stages_by_hmin


def bench_e07_arbitrary_trees(benchmark):
    problem = random_tree_problem(
        random_forest(20, 2, seed=9), m=12, seed=91,
        height_profile="bimodal", hmin=0.2,
    )
    report = benchmark(solve_arbitrary_trees, problem, epsilon=EPSILON, seed=0)
    assert report.guarantee <= 80.0 / (1 - EPSILON) + 1e-6


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
