"""E16 -- reference vs incremental first-phase engine at scale.

Claim reproduced: the incremental dirty-set engine
(``engine='incremental'`` of :func:`repro.core.framework.run_two_phase`)
is *equivalent* to the reference Figure 7 loop -- identical solutions,
raise logs and schedules -- while doing asymptotically less work: the
reference engine re-evaluates every group member's dual constraint on
every step (``O(steps x group)`` LHS evaluations per stage, plus a full
``restrict()`` rebuild per step), the incremental engine pays one
evaluation per member per epoch plus dirty-set rechecks.  The gap
widens with workload size and with schedule length (the narrow-height
``xi = c/(c+hmin)`` schedules run hundreds of stages), yielding
strictly fewer satisfaction checks everywhere and >= 2x wall-clock at
the largest size.

Workloads come from the named registry in
:mod:`repro.workloads.random_suite`.  ``--quick`` runs a two-point
smoke version for CI.
"""
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import emit_json, parse_bench_args, table

from repro.algorithms.base import line_layouts, tree_layouts
from repro.core.dual import HeightRaise, UnitRaise
from repro.core.framework import (
    geometric_thresholds,
    narrow_xi,
    run_two_phase,
    unit_xi,
)
from repro.workloads import build_workload, get_workload

#: (workload name, sizes, epsilon); the narrow-height line workload has
#: the long stage schedules where the reference engine's rescans hurt
#: most, the tree workload is the paper's headline setting.
FULL_PLAN = (
    ("powerlaw-trees", (50, 100, 200, 400), 0.2),
    ("bursty-lines", (50, 100, 200, 400), 0.3),
)
QUICK_PLAN = (
    ("powerlaw-trees", (20, 40), 0.2),
    ("bursty-lines", (20, 40), 0.3),
)
#: Wall-clock factor the incremental engine must reach at the largest
#: size of the long-schedule workload (full mode only; quick mode is a
#: smoke test on toy sizes where constant factors dominate).
MIN_SPEEDUP = 2.0


def _setup(name: str, size: int, seed: int):
    """Build (instances, layout, raise rule, thresholds) for a workload."""
    spec = get_workload(name)
    problem = build_workload(name, size, seed=seed)
    if spec.kind == "tree":
        layout, _ = tree_layouts(problem, "ideal")
        delta = max(layout.critical_set_size, 6)
        rule, xi_of = UnitRaise(), lambda eps: unit_xi(delta)
    else:
        layout = line_layouts(problem)
        delta = max(layout.critical_set_size, 3)
        if spec.heights == "narrow":
            rule = HeightRaise()
            xi_of = lambda eps: narrow_xi(delta, problem.hmin)
        else:
            rule, xi_of = UnitRaise(), lambda eps: unit_xi(delta)
    return problem, layout, rule, xi_of


def _run_pair(problem, layout, rule, thresholds, seed):
    """Time both engines on one workload; assert equivalence."""
    results = {}
    for engine in ("reference", "incremental"):
        t0 = time.perf_counter()
        res = run_two_phase(
            problem.instances, layout, rule, thresholds,
            mis="greedy", seed=seed, engine=engine,
        )
        results[engine] = (time.perf_counter() - t0, res)
    ref_t, ref = results["reference"]
    inc_t, inc = results["incremental"]
    assert [d.instance_id for d in ref.solution.selected] == [
        d.instance_id for d in inc.solution.selected
    ], "engines disagreed on the solution"
    assert [(e.order, e.instance.instance_id, e.delta) for e in ref.events] == [
        (e.order, e.instance.instance_id, e.delta) for e in inc.events
    ], "engines disagreed on the raise log"
    assert ref.counters.steps == inc.counters.steps
    return ref_t, inc_t, ref.counters, inc.counters


def run_experiment(quick: bool = False):
    plan = QUICK_PLAN if quick else FULL_PLAN
    rows = []
    speedup_at_largest = {}
    for name, sizes, epsilon in plan:
        for size in sizes:
            problem, layout, rule, xi_of = _setup(name, size, seed=size)
            thresholds = geometric_thresholds(xi_of(epsilon), epsilon)
            ref_t, inc_t, ref_c, inc_c = _run_pair(
                problem, layout, rule, thresholds, seed=size
            )
            # The headline inequality: dirty-sets strictly beat rescans.
            assert inc_c.satisfaction_checks < ref_c.satisfaction_checks, (
                f"{name}@{size}: incremental did not reduce satisfaction checks"
            )
            speedup = ref_t / inc_t if inc_t > 0 else float("inf")
            speedup_at_largest[name] = speedup
            rows.append(
                [
                    name,
                    size,
                    len(problem.instances),
                    len(thresholds),
                    f"{ref_t * 1e3:.1f}",
                    f"{inc_t * 1e3:.1f}",
                    f"{speedup:.2f}x",
                    ref_c.satisfaction_checks,
                    inc_c.satisfaction_checks,
                    ref_c.adjacency_touches,
                    inc_c.adjacency_touches,
                ]
            )
    if not quick:
        # At scale, the long-schedule workload must show the full win.
        assert speedup_at_largest["bursty-lines"] >= MIN_SPEEDUP, (
            f"bursty-lines largest-size speedup "
            f"{speedup_at_largest['bursty-lines']:.2f}x < {MIN_SPEEDUP}x"
        )
    out = table(
        [
            "workload", "size", "instances", "stages",
            "ref ms", "inc ms", "speedup",
            "ref checks", "inc checks", "ref adj", "inc adj",
        ],
        rows,
    )
    return "E16 - First-phase engine scaling (reference vs incremental)", out, {
        "speedup_at_largest": speedup_at_largest,
        "quick": quick,
    }


def bench_e16_incremental_bursty_lines_200(benchmark):
    problem, layout, rule, xi_of = _setup("bursty-lines", 200, seed=200)
    thresholds = geometric_thresholds(xi_of(0.3), 0.3)
    result = benchmark(
        run_two_phase, problem.instances, layout, rule, thresholds,
        mis="greedy", seed=200, engine="incremental",
    )
    result.solution.verify()


def bench_e16_reference_bursty_lines_200(benchmark):
    problem, layout, rule, xi_of = _setup("bursty-lines", 200, seed=200)
    thresholds = geometric_thresholds(xi_of(0.3), 0.3)
    result = benchmark(
        run_two_phase, problem.instances, layout, rule, thresholds,
        mis="greedy", seed=200, engine="reference",
    )
    result.solution.verify()


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    print("speedups at largest size:", findings["speedup_at_largest"])
    emit_json(json_path, "e16", title, findings)
