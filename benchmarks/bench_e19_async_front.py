"""E19 -- the asyncio front door under Zipf-skewed request traffic.

Claim reproduced: putting the serving loop behind ``asyncio`` keeps the
cache/coalescing amortization of E18 while adding what an RPC process
needs -- concurrent admission with bounded in-flight work, a wire
endpoint, and graceful drain -- without changing a single served bit.
In the arrival-dominated regime of heavy request traffic (the
queueing-network scheduling setting of Shah--Shin, arXiv:0908.3670)
the front door, not the solver, is the component under load, so it is
benchmarked the same way the solver layers are.

The experiment replays E18's Zipf-skewed stream (same populations,
same seeds) three ways and cross-checks them:

* **sync baseline** -- sequential ``SchedulingService.solve`` calls,
  E18's serving path,
* **async in-process** -- the whole stream submitted at once to an
  :class:`repro.service.AsyncSchedulingService` and gathered, with
  admission capped by ``max_inflight`` (peak in-flight is asserted to
  respect the cap),
* **TCP front door** -- a pipelining JSON client drives part of the
  stream over a real socket.

Reported: throughput and p50/p99 of the async replay vs the sync
baseline, hit rates, peak queue depth / in-flight, and wire round-trip
latency.  Asserted: every async-served result is bit-identical
(:func:`repro.service.report_semantic_digest`) to a direct
:func:`repro.algorithms.solve_auto` call -- checked on a *cold* front
door (fresh disk-less service) and again on a *cached* one -- the TCP
responses' digests match the same direct solves, and after
:meth:`aclose` the warm executor-pool registries are empty (the
graceful-drain contract of ``shutdown_pools``).  The async replay
runs with a private :class:`repro.obs.MetricsRegistry` and asserts
the telemetry's own view: one admission-wait observation per admitted
request and a finite per-family request p99 out of the latency
histograms.

``--quick`` runs a CI-sized stream; ``--json OUT`` emits the findings
via the shared benchmark plumbing.
"""
import asyncio
import json
import math
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import (
    emit_json,
    histogram_percentiles,
    parse_bench_args,
    percentiles,
    table,
)

from repro.algorithms import solve_auto
from repro.core.engines import backends
from repro.obs import MetricsRegistry
from repro.service import (
    AsyncSchedulingService,
    SchedulingService,
    SolveRequest,
    report_semantic_digest,
)
from repro.workloads import build_workload

#: Same populations and stream shape as E18, so the two benches are
#: directly comparable.
FULL_POPULATION = (
    ("multi-tenant-forest", 240, 4),
    ("diurnal-cycle", 120, 4),
    ("bursty-lines", 80, 4),
)
QUICK_POPULATION = (
    ("multi-tenant-forest", 80, 2),
    ("diurnal-cycle", 48, 2),
    ("bursty-lines", 32, 2),
)
FULL_REQUESTS = 400
QUICK_REQUESTS = 80
ZIPF_S = 1.2
STREAM_SEED = 19
MAX_INFLIGHT = 8
#: How many stream entries the TCP client replays (pipelined).
FULL_WIRE = 60
QUICK_WIRE = 20
KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)


def _population(plan):
    return [
        SolveRequest.from_workload(name, size, seed=seed, **KNOBS)
        for name, size, n_seeds in plan
        for seed in range(n_seeds)
    ]


def _zipf_stream(n_population: int, n_requests: int, rng: random.Random):
    ranks = list(range(n_population))
    rng.shuffle(ranks)
    weights = [1.0 / (r + 1) ** ZIPF_S for r in range(n_population)]
    return [ranks[i] for i in rng.choices(range(n_population), weights, k=n_requests)]


def _direct_digests(plan):
    """Fingerprint-label -> digest of the direct library solve."""
    digests = {}
    for name, size, n_seeds in plan:
        for seed in range(n_seeds):
            report = solve_auto(
                build_workload(name, size, seed=seed),
                **{**KNOBS, "seed": seed},
            )
            digests[f"{name}@{size}#{seed}"] = report_semantic_digest(report)
    return digests


async def _async_replay(population, stream, direct, max_inflight):
    """The whole stream gathered at once through a fresh front door.

    The front runs with a private telemetry registry: besides the
    digest cross-checks, the replay asserts the observability layer's
    view of itself -- admission-wait observed once per request, and a
    finite per-family request p99 straight from the latency histograms.
    """
    registry = MetricsRegistry()
    front = AsyncSchedulingService(
        capacity=len(population),
        workers=2,
        max_inflight=max_inflight,
        metrics=registry,
    )
    latencies = []

    async def one(request):
        t0 = time.perf_counter()
        result = await front.solve(request)
        latencies.append(time.perf_counter() - t0)
        return result

    t_start = time.perf_counter()
    results = await asyncio.gather(*(one(population[i]) for i in stream))
    elapsed = time.perf_counter() - t_start

    # Cold check: every label served at least once as a miss, and every
    # served report -- miss or coalesced/cached hit -- is bit-identical
    # to the direct solve.
    statuses = {}
    for result in results:
        statuses.setdefault(result.label, set()).add(result.status)
        assert report_semantic_digest(result.report) == direct[result.label], (
            f"{result.label}: async-served result diverged from direct solve"
        )
    assert all("miss" in s for s in statuses.values()), (
        "a fresh front door must cold-solve each distinct label once"
    )

    # Cached check: replay the distinct population again, all hits,
    # still bit-identical.
    again = await front.solve_batch(population)
    for result in again:
        assert result.status == "hit", (
            f"{result.label}: expected a cached hit on replay"
        )
        assert report_semantic_digest(result.report) == direct[result.label], (
            f"{result.label}: cached result diverged from direct solve"
        )

    stats = front.stats
    assert stats["peak_active"] <= max_inflight, (
        f"admission cap violated: peak {stats['peak_active']} > {max_inflight}"
    )

    # Telemetry cross-check: every admitted request (the stream plus
    # the cached-replay batch) observed an admission wait, and the
    # request histograms yield a finite p99 for both served families.
    snap = registry.snapshot()
    n_admitted = sum(
        h["count"]
        for key, h in snap["histograms"].items()
        if key.startswith("repro_admission_wait_seconds")
    )
    assert n_admitted == len(stream) + len(population), (
        f"admission-wait observed {n_admitted} times, expected "
        f"{len(stream) + len(population)}"
    )
    telemetry_p99 = {}
    for family in ("line", "tree"):
        pcts = histogram_percentiles(
            snap, "repro_service_request_seconds", family=family
        )
        assert not math.isnan(pcts["p99"]), (
            f"{family}: request histogram has no samples"
        )
        telemetry_p99[family] = pcts["p99"]

    await front.drain()  # pools stay warm for the wire phase
    return elapsed, sorted(latencies), stats, telemetry_p99


async def _wire_replay(population, stream, direct):
    """Part of the stream over a real socket, pipelined, id-correlated."""
    async with AsyncSchedulingService(
        capacity=len(population), workers=2, max_inflight=MAX_INFLIGHT
    ) as front:
        host, port = await front.serve()
        reader, writer = await asyncio.open_connection(host, port)
        t_start = time.perf_counter()
        expected = {}
        for req_id, idx in enumerate(stream):
            request = population[idx]
            name, rest = request.label.split("@")
            size, seed = rest.split("#")
            expected[req_id] = request.label
            writer.write(json.dumps({
                "id": req_id,
                "workload": name,
                "size": int(size),
                "seed": int(seed),
                "knobs": KNOBS,
            }).encode() + b"\n")
        await writer.drain()
        responses = {}
        while len(responses) < len(expected):
            line = await reader.readline()
            assert line, "connection closed before all responses arrived"
            response = json.loads(line)
            responses[response["id"]] = response
        elapsed = time.perf_counter() - t_start
        writer.close()
        await writer.wait_closed()
        for req_id, label in expected.items():
            response = responses[req_id]
            assert response["ok"], f"{label}: wire request failed: {response}"
            assert response["semantic_digest"] == direct[label], (
                f"{label}: wire-served digest diverged from direct solve"
            )
    return elapsed, len(expected)


def run_experiment(quick: bool = False):
    plan = QUICK_POPULATION if quick else FULL_POPULATION
    n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    n_wire = QUICK_WIRE if quick else FULL_WIRE
    rng = random.Random(STREAM_SEED)
    population = _population(plan)
    stream = _zipf_stream(len(population), n_requests, rng)
    direct = _direct_digests(plan)

    # Sync baseline: E18's sequential serving path on a fresh service.
    sync_service = SchedulingService(capacity=len(population), workers=2)
    sync_latencies = []
    t_start = time.perf_counter()
    for idx in stream:
        result = sync_service.solve(population[idx])
        sync_latencies.append(result.latency_s)
    sync_elapsed = time.perf_counter() - t_start
    sync_pcts = percentiles(sync_latencies)

    async_elapsed, async_latencies, front_stats, telemetry_p99 = asyncio.run(
        _async_replay(population, stream, direct, MAX_INFLIGHT)
    )
    async_pcts = percentiles(async_latencies)
    wire_elapsed, wire_count = asyncio.run(
        _wire_replay(population, stream[:n_wire], direct)
    )

    # The wire replay closed through aclose(): the graceful-drain
    # contract is zero live executors in every warm-pool family.
    live_pools = (
        len(backends._THREAD_POOLS)
        + len(backends._PROCESS_POOLS)
        + len(backends._SERVICE_POOLS)
    )
    assert live_pools == 0, (
        f"aclose() must leave zero live executors, found {live_pools}"
    )

    hit_rate = front_stats["service"]["cache"]["hit_ratio"]
    rows = [
        [
            "sync (E18 path)",
            n_requests,
            f"{n_requests / sync_elapsed:.0f}",
            f"{sync_pcts['p50'] * 1e3:.2f}",
            f"{sync_pcts['p99'] * 1e3:.1f}",
            "1 (serial)",
        ],
        [
            "async front door",
            n_requests,
            f"{n_requests / async_elapsed:.0f}",
            f"{async_pcts['p50'] * 1e3:.2f}",
            f"{async_pcts['p99'] * 1e3:.1f}",
            f"{front_stats['peak_active']} (cap {MAX_INFLIGHT})",
        ],
        [
            "json-over-tcp",
            wire_count,
            f"{wire_count / wire_elapsed:.0f}",
            "-",
            "-",
            "pipelined",
        ],
    ]
    findings = {
        "quick": quick,
        "population": len(population),
        "requests": n_requests,
        "zipf_s": ZIPF_S,
        "max_inflight": MAX_INFLIGHT,
        "sync_throughput_rps": n_requests / sync_elapsed,
        "async_throughput_rps": n_requests / async_elapsed,
        "async_vs_sync": sync_elapsed / async_elapsed,
        "async_p50_ms": async_pcts["p50"] * 1e3,
        "async_p99_ms": async_pcts["p99"] * 1e3,
        "sync_p50_ms": sync_pcts["p50"] * 1e3,
        "sync_p99_ms": sync_pcts["p99"] * 1e3,
        "telemetry_request_p99_ms": {
            family: p99 * 1e3 for family, p99 in telemetry_p99.items()
        },
        "wire_requests": wire_count,
        "wire_throughput_rps": wire_count / wire_elapsed,
        "hit_rate": hit_rate,
        "peak_active": front_stats["peak_active"],
        "peak_queued": front_stats["peak_queued"],
        "front_stats": front_stats,
    }
    out = table(
        ["path", "requests", "req/s", "p50 ms", "p99 ms", "inflight"],
        rows,
    )
    return "E19 - Asyncio front door under Zipf-skewed traffic", out, findings


def bench_e19_async_replay_quick(benchmark):
    population = _population(QUICK_POPULATION)
    stream = _zipf_stream(
        len(population), QUICK_REQUESTS, random.Random(STREAM_SEED)
    )

    def replay():
        async def run():
            front = AsyncSchedulingService(
                capacity=len(population), workers=2, max_inflight=MAX_INFLIGHT
            )
            results = await asyncio.gather(
                *(front.solve(population[i]) for i in stream)
            )
            await front.drain()
            return front, results

        return asyncio.run(run())[0]

    front = benchmark(replay)
    assert front.stats["service"]["cache"]["hits"] > 0


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    print(
        f"stream: {findings['requests']} requests over "
        f"{findings['population']} distinct (zipf s={findings['zipf_s']}), "
        f"hit rate {findings['hit_rate']:.2f}, "
        f"async {findings['async_throughput_rps']:.0f} req/s "
        f"({findings['async_vs_sync']:.2f}x sync), "
        f"p50 {findings['async_p50_ms']:.2f}ms p99 {findings['async_p99_ms']:.1f}ms, "
        f"peak inflight {findings['peak_active']}/{findings['max_inflight']} "
        f"(queued {findings['peak_queued']}), "
        f"wire {findings['wire_throughput_rps']:.0f} req/s over "
        f"{findings['wire_requests']} pipelined"
    )
    emit_json(json_path, "e19", title, findings)
