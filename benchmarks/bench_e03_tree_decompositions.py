"""E3 -- Section 4.2/4.3, Lemma 4.1: tree-decomposition parameters.

Claims reproduced: root-fixing achieves pivot size 1 but depth up to n;
balancing achieves depth <= ceil(log n) + 1 but pivots up to its depth;
the ideal decomposition achieves depth <= 2 ceil(log n) + 1 AND pivot
size <= 2, on every tree shape.
"""
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import build_balancing, build_ideal, build_root_fixing
from repro.workloads.trees import random_tree

BUILDERS = [
    ("root-fixing", build_root_fixing),
    ("balancing", build_balancing),
    ("ideal", build_ideal),
]
SHAPES = ("path", "star", "caterpillar", "binary", "uniform")
SIZES = (64, 256, 1024)


def run_experiment():
    rows = []
    worst = {name: {"depth_over_log": 0.0, "pivot": 0} for name, _ in BUILDERS}
    for n in SIZES:
        log_term = math.ceil(math.log2(n))
        for shape in SHAPES:
            net = random_tree(n, seed=13, shape=shape)
            for name, builder in BUILDERS:
                td = builder(net)
                rows.append([n, shape, name, td.max_depth, td.pivot_size])
                worst[name]["depth_over_log"] = max(
                    worst[name]["depth_over_log"], td.max_depth / log_term
                )
                worst[name]["pivot"] = max(worst[name]["pivot"], td.pivot_size)
                if name == "ideal":
                    assert td.pivot_size <= 2, "Lemma 4.1 pivot bound violated"
                    assert td.max_depth <= 2 * log_term + 1, "Lemma 4.1 depth bound violated"
                if name == "root-fixing":
                    assert td.pivot_size <= 1
                if name == "balancing":
                    assert td.max_depth <= log_term + 1
                    assert td.pivot_size <= td.max_depth

    # Shape claims: root-fixing depth is Theta(n) on a path; balancing
    # pivots exceed 2 somewhere; ideal never does.
    path_net = random_tree(SIZES[-1], seed=13, shape="path")
    assert build_root_fixing(path_net).max_depth == SIZES[-1]
    assert worst["balancing"]["pivot"] > 2
    assert worst["ideal"]["pivot"] <= 2

    out = table(["n", "shape", "decomposition", "depth", "pivot size"], rows)
    return "E3 - Tree decompositions (Lemma 4.1)", out, worst


def bench_e03_build_ideal(benchmark):
    net = random_tree(1024, seed=13, shape="uniform")
    td = benchmark(build_ideal, net)
    assert td.pivot_size <= 2


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
