"""E21 -- vectorized columnar first-phase kernel vs incremental engine.

Claim reproduced: the array-native first phase (``engine='vectorized'``
of :func:`repro.core.framework.run_first_phase`) produces artifacts
bit-identical to the incremental dirty-set engine -- same raise log,
same dual dicts (values *and* insertion order), same schedule counters
-- while replacing the per-instance dict work with numpy kernels over a
columnar instance layout: one shared edge/demand vocabulary for the
whole phase, segmented bucket reductions for the MIS steps, a
padded-position loop for the LHS recomputes, and a first-touch commit
back into the dual dicts.  The per-raise python overhead of the dict
engine grows with the dirty-set sizes, so the gap widens with workload
size; at the largest bursty-lines and multi-tenant-forest sizes the
vectorized kernel is at least ``MIN_SPEEDUP`` x faster wall-clock.

Methodology notes (both matter on a loaded shared box):

* Only :func:`run_first_phase` is timed -- the layered-decomposition
  build is engine-independent and would dilute the ratio.
* A **fresh MIS oracle per timed run**: :class:`LubyOracle` advances
  per-epoch RNG substreams as it draws, so re-running the phase with a
  shared oracle would time *different* work each rep.  Everything else
  the phase touches is read-only; the per-rep artifact fingerprints are
  asserted identical to prove it.
* Engine timings are **interleaved** (inc, vec, inc, vec, ...) and the
  per-engine minimum over ``REPS`` reps is reported, so background-load
  drift hits both engines alike.

``--quick`` runs a two-point smoke version for CI (no speedup floor:
at toy sizes constant factors dominate).
"""
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import emit_json, parse_bench_args, table

from repro.algorithms.base import line_layouts, tree_layouts
from repro.core.dual import HeightRaise, UnitRaise
from repro.core.framework import (
    geometric_thresholds,
    narrow_xi,
    run_first_phase,
    unit_xi,
)
from repro.distributed.mis import make_mis_oracle
from repro.workloads import build_workload, get_workload

#: (workload name, sizes, epsilon); bursty-lines has the long
#: narrow-height stage schedules (many steps over few rows), the
#: multi-tenant forest is the wide-epoch setting (few steps over many
#: rows) -- the two regimes the columnar kernel must win in.
FULL_PLAN = (
    ("bursty-lines", (100, 200, 400, 800), 0.3),
    ("multi-tenant-forest", (6400, 12800, 25600, 51200), 0.2),
)
QUICK_PLAN = (
    ("bursty-lines", (50, 100), 0.3),
    ("multi-tenant-forest", (200, 400), 0.2),
)
#: Wall-clock factor the vectorized kernel must reach at the largest
#: size of each family (full mode only).
MIN_SPEEDUP = 5.0
#: Interleaved timing reps per engine per size.
REPS = 3


def _setup(name: str, size: int, seed: int):
    """Build (problem, layout, raise rule, thresholds) for a workload."""
    spec = get_workload(name)
    problem = build_workload(name, size, seed=seed)
    if spec.kind == "tree":
        layout, _ = tree_layouts(problem, "ideal")
        delta = max(layout.critical_set_size, 6)
        rule, xi = UnitRaise(), unit_xi(delta)
    else:
        layout = line_layouts(problem)
        delta = max(layout.critical_set_size, 3)
        if spec.heights == "narrow":
            rule, xi = HeightRaise(), narrow_xi(delta, problem.hmin)
        else:
            rule, xi = UnitRaise(), unit_xi(delta)
    epsilon = 0.2 if spec.kind == "tree" else 0.3
    return problem, layout, rule, geometric_thresholds(xi, epsilon)


def _fingerprint(artifacts):
    """Everything both engines must agree on, bit-for-bit.

    ``satisfaction_checks`` / ``adjacency_touches`` are deliberately
    excluded -- those count engine-internal work and *should* differ.
    """
    dual, stack, events, counters = artifacts
    return (
        tuple(
            (e.order, e.instance.instance_id, e.delta, e.critical_edges, e.step_tuple)
            for e in events
        ),
        tuple(dual.alpha.items()),
        tuple(dual.beta.items()),
        tuple(tuple(d.instance_id for d in batch) for batch in stack),
        (counters.epochs, counters.stages, counters.steps, counters.raises),
    )


def _run_pair(problem, layout, rule, thresholds, seed, reps=REPS):
    """Interleaved best-of-*reps* timing of both engines; assert identity."""
    best = {"incremental": float("inf"), "vectorized": float("inf")}
    prints = {}
    for _ in range(reps):
        for engine in ("incremental", "vectorized"):
            oracle = make_mis_oracle("luby", seed)
            t0 = time.perf_counter()
            artifacts = run_first_phase(
                problem.instances, layout, rule, thresholds, oracle,
                engine=engine,
            )
            best[engine] = min(best[engine], time.perf_counter() - t0)
            fp = _fingerprint(artifacts)
            assert prints.setdefault(engine, fp) == fp, (
                f"{engine}: non-deterministic across reps (shared state leak)"
            )
    assert prints["incremental"] == prints["vectorized"], (
        "engines disagreed on the first-phase artifacts"
    )
    return best["incremental"], best["vectorized"]


def run_experiment(quick: bool = False):
    plan = QUICK_PLAN if quick else FULL_PLAN
    reps = 2 if quick else REPS
    rows = []
    speedup_at_largest = {}
    for name, sizes, epsilon in plan:
        for size in sizes:
            problem, layout, rule, thresholds = _setup(name, size, seed=size)
            inc_t, vec_t = _run_pair(
                problem, layout, rule, thresholds, seed=size, reps=reps
            )
            speedup = inc_t / vec_t if vec_t > 0 else float("inf")
            speedup_at_largest[name] = speedup
            rows.append(
                [
                    name,
                    size,
                    len(problem.instances),
                    len(thresholds),
                    f"{inc_t * 1e3:.1f}",
                    f"{vec_t * 1e3:.1f}",
                    f"{speedup:.2f}x",
                ]
            )
    if not quick:
        for family, floor in (
            ("bursty-lines", MIN_SPEEDUP),
            ("multi-tenant-forest", MIN_SPEEDUP),
        ):
            assert speedup_at_largest[family] >= floor, (
                f"{family} largest-size speedup "
                f"{speedup_at_largest[family]:.2f}x < {floor}x"
            )
    out = table(
        ["workload", "size", "instances", "stages", "inc ms", "vec ms", "speedup"],
        rows,
    )
    return "E21 - Vectorized columnar kernel vs incremental engine", out, {
        "speedup_at_largest": speedup_at_largest,
        "min_speedup": MIN_SPEEDUP,
        "quick": quick,
    }


def bench_e21_vectorized_bursty_lines_400(benchmark):
    problem, layout, rule, thresholds = _setup("bursty-lines", 400, seed=400)
    benchmark(
        lambda: run_first_phase(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("luby", 400), engine="vectorized",
        )
    )


def bench_e21_incremental_bursty_lines_400(benchmark):
    problem, layout, rule, thresholds = _setup("bursty-lines", 400, seed=400)
    benchmark(
        lambda: run_first_phase(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("luby", 400), engine="incremental",
        )
    )


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    print("speedups at largest size:", findings["speedup_at_largest"])
    emit_json(json_path, "e21", title, findings)
