"""E11 -- Ablation: which tree decomposition feeds the framework?

The Section 4 design choice quantified: layered decompositions built
from root-fixing (theta=1 -> Delta<=4 but epochs up to n), balancing
(log epochs but Delta up to 2(log n + 1)), and ideal (Delta<=6 AND log
epochs).  Only the ideal decomposition keeps both the approximation
factor constant and the round count polylogarithmic -- the paper's
Lemma 4.1 punchline, shown here on the same workload.
"""
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import solve_exact, solve_unit_trees
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest

DECOMPOSITIONS = ("root_fixing", "balancing", "ideal")
N = 256


def run_experiment():
    problem = random_tree_problem(
        random_forest(N, 2, seed=5, shape="caterpillar"), m=60, seed=55
    )
    lp_yard = None
    rows = []
    stats = {}
    for name in DECOMPOSITIONS:
        report = solve_unit_trees(problem, epsilon=0.15, seed=7, decomposition=name)
        report.solution.verify()
        result = report.result
        delta = result.layout.critical_set_size
        epochs = result.layout.n_epochs
        rows.append(
            [
                name,
                delta,
                epochs,
                report.profit,
                report.certified_ratio,
                result.counters.communication_rounds,
            ]
        )
        stats[name] = {"delta": delta, "epochs": epochs}
    log_n = math.ceil(math.log2(N))
    assert stats["ideal"]["delta"] <= 6
    assert stats["ideal"]["epochs"] <= 2 * log_n + 1
    assert stats["root_fixing"]["delta"] <= 4  # 2*(theta+1) with theta=1
    # Root-fixing pays in epochs on deep trees; balancing pays in Delta.
    assert stats["root_fixing"]["epochs"] > stats["ideal"]["epochs"]
    assert stats["balancing"]["epochs"] <= log_n + 1
    out = table(
        ["decomposition", "Delta", "epochs", "profit", "certified ratio", "sim rounds"],
        rows,
    )
    return "E11 - Ablation: decomposition choice", out, stats


def bench_e11_ideal_pipeline(benchmark):
    problem = random_tree_problem(
        random_forest(N, 2, seed=5, shape="caterpillar"), m=60, seed=55
    )
    report = benchmark(
        solve_unit_trees, problem, epsilon=0.15, seed=7, decomposition="ideal"
    )
    assert report.result.layout.critical_set_size <= 6


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
