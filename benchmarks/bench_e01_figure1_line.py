"""E1 -- Figure 1: the line-network worked example.

Claim reproduced: with heights 0.5/0.7/0.4, the sets {A,C} and {B,C}
are feasible on one resource but {A,B} is not; the optimum therefore
schedules two demands, and the Theorem 7.2 algorithm stays within its
guarantee of it.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import solve_arbitrary_lines, solve_exact
from repro.core.solution import Solution
from repro.workloads import figure1_problem


def run_experiment():
    problem = figure1_problem()
    insts = {d.demand_id: d for d in problem.instances}
    pair_feasible = {
        "{A,C}": Solution.from_instances([insts[0], insts[2]]).is_feasible(),
        "{B,C}": Solution.from_instances([insts[1], insts[2]]).is_feasible(),
        "{A,B}": Solution.from_instances([insts[0], insts[1]]).is_feasible(),
    }
    assert pair_feasible["{A,C}"] and pair_feasible["{B,C}"]
    assert not pair_feasible["{A,B}"]

    opt = solve_exact(problem).profit
    report = solve_arbitrary_lines(problem, epsilon=0.05, seed=0)
    report.solution.verify()
    assert opt == 2.0
    assert opt <= report.guarantee * report.profit + 1e-9

    rows = [
        ["{A,C} feasible (paper: yes)", pair_feasible["{A,C}"]],
        ["{B,C} feasible (paper: yes)", pair_feasible["{B,C}"]],
        ["{A,B} feasible (paper: no)", pair_feasible["{A,B}"]],
        ["exact optimum", opt],
        ["algorithm profit (Thm 7.2)", report.profit],
        ["dual certificate (>= OPT)", report.certified_upper_bound],
    ]
    out = table(["quantity", "value"], rows)
    return "E1 - Figure 1 line-network example", out, {
        "opt": opt,
        "profit": report.profit,
    }


def bench_e01_figure1(benchmark):
    problem = figure1_problem()
    report = benchmark(solve_arbitrary_lines, problem, epsilon=0.05, seed=0)
    assert solve_exact(problem).profit <= report.guarantee * report.profit + 1e-9


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
