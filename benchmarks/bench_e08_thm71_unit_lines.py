"""E8 -- Theorem 7.1 vs Panconesi-Sozio: unit heights on lines.

Claims reproduced: this paper's algorithm carries a provable factor of
``4/(1-eps)`` versus PS's ``4*(5+eps) = 20+eps`` -- the factor-5
improvement of the abstract -- and on random window workloads its
realized profit and certified ratio dominate the PS baseline's on
average, with greedy trailing both in worst cases.
"""
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import solve_exact, solve_greedy, solve_ps_unit_lines, solve_unit_lines
from repro.workloads import random_line_problem

EPSILON = 0.1
SEEDS = range(6)


def run_experiment():
    rows = []
    ours_profit, ps_profit, greedy_profit = [], [], []
    ours_cert, ps_cert = [], []
    for seed in SEEDS:
        problem = random_line_problem(
            40, 14, r=2, seed=seed + 11, window_slack=3, max_processing=10
        )
        opt = solve_exact(problem).profit
        ours = solve_unit_lines(problem, epsilon=EPSILON, seed=seed)
        ps = solve_ps_unit_lines(problem, epsilon=EPSILON, seed=seed)
        greedy = solve_greedy(problem, key="profit")
        for rep in (ours, ps):
            rep.solution.verify()
            assert opt <= rep.guarantee * rep.profit + 1e-6
        assert ours.guarantee <= 4.0 / (1 - EPSILON) + 1e-9
        ours_profit.append(ours.profit)
        ps_profit.append(ps.profit)
        greedy_profit.append(greedy.profit)
        ours_cert.append(ours.certified_ratio)
        ps_cert.append(ps.certified_ratio)
        rows.append(
            [
                seed,
                opt,
                ours.profit,
                ps.profit,
                greedy.profit,
                ours.certified_ratio,
                ps.certified_ratio,
            ]
        )

    guarantee_improvement = (4 * (5 + EPSILON)) / (4 / (1 - EPSILON))
    # The headline claim: a ~5x better provable factor.
    assert guarantee_improvement >= 4.5
    # Shape claim: with slackness ~1 our dual certificate is far tighter
    # than PS's (whose certificate carries the 1/(5+eps) scaling).
    assert statistics.mean(ours_cert) < statistics.mean(ps_cert)
    # And realized profit does not regress on average.
    assert statistics.mean(ours_profit) >= 0.95 * statistics.mean(ps_profit)

    rows.append(
        [
            "mean",
            "-",
            statistics.mean(ours_profit),
            statistics.mean(ps_profit),
            statistics.mean(greedy_profit),
            statistics.mean(ours_cert),
            statistics.mean(ps_cert),
        ]
    )
    out = table(
        [
            "seed",
            "exact OPT",
            "ours (4+eps)",
            "PS (20+eps)",
            "greedy",
            "our certified ratio",
            "PS certified ratio",
        ],
        rows,
    )
    findings = {
        "guarantee_improvement_factor": guarantee_improvement,
        "mean_profit_ours": statistics.mean(ours_profit),
        "mean_profit_ps": statistics.mean(ps_profit),
    }
    return "E8 - Theorem 7.1 vs Panconesi-Sozio (unit lines)", out, findings


def bench_e08_solve_unit_lines(benchmark):
    problem = random_line_problem(40, 14, r=2, seed=11, window_slack=3)
    report = benchmark(solve_unit_lines, problem, epsilon=EPSILON, seed=0)
    assert report.guarantee <= 4.0 / (1 - EPSILON) + 1e-9


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
