"""E20 -- delta-solve under churn: replaying seeded mutation streams.

Claim reproduced: an incremental re-solve path makes a scheduling
service cheap under *churn* -- the production regime where the problem
mutates continuously (demands arrive and cancel, bids change, tenants
onboard) and every mutation needs a fresh certified schedule.  The
delta path (:mod:`repro.service.delta` +
:mod:`repro.core.engines.journal`) warm-starts each snapshot from the
journal of its cached ancestor, replays the epochs whose recorded
input signatures still match, and re-runs only the dirty ones -- so
the answer is *bitwise* the cold answer at a fraction of the cost.

The experiment replays the registered churn trajectories
(:mod:`repro.workloads.trajectories`) through a
``SchedulingService(keep_artifacts=True)``, solving every snapshot
both ways -- ``solve_delta`` against the warm service, and
``solve`` against a second, artifact-free service that can only go
cold (an apples-to-apples baseline: both sides pay fingerprinting and
cache admission; only the warm start differs) -- and reports per
(trajectory, size):

* the outcome mix (warm replays vs the cold fallbacks: tenant
  onboarding changes the network sketch, so those snapshots *must*
  fall back -- the honest cost of the design),
* median delta-solve and median cold-solve latency, their ratio, and
  the epoch replay fraction of the warm solves,
* correctness: **every** snapshot's delta result is digest-identical
  (:func:`repro.service.report_semantic_digest`) to its cold solve --
  asserted, not sampled.

Acceptance (asserted at the largest replay size of each
ratio-flagged trajectory -- see ``FULL_FAMILIES``): median delta-solve
latency <= 0.5x median cold-solve latency.  ``--quick`` runs the
CI-sized replay; ``--json OUT`` emits findings JSON.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import emit_json, parse_bench_args, table

from repro.service import (
    SchedulingService,
    SolveKnobs,
    SolveRequest,
    report_semantic_digest,
)
from repro.workloads import build_trajectory, trajectory_names

#: (trajectory, sizes, steps, assert_ratio) replay plans.  The latency
#: acceptance is asserted at each flagged trajectory's largest size,
#: where the warm path's fixed overheads (fingerprint, diff,
#: signatures) are best amortized.  ``churn-lines`` is deliberately
#: *unflagged*: a line trajectory at these scales has ~3 first-phase
#: epochs and a single demand mutation dirties all of them (its
#: instances land on most length classes), so certified replay has
#: nothing to skip -- the table reports that honest ~1.0x rather than
#: hiding the family.  Digest identity is still asserted on every
#: snapshot of every family.
FULL_FAMILIES = (
    ("tenant-churn", (32, 64, 96), 20, True),
    ("capacity-steps", (48, 96, 128), 16, True),
    ("churn-lines", (24, 48), 16, False),
)
QUICK_FAMILIES = (
    ("tenant-churn", (64,), 10, True),
    ("churn-lines", (24,), 8, False),
)
STREAM_SEED = 20
#: Required median delta / median cold latency ratio at the largest
#: size (i.e. delta must be at least 2x cheaper than solving cold).
MAX_DELTA_RATIO = 0.5
#: Solve knobs of every snapshot: the journaled incremental engine with
#: the deterministic oracle, so delta and cold runs are comparable.
KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)


def _median(values):
    if not values:
        return float("nan")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _replay(name: str, size: int, steps: int):
    """Replay one trajectory; returns the per-size measurement dict."""
    service = SchedulingService(keep_artifacts=True, disk_dir=None, workers=2)
    baseline = SchedulingService(
        keep_artifacts=False, disk_dir=None, workers=2
    )
    knobs = SolveKnobs(**KNOBS)
    trajectory = build_trajectory(name, size, seed=STREAM_SEED, steps=steps)
    delta_lat, cold_lat = [], []
    outcomes = {}
    replayed = rerun = 0
    for step in trajectory:
        request = SolveRequest(
            problem=step.problem, knobs=knobs,
            label=f"{name}@{size}+{step.index}",
        )
        if step.index == 0:
            service.solve(request)  # the ancestor every delta hangs off
        else:
            result = service.solve_delta(request)
            delta_lat.append(result.latency_s)
            if result.delta is None:
                # Churn walked back to an already-served state (e.g. an
                # add undone by a drop): an exact fingerprint hit, the
                # one outcome cheaper than a warm replay.
                outcomes["hit"] = outcomes.get("hit", 0) + 1
            else:
                stats = result.delta
                outcomes[stats.outcome] = outcomes.get(stats.outcome, 0) + 1
                replayed += stats.epochs_replayed
                rerun += stats.epochs_rerun
        # The cold baseline: a fresh request object so the memoized
        # fingerprint is honestly recomputed, against a service whose
        # only fast path is an exact cache hit (a churn revert) --
        # those hits are excluded from the cold median.
        cold = baseline.solve(
            SolveRequest(problem=step.problem, knobs=knobs, label=request.label)
        )
        if step.index > 0 and cold.status == "miss":
            cold_lat.append(cold.latency_s)
        served = service.solve(request).report
        assert report_semantic_digest(served) == report_semantic_digest(
            cold.report
        ), (
            f"{request.label} ({step.kind}): delta result diverged "
            "from the cold solve"
        )
    total_epochs = replayed + rerun
    return {
        "trajectory": name,
        "size": size,
        "snapshots": len(trajectory),
        "outcomes": outcomes,
        "warm": outcomes.get("warm", 0),
        "median_delta_ms": _median(delta_lat) * 1e3,
        "median_cold_ms": _median(cold_lat) * 1e3,
        "ratio": _median(delta_lat) / _median(cold_lat),
        "replay_fraction": (replayed / total_epochs) if total_epochs else 0.0,
        "service_stats": service.stats,
    }


def run_experiment(quick: bool = False):
    families = QUICK_FAMILIES if quick else FULL_FAMILIES
    assert set(n for n, _, _, _ in families) <= set(trajectory_names())
    rows, measurements = [], []
    for name, sizes, steps, assert_ratio in families:
        for size in sizes:
            m = _replay(name, size, steps)
            measurements.append(m)
            if assert_ratio and size == max(sizes):
                assert m["ratio"] <= MAX_DELTA_RATIO, (
                    f"{name}@{size}: median delta solve "
                    f"({m['median_delta_ms']:.1f}ms) must be <= "
                    f"{MAX_DELTA_RATIO}x the median cold solve "
                    f"({m['median_cold_ms']:.1f}ms), got {m['ratio']:.2f}x"
                )
            assert m["warm"] > 0, (
                f"{name}@{size}: a churn replay must produce warm solves"
            )
            hits = m["outcomes"].get("hit", 0)
            rows.append(
                [
                    name,
                    size,
                    m["snapshots"],
                    m["warm"],
                    hits,
                    m["snapshots"] - 1 - m["warm"] - hits,
                    f"{m['replay_fraction']:.2f}",
                    f"{m['median_cold_ms']:.1f}",
                    f"{m['median_delta_ms']:.1f}",
                    f"{m['ratio']:.2f}x",
                ]
            )
    findings = {
        "quick": quick,
        "stream_seed": STREAM_SEED,
        "max_delta_ratio": MAX_DELTA_RATIO,
        "families": [
            {k: v for k, v in m.items() if k != "service_stats"}
            for m in measurements
        ],
        "service_stats_last": measurements[-1]["service_stats"],
    }
    out = table(
        [
            "trajectory", "size", "snaps", "warm", "hit", "fallback",
            "replay frac", "cold ms", "delta ms", "ratio",
        ],
        rows,
    )
    return "E20 - Delta-solve under churn (mutation-stream replay)", out, findings


def bench_e20_churn_replay_quick(benchmark):
    name, sizes, steps, _ = QUICK_FAMILIES[0]

    def replay():
        return _replay(name, sizes[0], steps)

    m = benchmark(replay)
    assert m["warm"] > 0


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    for m in findings["families"]:
        print(
            f"{m['trajectory']}@{m['size']}: {m['warm']}/{m['snapshots'] - 1} "
            f"warm, replay fraction {m['replay_fraction']:.2f}, "
            f"median delta {m['median_delta_ms']:.1f}ms vs cold "
            f"{m['median_cold_ms']:.1f}ms ({m['ratio']:.2f}x)"
        )
    emit_json(json_path, "e20", title, findings)
