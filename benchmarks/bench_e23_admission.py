"""E23 -- the second-phase admission engines: pop speed and delta replay.

Claim reproduced: the second phase -- the reversed-stack greedy pop --
is an engine seam just like the first phase.  The three
implementations behind ``phase2_engine=``
(:mod:`repro.core.engines.admission`) are **bit-identical** (asserted
on every measured pop, not sampled), and the seam pays twice:

* **Raw speed** -- the ``vectorized`` pop trades the per-instance
  ledger loop for one columnar fits-check per batch; the ``sliced``
  pop partitions the stack into capacity-disjoint components and pops
  them on the executor backends.  The table reports median pop latency
  per (workload, size) for all three engines on solver-emitted stacks.
* **Delta serving** -- with artifacts kept, the admission journal
  records each component's signed inputs and selections, so a delta
  solve replays every component churn did not touch.  The delta arm
  replays a ``tenant-churn`` trajectory and reports the admission
  component replay fraction.

Acceptance (asserted): every engine's pop equals the served solution
bit-for-bit; the delta arm replays >= ``MIN_REPLAY_FRACTION`` (0.5) of
its admission components with every snapshot digest-identical to a
cold solve.  ``--quick`` runs the CI-sized sweep; ``--json OUT`` emits
findings JSON.
"""
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import emit_json, parse_bench_args, table

from repro.algorithms import solve_auto
from repro.core.engines.admission import run_second_phase, stack_components
from repro.service import (
    SchedulingService,
    SolveKnobs,
    SolveRequest,
    report_semantic_digest,
)
from repro.workloads import build_trajectory, build_workload

#: (workload, sizes) pop-speed plans -- one tree family, one line
#: family, the two shapes with the most distinct stack structure.
FULL_WORKLOADS = (
    ("multi-tenant-forest", (60, 120, 180)),
    ("bursty-lines", (24, 48)),
)
QUICK_WORKLOADS = (
    ("multi-tenant-forest", (60,)),
    ("bursty-lines", (24,)),
)
ENGINES = ("reference", "sliced", "vectorized")
SEED = 23
#: Delta arm: trajectory, size, steps (quick halves the steps).
DELTA_PLAN = ("tenant-churn", 64, 12)
#: Required admission-component replay fraction across the delta arm's
#: warm solves (churn touches a few components; the rest must replay).
MIN_REPLAY_FRACTION = 0.5
KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _pop_arm(name: str, size: int, repeats: int):
    """Time the three admission engines on one solver-emitted stack."""
    report = solve_auto(build_workload(name, size, seed=SEED), seed=SEED, **KNOBS)
    stack = report.result.stack
    row = {
        "workload": name,
        "size": size,
        "batches": sum(1 for b in stack if b),
        "instances": sum(len(b) for b in stack),
        "components": len(stack_components(stack)),
    }
    for engine in ENGINES:
        laps = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            solution = run_second_phase(
                stack, engine=engine, workers=2, backend="thread"
            )
            laps.append(time.perf_counter() - t0)
            assert solution == report.solution, (
                f"{engine} pop diverged on {name}@{size}"
            )
        row[f"{engine}_ms"] = _median(laps) * 1e3
    return row


def _delta_arm(steps: int):
    """Replay churn through the journaled service; returns the
    admission replay measurement (digest identity asserted per step)."""
    name, size, _ = DELTA_PLAN
    service = SchedulingService(keep_artifacts=True, disk_dir=None, workers=2)
    knobs = SolveKnobs(**KNOBS)
    warm = 0
    for step in build_trajectory(name, size, seed=SEED, steps=steps):
        request = SolveRequest(
            problem=step.problem, knobs=knobs, label=f"{name}@{size}+{step.index}"
        )
        if step.index == 0:
            service.solve(request)
            continue
        result = service.solve_delta(request)
        if result.delta is not None and result.delta.outcome == "warm":
            warm += 1
        cold = solve_auto(step.problem, seed=knobs.seed, **KNOBS)
        assert report_semantic_digest(result.report) == report_semantic_digest(
            cold
        ), f"{request.label} ({step.kind}): delta diverged from the cold solve"
    totals = service.stats["delta_totals"]
    components = totals["admission_components"]
    replayed = totals["admission_replayed"]
    fraction = (replayed / components) if components else 0.0
    return {
        "trajectory": name,
        "size": size,
        "snapshots": steps,
        "warm": warm,
        "admission_components": components,
        "admission_replayed": replayed,
        "admission_rerun": totals["admission_rerun"],
        "replay_fraction": fraction,
    }


def run_experiment(quick: bool = False):
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    repeats = 3 if quick else 7
    rows, pops = [], []
    for name, sizes in workloads:
        for size in sizes:
            m = _pop_arm(name, size, repeats)
            pops.append(m)
            rows.append(
                [
                    name, size, m["batches"], m["instances"], m["components"],
                    f"{m['reference_ms']:.2f}",
                    f"{m['sliced_ms']:.2f}",
                    f"{m['vectorized_ms']:.2f}",
                ]
            )
    delta = _delta_arm(steps=DELTA_PLAN[2] // 2 if quick else DELTA_PLAN[2])
    assert delta["warm"] > 0, "the delta arm must produce warm solves"
    assert delta["replay_fraction"] >= MIN_REPLAY_FRACTION, (
        f"admission replay fraction {delta['replay_fraction']:.2f} fell "
        f"under {MIN_REPLAY_FRACTION} "
        f"({delta['admission_replayed']}/{delta['admission_components']} "
        "components replayed)"
    )
    rows.append(
        [
            f"{delta['trajectory']} (delta)", delta["size"], "-",
            "-", delta["admission_components"],
            f"replayed {delta['admission_replayed']}",
            f"rerun {delta['admission_rerun']}",
            f"frac {delta['replay_fraction']:.2f}",
        ]
    )
    findings = {
        "quick": quick,
        "seed": SEED,
        "min_replay_fraction": MIN_REPLAY_FRACTION,
        "pops": pops,
        "delta": delta,
    }
    out = table(
        [
            "workload", "size", "batches", "instances", "components",
            "reference ms", "sliced ms", "vectorized ms",
        ],
        rows,
    )
    title = "E23 - Second-phase admission engines (pop speed + delta replay)"
    return title, out, findings


def bench_e23_admission_quick(benchmark):
    name, sizes = QUICK_WORKLOADS[0]

    def pops():
        return _pop_arm(name, sizes[0], repeats=1)

    m = benchmark(pops)
    assert m["components"] >= 1


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    delta = findings["delta"]
    print(
        f"{delta['trajectory']}@{delta['size']}: "
        f"{delta['admission_replayed']}/{delta['admission_components']} "
        f"admission components replayed "
        f"(fraction {delta['replay_fraction']:.2f}, floor "
        f"{MIN_REPLAY_FRACTION})"
    )
    emit_json(json_path, "e23", title, findings)
