"""E13 -- Section 5 "Distributed Implementation": the message-passing run.

Claims reproduced: the full protocol (hello, hash-Luby MIS rounds, dual
raise broadcasts, distributed stacks, reverse-order admission) runs on
the synchronous simulator within its precomputed script, never exceeds
its Luby budget, uses O(M)-size messages, and produces *bit-identical*
output to the logical executor with the same hash priorities.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro.core.framework import run_two_phase
from repro.distributed.runner import build_layout_and_thresholds, run_distributed
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest

EPSILON = 0.3


def run_experiment():
    rows = []
    for m in (6, 10, 14):
        problem = random_tree_problem(
            random_forest(14, 2, seed=m), m=m, seed=m + 1, pmax_over_pmin=4.0
        )
        report = run_distributed(problem, kind="unit-trees", epsilon=EPSILON, seed=m)
        layout, thresholds, rule = build_layout_and_thresholds(
            problem, "unit-trees", EPSILON
        )
        logical = run_two_phase(
            problem.instances, layout, rule, thresholds, mis="hash", seed=m
        )
        identical = [d.instance_id for d in report.solution.selected] == [
            d.instance_id for d in logical.solution.selected
        ]
        assert identical, "distributed and logical runs diverged"
        assert abs(report.dual_value - logical.dual.value()) < 1e-9
        script_len = len(report.schedule.build_ops())
        assert report.metrics.rounds <= script_len + 1
        mean_msg_size = report.metrics.volume / max(1, report.metrics.messages)
        assert mean_msg_size <= 40, "messages exceed O(M) size"
        rows.append(
            [
                m,
                len(problem.instances),
                report.metrics.rounds,
                report.metrics.messages,
                f"{mean_msg_size:.1f}",
                report.schedule.luby_iterations,
                identical,
            ]
        )
    out = table(
        [
            "processors",
            "instances",
            "sim rounds",
            "messages",
            "mean msg size",
            "Luby budget",
            "matches logical",
        ],
        rows,
    )
    return "E13 - Message-passing simulation (Section 5)", out, {}


def bench_e13_run_distributed(benchmark):
    problem = random_tree_problem(
        random_forest(14, 2, seed=10), m=10, seed=11, pmax_over_pmin=4.0
    )
    report = benchmark(run_distributed, problem, kind="unit-trees",
                       epsilon=EPSILON, seed=10)
    report.solution.verify()


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
