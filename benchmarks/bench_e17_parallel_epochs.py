"""E17 -- epoch-graph planning and the parallel first-phase engine.

Claim reproduced: the first phase's epochs need not run strictly in
sequence.  Dual variables live only on edges and demands, so epochs
whose groups share no path edge and no demand are independent; the
:class:`repro.core.plan.EpochPlan` partitions the epoch-interaction
graph into *waves* of mutually independent epochs, and
``engine='parallel'`` executes each wave concurrently over per-epoch
incremental state while staying **bit-identical** to
``engine='incremental'``.

The experiment measures, on the multi-tenant/forest workloads (the
families with the most epoch independence):

* the epoch-independence width found by the planner (>= 2 means the
  schedule genuinely parallelizes),
* wall-clock of reference vs incremental vs parallel (>= 2 workers),
  interleaving the engine runs round-robin and keeping per-engine
  minima so machine noise cancels out, and
* the engines' work meters (the parallel engine's plan-sliced state
  legitimately touches fewer adjacency entries).

On a GIL-bound CPython the parallel engine cannot beat the incremental
engine by brute concurrency -- epoch execution is pure Python -- so the
headline inequality is that planning must *pay for itself*: parallel
wall-clock stays at or below incremental (the plan's sliced state and
skipped global conflict graph offset the dispatch overhead), while the
architecture is ready for free-threaded runtimes and process pools.
``--quick`` runs a two-point smoke version for CI; ``--json OUT`` emits
the findings as machine-readable JSON.
"""
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import emit_json, parse_bench_args, table

from repro.algorithms.base import tree_layouts
from repro.core.dual import UnitRaise
from repro.core.framework import geometric_thresholds, run_two_phase, unit_xi
from repro.core.plan import EpochPlan
from repro.workloads import build_workload

#: (workload name, sizes); both are unit-height tree families, so the
#: UnitRaise rule and the paper's tree xi apply throughout.  The
#: multi-tenant sizes start where dispatch overhead is amortized (below
#: ~500 instances a first phase lasts single-digit milliseconds and the
#: pooled hand-off is a measurable fraction of it).
FULL_PLAN = (
    ("multi-tenant-forest", (800, 1600, 3200)),
    ("powerlaw-trees", (200, 400)),
)
QUICK_PLAN = (
    ("multi-tenant-forest", (800, 1600)),
    ("powerlaw-trees", (120,)),
)
EPSILON = 0.2
#: Worker counts compared against the serial engines.
WORKER_COUNTS = (2, 4)
#: Interleaved timing repetitions per engine.
REPEATS = 5
#: Wall-clock tolerance for the parallel <= incremental assertion.  The
#: engines are within measurement noise of each other by design and the
#: *reported* ratio is the honest number; full mode (larger sizes, dev
#: machines) gets a tight bound, --quick (CI smoke on shared runners,
#: where two GIL-bound pure-Python timings jitter) only a backstop that
#: still catches real regressions such as accidental serialization.
NOISE_TOLERANCE_FULL = 1.10
NOISE_TOLERANCE_QUICK = 1.25


def _setup(name: str, size: int, seed: int):
    problem = build_workload(name, size, seed=seed)
    layout, _ = tree_layouts(problem, "ideal")
    thresholds = geometric_thresholds(
        unit_xi(max(layout.critical_set_size, 6)), EPSILON
    )
    return problem, layout, thresholds


def _timed_engines(problem, layout, thresholds, seed):
    """Interleave engine runs round-robin; return per-engine best times
    and one result per engine for the equivalence checks."""
    configs = [("reference", None), ("incremental", None)]
    configs += [("parallel", w) for w in WORKER_COUNTS]
    best = {key: float("inf") for key in configs}
    results = {}
    for _ in range(REPEATS):
        for key in configs:
            engine, workers = key
            t0 = time.perf_counter()
            res = run_two_phase(
                problem.instances, layout, UnitRaise(), thresholds,
                mis="greedy", seed=seed, engine=engine, workers=workers,
            )
            best[key] = min(best[key], time.perf_counter() - t0)
            results[key] = res
    return best, results


def _assert_identical(a, b, what):
    assert [d.instance_id for d in a.solution.selected] == [
        d.instance_id for d in b.solution.selected
    ], f"{what}: engines disagreed on the solution"
    assert [(e.order, e.instance.instance_id, e.delta) for e in a.events] == [
        (e.order, e.instance.instance_id, e.delta) for e in b.events
    ], f"{what}: engines disagreed on the raise log"
    assert a.counters.semantic_tuple() == b.counters.semantic_tuple(), (
        f"{what}: engines disagreed on the schedule counters"
    )
    assert a.dual.alpha == b.dual.alpha and a.dual.beta == b.dual.beta, (
        f"{what}: engines disagreed on the final duals"
    )


def run_experiment(quick: bool = False):
    plan = QUICK_PLAN if quick else FULL_PLAN
    rows = []
    findings = {"quick": quick, "workloads": {}}
    for name, sizes in plan:
        for size in sizes:
            problem, layout, thresholds = _setup(name, size, seed=size)
            epoch_plan = EpochPlan.build(problem.instances, layout)
            epoch_plan.verify()
            best, results = _timed_engines(problem, layout, thresholds, seed=size)
            ref = results[("reference", None)]
            inc = results[("incremental", None)]
            _assert_identical(ref, inc, f"{name}@{size} ref/inc")
            for w in WORKER_COUNTS:
                _assert_identical(
                    inc, results[("parallel", w)], f"{name}@{size} inc/par{w}"
                )
            ref_t = best[("reference", None)]
            inc_t = best[("incremental", None)]
            par_t = min(best[("parallel", w)] for w in WORKER_COUNTS)
            par_c = results[("parallel", WORKER_COUNTS[0])].counters
            inc_c = inc.counters
            # Plan-sliced state must strictly reduce adjacency work.
            assert par_c.adjacency_touches <= inc_c.adjacency_touches, (
                f"{name}@{size}: sliced adjacency did not reduce touches"
            )
            rows.append(
                [
                    name,
                    size,
                    len(problem.instances),
                    layout.n_epochs,
                    epoch_plan.n_waves,
                    epoch_plan.width,
                    f"{ref_t * 1e3:.1f}",
                    f"{inc_t * 1e3:.1f}",
                    f"{par_t * 1e3:.1f}",
                    f"{par_t / inc_t:.2f}x",
                    inc_c.adjacency_touches,
                    par_c.adjacency_touches,
                ]
            )
            findings["workloads"].setdefault(name, {})[size] = {
                "instances": len(problem.instances),
                "n_epochs": layout.n_epochs,
                "n_waves": epoch_plan.n_waves,
                "width": epoch_plan.width,
                "ref_ms": ref_t * 1e3,
                "inc_ms": inc_t * 1e3,
                "par_ms": par_t * 1e3,
                "par_over_inc": par_t / inc_t,
                "adjacency_touches": {
                    "incremental": inc_c.adjacency_touches,
                    "parallel": par_c.adjacency_touches,
                },
            }
            if name == "multi-tenant-forest":
                # The headline workload must expose real independence and
                # the planner must pay for itself on wall-clock.
                assert epoch_plan.width >= 2, (
                    f"{name}@{size}: expected epoch-independence width >= 2, "
                    f"got {epoch_plan.width}"
                )
                tolerance = NOISE_TOLERANCE_QUICK if quick else NOISE_TOLERANCE_FULL
                assert par_t <= inc_t * tolerance, (
                    f"{name}@{size}: parallel {par_t * 1e3:.2f}ms exceeds "
                    f"incremental {inc_t * 1e3:.2f}ms beyond noise tolerance"
                )
    widths = [
        stats["width"]
        for stats in findings["workloads"].get("multi-tenant-forest", {}).values()
    ]
    ratios = [
        stats["par_over_inc"]
        for stats in findings["workloads"].get("multi-tenant-forest", {}).values()
    ]
    findings["max_width"] = max(widths, default=0)
    findings["best_par_over_inc"] = min(ratios, default=float("nan"))
    out = table(
        [
            "workload", "size", "instances", "epochs", "waves", "width",
            "ref ms", "inc ms", "par ms", "par/inc",
            "inc adj", "par adj",
        ],
        rows,
    )
    return "E17 - Epoch-graph planning and the parallel engine", out, findings


def bench_e17_parallel_multi_tenant_400(benchmark):
    problem, layout, thresholds = _setup("multi-tenant-forest", 400, seed=400)
    result = benchmark(
        run_two_phase, problem.instances, layout, UnitRaise(), thresholds,
        mis="greedy", seed=400, engine="parallel", workers=4,
    )
    result.solution.verify()


def bench_e17_incremental_multi_tenant_400(benchmark):
    problem, layout, thresholds = _setup("multi-tenant-forest", 400, seed=400)
    result = benchmark(
        run_two_phase, problem.instances, layout, UnitRaise(), thresholds,
        mis="greedy", seed=400, engine="incremental",
    )
    result.solution.verify()


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    print(
        "multi-tenant-forest: max width", findings["max_width"],
        "best par/inc", f"{findings['best_par_over_inc']:.2f}",
    )
    emit_json(json_path, "e17", title, findings)