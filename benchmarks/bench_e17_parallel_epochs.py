"""E17 -- epoch-graph planning and the parallel first-phase engine.

Claim reproduced: the first phase's epochs need not run strictly in
sequence.  Dual variables live only on edges and demands, so epochs
whose groups share no path edge and no demand are independent; the
:class:`repro.core.plan.EpochPlan` partitions the epoch-interaction
graph into *waves* of mutually independent epochs, and
``engine='parallel'`` executes each wave concurrently over per-epoch
incremental state while staying **bit-identical** to
``engine='incremental'`` -- on every execution backend.

The experiment measures, on the multi-tenant/forest workloads (the
families with the most epoch independence):

* the epoch-independence width found by the planner (>= 2 means the
  schedule genuinely parallelizes),
* wall-clock of reference vs incremental vs parallel on the *thread*
  and *process* backends (>= 2 workers), interleaving the engine runs
  round-robin and keeping per-engine minima so machine noise cancels
  out, and
* the engines' work meters (the parallel engine's plan-sliced state
  legitimately touches fewer adjacency entries), and
* the relaxed component-split mode: wall-clock of
  ``plan_granularity="component"`` (the ``cmp ms`` column, verified
  feasible + certified) next to what the ``"auto"`` heuristic decides
  for the plan (``auto(gain)`` -- ``split``/``epoch`` with the
  component-split gain that drove the call).

On a GIL-bound CPython the thread backend cannot beat the incremental
engine by brute concurrency -- epoch execution is pure Python -- so its
headline inequality is that planning must *pay for itself*: thread
wall-clock stays at or below incremental.  The process backend is where
real CPU parallelism enters: wave jobs are pickled to a warm worker
pool and run truly concurrently, so on multi-core hosts it must come in
at or below the thread backend on the widest workload at the largest
size (on single-CPU runners the pickling overhead is bounded by the
noise tolerance instead).  ``--quick`` runs a two-point smoke version
for CI; ``--json OUT`` emits the findings -- with per-backend labels --
as machine-readable JSON.
"""
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import emit_json, parse_bench_args, table

from repro.algorithms.base import tree_layouts
from repro.core.dual import UnitRaise
from repro.core.engines.backends import usable_cpu_count
from repro.core.framework import geometric_thresholds, run_two_phase, unit_xi
from repro.core.plan import EpochPlan
from repro.workloads import build_workload

#: (workload name, sizes); both are unit-height tree families, so the
#: UnitRaise rule and the paper's tree xi apply throughout.  The
#: multi-tenant sizes start where dispatch overhead is amortized (below
#: ~500 instances a first phase lasts single-digit milliseconds and the
#: pooled hand-off is a measurable fraction of it).
FULL_PLAN = (
    ("multi-tenant-forest", (800, 1600, 3200)),
    ("powerlaw-trees", (200, 400)),
)
QUICK_PLAN = (
    ("multi-tenant-forest", (800, 1600)),
    ("powerlaw-trees", (120,)),
)
EPSILON = 0.2
#: Worker counts compared against the serial engines.
WORKER_COUNTS = (2, 4)
#: Execution backends timed for engine='parallel'.
TIMED_BACKENDS = ("thread", "process")
#: Interleaved timing repetitions per engine.
REPEATS = 5
#: Wall-clock tolerance for the thread-parallel <= incremental
#: assertion.  The engines are within measurement noise of each other
#: by design and the *reported* ratio is the honest number; full mode
#: (larger sizes, dev machines) gets a tight bound, --quick (CI smoke
#: on shared runners, where two GIL-bound pure-Python timings jitter)
#: only a backstop that still catches real regressions such as
#: accidental serialization.
NOISE_TOLERANCE_FULL = 1.10
NOISE_TOLERANCE_QUICK = 1.25
#: Wall-clock tolerance for the process <= thread assertion on the
#: widest workload at its largest size.  With >= 2 usable CPUs the
#: process backend runs wave jobs truly concurrently and full mode gets
#: a tight bound; --quick (CI smoke on shared, contended runners) gets
#: the same loosened backstop treatment as the thread assertion.  On a
#: single usable CPU there is no parallelism to win, only pickling to
#: pay, so the bound degrades further while still catching pathological
#: serialization overhead.
PROCESS_TOLERANCE_MULTICORE = 1.10
PROCESS_TOLERANCE_MULTICORE_QUICK = 1.30
PROCESS_TOLERANCE_SINGLE_CPU = 1.50


def _setup(name: str, size: int, seed: int):
    problem = build_workload(name, size, seed=seed)
    layout, _ = tree_layouts(problem, "ideal")
    thresholds = geometric_thresholds(
        unit_xi(max(layout.critical_set_size, 6)), EPSILON
    )
    return problem, layout, thresholds


def _timed_engines(problem, layout, thresholds, seed):
    """Interleave engine runs round-robin; return per-config best times
    and one result per config for the equivalence checks.  Config keys
    are (engine, workers, backend, plan_granularity); the component-mode
    config rides along for the relaxed-granularity column (it is not
    part of the bit-identity checks -- component splitting waives
    counter equality by design)."""
    configs = [
        ("reference", None, None, None),
        ("incremental", None, None, None),
    ]
    configs += [
        ("parallel", w, b, None) for b in TIMED_BACKENDS for w in WORKER_COUNTS
    ]
    configs.append(("parallel", max(WORKER_COUNTS), "thread", "component"))
    best = {key: float("inf") for key in configs}
    results = {}
    for _ in range(REPEATS):
        for key in configs:
            engine, workers, backend, granularity = key
            t0 = time.perf_counter()
            res = run_two_phase(
                problem.instances, layout, UnitRaise(), thresholds,
                mis="greedy", seed=seed, engine=engine, workers=workers,
                backend=backend, plan_granularity=granularity,
            )
            best[key] = min(best[key], time.perf_counter() - t0)
            results[key] = res
    return best, results


def _assert_identical(a, b, what):
    assert a.semantic_tuple() == b.semantic_tuple(), (
        f"{what}: engines disagreed on the semantic artifact"
    )


def run_experiment(quick: bool = False):
    plan = QUICK_PLAN if quick else FULL_PLAN
    rows = []
    findings = {
        "quick": quick,
        "usable_cpus": usable_cpu_count(),
        "workloads": {},
    }
    for name, sizes in plan:
        for size in sizes:
            problem, layout, thresholds = _setup(name, size, seed=size)
            epoch_plan = EpochPlan.build(
                problem.instances, layout, granularity="auto"
            )
            epoch_plan.verify()
            split_gain = epoch_plan.component_split_gain()
            auto_splits = epoch_plan.recommend_split()
            best, results = _timed_engines(problem, layout, thresholds, seed=size)
            ref = results[("reference", None, None, None)]
            inc = results[("incremental", None, None, None)]
            _assert_identical(ref, inc, f"{name}@{size} ref/inc")
            for backend in TIMED_BACKENDS:
                for w in WORKER_COUNTS:
                    _assert_identical(
                        inc, results[("parallel", w, backend, None)],
                        f"{name}@{size} inc/{backend}{w}",
                    )
            cmp_key = ("parallel", max(WORKER_COUNTS), "thread", "component")
            cmp_res = results[cmp_key]
            # Component mode waives counter equality but never the
            # solution contract: feasible and certified.
            cmp_res.solution.verify()
            assert cmp_res.certified_ratio >= 1.0, (
                f"{name}@{size}: component mode lost its certificate"
            )
            ref_t = best[("reference", None, None, None)]
            inc_t = best[("incremental", None, None, None)]
            backend_t = {
                backend: min(
                    best[("parallel", w, backend, None)] for w in WORKER_COUNTS
                )
                for backend in TIMED_BACKENDS
            }
            thr_t = backend_t["thread"]
            proc_t = backend_t["process"]
            cmp_t = best[cmp_key]
            par_c = results[("parallel", WORKER_COUNTS[0], "thread", None)].counters
            inc_c = inc.counters
            # Plan-sliced state must strictly reduce adjacency work.
            assert par_c.adjacency_touches <= inc_c.adjacency_touches, (
                f"{name}@{size}: sliced adjacency did not reduce touches"
            )
            rows.append(
                [
                    name,
                    size,
                    len(problem.instances),
                    layout.n_epochs,
                    epoch_plan.n_waves,
                    epoch_plan.width,
                    f"{ref_t * 1e3:.1f}",
                    f"{inc_t * 1e3:.1f}",
                    f"{thr_t * 1e3:.1f}",
                    f"{proc_t * 1e3:.1f}",
                    f"{cmp_t * 1e3:.1f}",
                    f"{thr_t / inc_t:.2f}x",
                    f"{proc_t / thr_t:.2f}x",
                    f"split({split_gain:.2f})" if auto_splits
                    else f"epoch({split_gain:.2f})",
                    inc_c.adjacency_touches,
                    par_c.adjacency_touches,
                ]
            )
            findings["workloads"].setdefault(name, {})[size] = {
                "instances": len(problem.instances),
                "n_epochs": layout.n_epochs,
                "n_waves": epoch_plan.n_waves,
                "width": epoch_plan.width,
                "ref_ms": ref_t * 1e3,
                "inc_ms": inc_t * 1e3,
                "backend_ms": {
                    backend: backend_t[backend] * 1e3
                    for backend in TIMED_BACKENDS
                },
                "component_ms": cmp_t * 1e3,
                "component_split_gain": split_gain,
                "auto_granularity": "component" if auto_splits else "epoch",
                "par_over_inc": thr_t / inc_t,
                "proc_over_thread": proc_t / thr_t,
                "adjacency_touches": {
                    "incremental": inc_c.adjacency_touches,
                    "parallel": par_c.adjacency_touches,
                },
            }
            if name == "multi-tenant-forest":
                # The headline workload must expose real independence and
                # the planner must pay for itself on wall-clock.
                assert epoch_plan.width >= 2, (
                    f"{name}@{size}: expected epoch-independence width >= 2, "
                    f"got {epoch_plan.width}"
                )
                tolerance = NOISE_TOLERANCE_QUICK if quick else NOISE_TOLERANCE_FULL
                assert thr_t <= inc_t * tolerance, (
                    f"{name}@{size}: thread-parallel {thr_t * 1e3:.2f}ms exceeds "
                    f"incremental {inc_t * 1e3:.2f}ms beyond noise tolerance"
                )
            if name == "multi-tenant-forest" and size == max(sizes):
                # The real-speedup claim of the process backend: at the
                # largest size of the widest workload, real CPU
                # parallelism must at least pay for its pickling.
                if usable_cpu_count() < 2:
                    tolerance = PROCESS_TOLERANCE_SINGLE_CPU
                elif quick:
                    tolerance = PROCESS_TOLERANCE_MULTICORE_QUICK
                else:
                    tolerance = PROCESS_TOLERANCE_MULTICORE
                assert proc_t <= thr_t * tolerance, (
                    f"{name}@{size}: process backend {proc_t * 1e3:.2f}ms "
                    f"exceeds thread backend {thr_t * 1e3:.2f}ms "
                    f"(tolerance {tolerance}x, "
                    f"{usable_cpu_count()} usable CPUs)"
                )
    mt = findings["workloads"].get("multi-tenant-forest", {})
    widths = [stats["width"] for stats in mt.values()]
    ratios = [stats["par_over_inc"] for stats in mt.values()]
    proc_ratios = [stats["proc_over_thread"] for stats in mt.values()]
    findings["max_width"] = max(widths, default=0)
    findings["best_par_over_inc"] = min(ratios, default=float("nan"))
    findings["best_proc_over_thread"] = min(proc_ratios, default=float("nan"))
    out = table(
        [
            "workload", "size", "instances", "epochs", "waves", "width",
            "ref ms", "inc ms", "thr ms", "proc ms", "cmp ms", "thr/inc",
            "proc/thr", "auto(gain)", "inc adj", "par adj",
        ],
        rows,
    )
    return "E17 - Epoch-graph planning and the parallel engine", out, findings


def bench_e17_parallel_multi_tenant_400(benchmark):
    problem, layout, thresholds = _setup("multi-tenant-forest", 400, seed=400)
    result = benchmark(
        run_two_phase, problem.instances, layout, UnitRaise(), thresholds,
        mis="greedy", seed=400, engine="parallel", workers=4,
    )
    result.solution.verify()


def bench_e17_process_multi_tenant_400(benchmark):
    problem, layout, thresholds = _setup("multi-tenant-forest", 400, seed=400)
    result = benchmark(
        run_two_phase, problem.instances, layout, UnitRaise(), thresholds,
        mis="greedy", seed=400, engine="parallel", workers=4,
        backend="process",
    )
    result.solution.verify()


def bench_e17_incremental_multi_tenant_400(benchmark):
    problem, layout, thresholds = _setup("multi-tenant-forest", 400, seed=400)
    result = benchmark(
        run_two_phase, problem.instances, layout, UnitRaise(), thresholds,
        mis="greedy", seed=400, engine="incremental",
    )
    result.solution.verify()


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    print(
        "multi-tenant-forest: max width", findings["max_width"],
        "best thr/inc", f"{findings['best_par_over_inc']:.2f}",
        "best proc/thr", f"{findings['best_proc_over_thread']:.2f}",
        f"({findings['usable_cpus']} usable CPUs)",
    )
    emit_json(json_path, "e17", title, findings)
