"""E22 -- the sharded service tier: scaling, failover, delta-push egress.

Claim reproduced: partitioning the serving tier across N shard worker
processes behind a consistent-hash router multiplies *cold-solve*
throughput (each shard owns a disjoint fingerprint range, so cold
misses solve in parallel across processes) without changing a served
bit, and the schedule-diff egress layer pushes O(changed cells) per
subscribed update instead of O(solution).

Three phases, all over real sockets:

* **Scaling** -- a Zipf-skewed replay (E18/E19's stream shape) drives a
  single-shard tier and a ``FLEET``-shard tier with identical traffic;
  cold-heavy population so the solver, not the socket, is the
  bottleneck.  Every response digest is checked against a direct
  :func:`repro.algorithms.solve_auto`.  The fleet tier runs with
  telemetry on and the router's ``{"op": "metrics"}`` cluster-merged
  view must account for exactly the replayed stream (merged request
  count == stream length == sum of per-shard counts, with a finite
  per-family p99 out of the bucket-wise-merged histograms).  The >= 2.5x four-shard speedup
  assert only arms in full mode on a box with >= 4 usable CPUs -- on
  fewer cores the shards time-slice one another and the ratio is
  reported, not asserted.
* **Shard kill** -- one shard is SIGKILLed mid-replay; the router
  removes it from the ring and re-homes only its keys.  The replay must
  complete and every post-kill digest must equal the pre-kill (and
  direct) digest -- bit-identical failover.
* **Egress** -- a subscribed client follows a churn trajectory through
  delta pushes; per step the delta payload must stay within
  ``400 + 120 * changed_cells`` bytes (O(delta), never O(table)), and a
  :class:`repro.service.ScheduleFollower` applies every push with its
  digest handshake, cross-checked against direct solves of each
  snapshot.

``--quick`` shrinks populations for CI; ``--json OUT`` emits findings
via the shared benchmark plumbing.
"""
import asyncio
import json
import math
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import emit_json, histogram_percentiles, parse_bench_args, table

from repro.algorithms import solve_auto
from repro.core.engines.backends import usable_cpu_count
from repro.service import (
    ScheduleFollower,
    ShardCluster,
    ShardRouter,
    SolveRequest,
    report_semantic_digest,
    schedule_table,
    table_digest,
)
from repro.workloads import build_trajectory, build_workload

FLEET = 4
ZIPF_S = 1.2
STREAM_SEED = 22
KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)
#: Cold-heavy population: many distinct labels, few repeats, so the
#: replay measures parallel solving, not cache bandwidth.
FULL_POPULATION = (
    ("multi-tenant-forest", 64, 10),
    ("diurnal-cycle", 48, 10),
    ("bursty-lines", 40, 10),
)
QUICK_POPULATION = (
    ("multi-tenant-forest", 32, 3),
    ("diurnal-cycle", 24, 3),
    ("bursty-lines", 16, 3),
)
FULL_REQUESTS = 60
QUICK_REQUESTS = 12
#: Egress phase: trajectory steps followed by the subscriber.
FULL_STEPS = 10
QUICK_STEPS = 4
TRAJECTORY = ("churn-lines", 24, 5)  # name, size, seed
#: Per-step delta budget: a fixed envelope plus a per-cell allowance
#: (a JSON cell is ~60-90 bytes; 120 leaves headroom).
DELTA_BYTES_BASE = 400
DELTA_BYTES_PER_CELL = 120
SCALING_TARGET = 2.5


def _population(plan):
    return [
        (name, size, seed)
        for name, size, n_seeds in plan
        for seed in range(n_seeds)
    ]


def _zipf_stream(n_population, n_requests, rng):
    weights = [1.0 / (r + 1) ** ZIPF_S for r in range(n_population)]
    ranks = list(range(n_population))
    rng.shuffle(ranks)
    return [ranks[i] for i in rng.choices(
        range(n_population), weights, k=n_requests
    )]


def _direct_digests(population):
    digests = {}
    for name, size, seed in population:
        report = solve_auto(
            build_workload(name, size, seed=seed), **{**KNOBS, "seed": seed}
        )
        digests[f"{name}@{size}#{seed}"] = report_semantic_digest(report)
    return digests


def _solve_msg(entry, req_id, **extra):
    name, size, seed = entry
    return {"id": req_id, "workload": name, "size": size, "seed": seed,
            "knobs": KNOBS, **extra}


async def _rpc(reader, writer, message):
    writer.write(json.dumps(message).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def _replay(addresses, population, stream, direct, collect_metrics=False):
    """Pipeline the whole stream through a router; verify every digest.

    With ``collect_metrics`` the replay finishes by asking the router
    for the cluster-merged telemetry view (``{"op": "metrics"}``) and
    returns it alongside the elapsed time.
    """
    router = ShardRouter(addresses)
    host, port = await router.serve()
    reader, writer = await asyncio.open_connection(host, port)
    t_start = time.perf_counter()
    for req_id, idx in enumerate(stream):
        writer.write(
            json.dumps(_solve_msg(population[idx], req_id)).encode() + b"\n"
        )
    await writer.drain()
    responses = {}
    while len(responses) < len(stream):
        line = await reader.readline()
        assert line, "connection closed before all responses arrived"
        response = json.loads(line)
        responses[response["id"]] = response
    elapsed = time.perf_counter() - t_start
    for req_id, idx in enumerate(stream):
        name, size, seed = population[idx]
        label = f"{name}@{size}#{seed}"
        response = responses[req_id]
        assert response["ok"], f"{label}: {response.get('error')}"
        assert response["semantic_digest"] == direct[label], (
            f"{label}: sharded response diverged from direct solve"
        )
    metrics = None
    if collect_metrics:
        metrics = await _rpc(reader, writer, {"op": "metrics", "id": -2})
        assert metrics["ok"], f"metrics op failed: {metrics.get('error')}"
    writer.close()
    await writer.wait_closed()
    await router.aclose()
    return elapsed, metrics


def _check_cluster_metrics(metrics, n_requests):
    """The router-merged telemetry must account for the whole replay.

    Bucket-wise merging across shards is exact (shared fixed bounds),
    so the cluster view's request count must equal the stream length
    -- equal to the sum of the per-shard counts -- and the merged
    request histogram must yield a finite p99.  Returns
    ``{"request_p99_ms": {family: ms}, "shard_requests": {...}}``.
    """

    def request_count(snapshot):
        return sum(
            h["count"]
            for key, h in snapshot.get("histograms", {}).items()
            if key.startswith("repro_service_request_seconds")
        )

    cluster = metrics["cluster"]
    shard_counts = {
        entry["shard"]: request_count(entry["metrics"])
        for entry in metrics["shards"]
    }
    total = request_count(cluster)
    assert total == n_requests, (
        f"cluster-merged request count {total} != {n_requests} served"
    )
    assert total == sum(shard_counts.values()), (
        f"merged count {total} != per-shard sum {shard_counts}"
    )
    p99 = {}
    for family in ("line", "tree"):
        pcts = histogram_percentiles(
            cluster, "repro_service_request_seconds", family=family
        )
        if not math.isnan(pcts["p99"]):
            p99[family] = pcts["p99"] * 1e3
    assert p99, "merged request histogram must yield a finite family p99"
    return {"request_p99_ms": p99, "shard_requests": shard_counts}


def _scaling_phase(quick, population, stream, direct):
    results = {}
    telemetry = None
    for shards in (1, FLEET):
        with ShardCluster(shards=shards, capacity=len(population),
                          workers=2, metrics=True) as cluster:
            elapsed, metrics = asyncio.run(
                _replay(cluster.addresses, population, stream, direct,
                        collect_metrics=shards == FLEET)
            )
            results[shards] = elapsed
            if metrics is not None:
                telemetry = _check_cluster_metrics(metrics, len(stream))
    ratio = results[1] / results[FLEET]
    if not quick and usable_cpu_count() >= FLEET:
        assert ratio >= SCALING_TARGET, (
            f"{FLEET}-shard replay must be >= {SCALING_TARGET}x a single "
            f"shard on a >= {FLEET}-CPU box, got {ratio:.2f}x"
        )
    return results, ratio, telemetry


async def _kill_phase(population, stream, direct):
    """SIGKILL one shard mid-replay; the stream must finish identically."""
    with ShardCluster(shards=FLEET, capacity=len(population),
                      workers=2) as cluster:
        router = ShardRouter(cluster.addresses)
        host, port = await router.serve()
        reader, writer = await asyncio.open_connection(host, port)
        half = max(1, len(stream) // 2)
        rerouted = 0
        try:
            for req_id, idx in enumerate(stream):
                if req_id == half:
                    cluster.kill(0)
                response = await _rpc(
                    reader, writer, _solve_msg(population[idx], req_id)
                )
                name, size, seed = population[idx]
                label = f"{name}@{size}#{seed}"
                assert response["ok"], (
                    f"{label} (req {req_id}): replay must survive the kill, "
                    f"got {response.get('error')}"
                )
                assert response["semantic_digest"] == direct[label], (
                    f"{label}: post-kill digest diverged"
                )
            stats = await _rpc(reader, writer, {"op": "stats", "id": -1})
            assert stats["stats"]["router"]["shards_dead"] == ["shard-0"]
            rerouted = stats["stats"]["router"]["reroutes"]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            await router.aclose()
    return rerouted


async def _egress_phase(steps):
    """A subscriber follows a churn trajectory through delta pushes."""
    name, size, seed = TRAJECTORY
    trajectory = build_trajectory(name, size, seed=seed, steps=steps)
    follower = ScheduleFollower()
    per_step = []
    with ShardCluster(shards=2, capacity=64, workers=2) as cluster:
        router = ShardRouter(cluster.addresses)
        host, port = await router.serve()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for k in range(steps):
                response = await _rpc(reader, writer, {
                    "id": k, "trajectory": name, "size": size, "seed": seed,
                    "step": k, "knobs": KNOBS, "sub": "bench",
                })
                assert response["ok"], response.get("error")
                push = response["push"]
                push_bytes = len(json.dumps(push).encode())
                table_cells = follower.apply(push)  # digest-verified
                direct = solve_auto(
                    trajectory[k].problem, **{**KNOBS, "seed": seed}
                )
                assert table_digest(table_cells) == table_digest(
                    schedule_table(direct)
                ), f"step {k}: applied push diverged from direct solve"
                changed = (
                    len(push.get("added", [])) + len(push.get("removed", []))
                    if push["mode"] == "delta"
                    else len(push["table"])
                )
                if push["mode"] == "delta":
                    budget = DELTA_BYTES_BASE + DELTA_BYTES_PER_CELL * changed
                    assert push_bytes <= budget, (
                        f"step {k}: delta payload {push_bytes}B exceeds "
                        f"O(changed-cells) budget {budget}B "
                        f"({changed} cells changed)"
                    )
                per_step.append((push["mode"], changed, push_bytes,
                                 len(table_cells)))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            await router.aclose()
    assert any(mode == "delta" for mode, _, _, _ in per_step[1:]), (
        "churn steps share most cells: some push must be a delta"
    )
    return per_step


def run_experiment(quick: bool = False):
    plan = QUICK_POPULATION if quick else FULL_POPULATION
    n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    steps = QUICK_STEPS if quick else FULL_STEPS
    population = _population(plan)
    rng = random.Random(STREAM_SEED)
    stream = _zipf_stream(len(population), n_requests, rng)
    direct = _direct_digests(population)

    elapsed, ratio, telemetry = _scaling_phase(quick, population, stream, direct)
    rerouted = asyncio.run(_kill_phase(population, stream, direct))
    per_step = asyncio.run(_egress_phase(steps))

    full_bytes = [b for m, _, b, _ in per_step if m == "full"]
    delta_rows = [(c, b, n) for m, c, b, n in per_step if m == "delta"]
    delta_bytes = [b for _, b, _ in delta_rows]
    rows = [
        ["1 shard", n_requests, f"{n_requests / elapsed[1]:.1f}", "-"],
        [f"{FLEET} shards", n_requests,
         f"{n_requests / elapsed[FLEET]:.1f}", f"{ratio:.2f}x"],
    ]
    findings = {
        "quick": quick,
        "fleet": FLEET,
        "usable_cpus": usable_cpu_count(),
        "population": len(population),
        "requests": n_requests,
        "zipf_s": ZIPF_S,
        "single_shard_s": elapsed[1],
        "fleet_s": elapsed[FLEET],
        "speedup": ratio,
        "scaling_asserted": (not quick) and usable_cpu_count() >= FLEET,
        "scaling_target": SCALING_TARGET,
        "telemetry": telemetry,
        "kill_reroutes": rerouted,
        "egress_steps": len(per_step),
        "egress_full_syncs": len(full_bytes),
        "egress_delta_pushes": len(delta_rows),
        "egress_full_bytes_mean": (
            sum(full_bytes) / len(full_bytes) if full_bytes else 0
        ),
        "egress_delta_bytes_mean": (
            sum(delta_bytes) / len(delta_bytes) if delta_bytes else 0
        ),
        "egress_delta_cells_mean": (
            sum(c for c, _, _ in delta_rows) / len(delta_rows)
            if delta_rows else 0
        ),
        "delta_bytes_budget": (
            f"{DELTA_BYTES_BASE} + {DELTA_BYTES_PER_CELL} * cells"
        ),
        "per_step": [
            {"mode": m, "changed": c, "bytes": b, "table_cells": n}
            for m, c, b, n in per_step
        ],
    }
    out = table(["tier", "requests", "req/s", "speedup"], rows)
    return "E22 - Sharded tier: scaling, failover, delta-push egress", out, findings


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    gate = "asserted" if findings["scaling_asserted"] else "reported only"
    p99s = ", ".join(
        f"{fam} {ms:.1f}ms"
        for fam, ms in sorted(findings["telemetry"]["request_p99_ms"].items())
    )
    print(
        f"{findings['fleet']}-shard speedup {findings['speedup']:.2f}x "
        f"({gate}, {findings['usable_cpus']} usable CPUs); "
        f"cluster-merged request p99 {p99s}; "
        f"shard-kill survived with bit-identical digests "
        f"({findings['kill_reroutes']} ring removals); "
        f"egress: {findings['egress_delta_pushes']} delta pushes avg "
        f"{findings['egress_delta_bytes_mean']:.0f}B "
        f"({findings['egress_delta_cells_mean']:.1f} cells) vs "
        f"{findings['egress_full_syncs']} full syncs avg "
        f"{findings['egress_full_bytes_mean']:.0f}B"
    )
    emit_json(json_path, "e22", title, findings)
