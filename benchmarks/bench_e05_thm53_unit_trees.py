"""E5 -- Theorem 5.3: (7+eps)-approximation, unit heights, trees.

Claims reproduced: across sizes and seeds, the measured profit is
within the provable factor of the true optimum (exact for small m, LP
bound for larger); the run's own dual certificate never exceeds
``7/(1-eps) * p(S)``; and the simulated communication rounds track the
``O(Time(MIS) log n log(1/eps) log(pmax/pmin))`` bound.
"""
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import lp_upper_bound, solve_exact, solve_unit_trees
from repro.analysis.metrics import theoretical_round_bound
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest

EPSILON = 0.1
CASES = [  # (n, m, with_exact)
    (16, 12, True),
    (32, 14, True),
    (64, 40, False),
    (128, 80, False),
]


def run_experiment():
    rows = []
    cert_ratios = []
    round_usages = []
    for n, m, with_exact in CASES:
        for seed in range(3):
            problem = random_tree_problem(
                random_forest(n, 2, seed=seed), m=m, seed=seed + 100
            )
            report = solve_unit_trees(problem, epsilon=EPSILON, seed=seed)
            report.solution.verify()
            lp = lp_upper_bound(problem)
            opt = solve_exact(problem).profit if with_exact else None
            yard = opt if opt is not None else lp
            measured = yard / report.profit
            cert = report.certified_ratio
            limit = 7.0 / (1 - EPSILON)
            assert cert <= limit + 1e-6, "certified ratio exceeds 7/(1-eps)"
            assert measured <= cert + 1e-6
            rounds = report.communication_rounds
            bound = theoretical_round_bound(
                n, EPSILON, problem.pmax / problem.pmin, time_mis=14
            )
            cert_ratios.append(cert)
            round_usages.append(rounds / bound)
            rows.append(
                [
                    n,
                    m,
                    seed,
                    report.profit,
                    f"{yard:.4g}{'' if opt is not None else ' (LP)'}",
                    measured,
                    cert,
                    rounds,
                    int(bound),
                ]
            )
    assert max(round_usages) <= 8.0, "rounds blow past the Theorem 5.3 bound"
    out = table(
        [
            "n",
            "m",
            "seed",
            "profit",
            "OPT yardstick",
            "measured ratio",
            "certified ratio (<=7.78)",
            "sim rounds",
            "round bound",
        ],
        rows,
    )
    findings = {
        "mean_certified_ratio": statistics.mean(cert_ratios),
        "max_round_usage": max(round_usages),
    }
    return "E5 - Theorem 5.3 unit-height trees (7+eps)", out, findings


def bench_e05_solve_unit_trees(benchmark):
    problem = random_tree_problem(random_forest(64, 2, seed=0), m=40, seed=100)
    report = benchmark(solve_unit_trees, problem, epsilon=EPSILON, seed=0)
    assert report.certified_ratio <= 7.0 / (1 - EPSILON) + 1e-6


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
