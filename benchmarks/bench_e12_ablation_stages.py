"""E12 -- Ablation: multi-stage thresholds vs PS's single stage.

The Remark after Theorem 5.3, quantified: running the framework with
the paper's geometric stage thresholds ``1 - xi^j`` drives the
slackness to ``1 - eps`` (certified factor ``(Delta+1)/(1-eps)``),
while the Panconesi-Sozio single-stage variant stops at
``lambda = 1/(5+eps)`` (factor ``(Delta+1)(5+eps)``).  The price is a
multiplicative ``log(1/eps)`` in stages -- cheap -- for a ~4.4x better
certificate.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro.algorithms.base import line_layouts
from repro.core.dual import UnitRaise
from repro.core.framework import geometric_thresholds, run_two_phase, unit_xi
from repro.workloads import random_line_problem

EPSILONS = (0.5, 0.2, 0.05)


def run_experiment():
    problem = random_line_problem(40, 16, r=2, seed=77, window_slack=3)
    layout = line_layouts(problem)
    rows = []
    cert_by_mode = {}
    for eps in EPSILONS:
        multi = run_two_phase(
            problem.instances,
            layout,
            UnitRaise(),
            geometric_thresholds(unit_xi(3), eps),
            mis="greedy",
        )
        single = run_two_phase(
            problem.instances,
            layout,
            UnitRaise(),
            [1.0 / (5.0 + eps)],
            mis="greedy",
        )
        for mode, result in (("multi-stage", multi), ("PS single-stage", single)):
            result.solution.verify()
            rows.append(
                [
                    eps,
                    mode,
                    len(result.thresholds),
                    result.slackness,
                    result.profit,
                    result.certified_ratio,
                    result.counters.steps,
                ]
            )
            cert_by_mode.setdefault(mode, []).append(result.certified_ratio)
        assert multi.slackness >= 1 - eps - 1e-9
        assert single.slackness == 1.0 / (5.0 + eps)
        # The multi-stage certificate is strictly tighter.
        assert multi.certified_ratio < single.certified_ratio
    out = table(
        ["eps", "mode", "stages", "lambda", "profit", "certified ratio", "steps"],
        rows,
    )
    return "E12 - Ablation: stage thresholds (Remark after Thm 5.3)", out, {
        mode: min(vals) for mode, vals in cert_by_mode.items()
    }


def bench_e12_multi_stage(benchmark):
    problem = random_line_problem(40, 16, r=2, seed=77, window_slack=3)
    layout = line_layouts(problem)
    thresholds = geometric_thresholds(unit_xi(3), 0.05)

    def run():
        return run_two_phase(
            problem.instances, layout, UnitRaise(), thresholds, mis="greedy"
        )

    result = benchmark(run)
    assert result.slackness >= 0.95 - 1e-9


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
