"""E2 -- Figure 2 / Figure 6: the tree-network worked examples.

Claims reproduced: on the Figure 2 tree all three demands route through
edge <4,5>, so unit heights admit exactly one (opt = 1) while heights
0.4/0.7/0.3 admit the first and third (opt = 2).  On the Figure 6 tree
the Section 4 anatomy holds: path(4,13) = 4-2-5-8-13, capture at node 2
under root 1, the stated wings and bending points.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import build_root_fixing, solve_arbitrary_trees, solve_exact, solve_unit_trees
from repro.trees.layered import bending_point, wings
from repro.workloads import figure2_problem, figure6_network, figure6_problem


def run_experiment():
    unit = figure2_problem(unit_height=True)
    heights = figure2_problem()
    opt_unit = solve_exact(unit).profit
    opt_heights = solve_exact(heights).profit
    assert opt_unit == 1.0 and opt_heights == 2.0

    rep_unit = solve_unit_trees(unit, epsilon=0.05, mis="greedy")
    rep_heights = solve_arbitrary_trees(heights, epsilon=0.05, mis="greedy", seed=0)
    assert opt_unit <= rep_unit.guarantee * rep_unit.profit + 1e-9
    assert opt_heights <= rep_heights.guarantee * rep_heights.profit + 1e-9

    net = figure6_network()
    problem6 = figure6_problem()
    inst = problem6.instances[0]
    td = build_root_fixing(net, root=1)
    anatomy_ok = (
        inst.path_vertex_seq == (4, 2, 5, 8, 13)
        and td.capture_node(inst) == 2
        and set(wings(inst, 4)) == {(0, 2, 4)}
        and set(wings(inst, 8)) == {(0, 5, 8), (0, 8, 13)}
        and bending_point(net, inst, 3) == 2
        and bending_point(net, inst, 9) == 5
    )
    assert anatomy_ok

    rows = [
        ["Fig.2 unit-height optimum (paper: 1)", opt_unit],
        ["Fig.2 unit-height algorithm profit", rep_unit.profit],
        ["Fig.2 heights optimum (paper: 2)", opt_heights],
        ["Fig.2 heights algorithm profit", rep_heights.profit],
        ["Fig.6 path/capture/wings/bending facts", anatomy_ok],
    ]
    out = table(["quantity", "value"], rows)
    return "E2 - Figure 2/6 tree-network examples", out, {
        "opt_unit": opt_unit,
        "opt_heights": opt_heights,
    }


def bench_e02_figure2(benchmark):
    problem = figure2_problem(unit_height=True)
    report = benchmark(solve_unit_trees, problem, epsilon=0.05, mis="greedy")
    assert report.profit == 1.0


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
