"""E4 -- Lemma 4.2/4.3: layered decompositions from the ideal tree
decomposition.

Claims reproduced: the transform yields critical sets of size
``Delta <= 2 (theta + 1) = 6`` and length ``<= 2 ceil(log n) + 1``, and
the layered (interference) property holds on every overlapping ordered
pair -- verified exhaustively on random instance sets.
"""
import math
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import build_ideal
from repro.core.demand import Demand
from repro.core.problem import Problem
from repro.trees.layered import layered_from_tree_decomposition
from repro.workloads.trees import random_tree

SIZES = (32, 128, 512)
SHAPES = ("uniform", "caterpillar", "binary")


def _problem_on(net, m, seed):
    rng = random.Random(seed)
    demands = [
        Demand(i, *rng.sample(net.vertices, 2), profit=rng.uniform(1, 5))
        for i in range(m)
    ]
    return Problem(networks={net.network_id: net}, demands=demands)


def run_experiment():
    rows = []
    for n in SIZES:
        for shape in SHAPES:
            net = random_tree(n, seed=21, shape=shape)
            problem = _problem_on(net, m=80, seed=n)
            td = build_ideal(net)
            layered = layered_from_tree_decomposition(td, problem.instances)
            layered.verify(problem.instances)  # exhaustive property check
            bound = 2 * math.ceil(math.log2(n)) + 1
            assert layered.critical_set_size <= 6, "Lemma 4.3 Delta bound violated"
            assert layered.length <= bound, "Lemma 4.3 length bound violated"
            rows.append(
                [n, shape, layered.critical_set_size, layered.length, bound, True]
            )
    out = table(
        ["n", "shape", "Delta (<=6)", "length", "2ceil(log n)+1", "property holds"],
        rows,
    )
    return "E4 - Layered decompositions (Lemma 4.3)", out, {}


def bench_e04_layered_transform(benchmark):
    net = random_tree(512, seed=21, shape="uniform")
    problem = _problem_on(net, m=80, seed=512)
    td = build_ideal(net)
    layered = benchmark(layered_from_tree_decomposition, td, problem.instances)
    assert layered.critical_set_size <= 6


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
