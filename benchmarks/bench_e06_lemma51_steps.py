"""E6 -- Lemma 5.1 / Claim 5.2: steps per stage are O(log(pmax/pmin)).

Claim reproduced: with the paper's ``xi`` (kill factor 2), no stage of
the first phase ever takes more than ``1 + ceil(log2(pmax/pmin)) + 1``
steps, across a wide profit-ratio sweep -- and the growth in observed
steps is logarithmic, not linear, in pmax/pmin.
"""
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro.algorithms.base import tree_layouts
from repro.core.dual import UnitRaise
from repro.core.framework import geometric_thresholds, run_two_phase, unit_xi
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest

RATIOS = (1.0, 4.0, 16.0, 64.0, 256.0)
EPSILON = 0.15


def _run(pmax_over_pmin, seed):
    problem = random_tree_problem(
        random_forest(32, 2, seed=seed),
        m=26,
        seed=seed + 7,
        profit_profile="two-point" if pmax_over_pmin > 1 else "uniform",
        pmax_over_pmin=pmax_over_pmin,
    )
    layout, _ = tree_layouts(problem, "ideal")
    thresholds = geometric_thresholds(unit_xi(6), EPSILON)
    result = run_two_phase(
        problem.instances, layout, UnitRaise(), thresholds, mis="greedy", seed=seed
    )
    return problem, result


def run_experiment():
    rows = []
    max_steps_by_ratio = {}
    for ratio in RATIOS:
        observed = 0
        for seed in range(3):
            problem, result = _run(ratio, seed)
            true_ratio = problem.pmax / problem.pmin
            bound = 1 + math.ceil(math.log2(max(1.0, true_ratio))) + 1
            steps = result.counters.max_steps_per_stage
            assert steps <= bound, (
                f"stage took {steps} steps, Lemma 5.1 bound is {bound}"
            )
            observed = max(observed, steps)
        max_steps_by_ratio[ratio] = observed
        rows.append([ratio, observed, 1 + math.ceil(math.log2(max(1.0, ratio))) + 1])
    # Logarithmic growth: a 256x profit spread must not cost anywhere
    # near 256x the steps of the flat case.
    assert max_steps_by_ratio[256.0] <= max_steps_by_ratio[1.0] + math.ceil(
        math.log2(256)
    ) + 1
    out = table(
        ["pmax/pmin", "max steps per stage (observed)", "Lemma 5.1 bound"], rows
    )
    return "E6 - Lemma 5.1 step bound per stage", out, max_steps_by_ratio


def bench_e06_first_phase(benchmark):
    def run():
        return _run(64.0, 0)[1]

    result = benchmark(run)
    assert result.counters.max_steps_per_stage <= 1 + math.ceil(math.log2(64)) + 1


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
