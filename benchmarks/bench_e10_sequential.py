"""E10 -- Appendix A: the sequential algorithm.

Claims reproduced: with the root-fixing decomposition and one raise per
iteration, the sequential algorithm is a 3-approximation on multiple
trees (Delta = 2, lambda = 1) and a 2-approximation on a single tree
(alpha dropped); but its iteration count grows linearly with the number
of demands, whereas the distributed algorithm's simulated rounds stay
polylogarithmic -- the gap that motivates Section 5.
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import solve_exact, solve_sequential, solve_tree_dp, solve_unit_trees
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest, random_tree


def run_experiment():
    rows = []
    seq_iters, dist_rounds = {}, {}
    for m in (8, 16, 32, 64):
        problem = random_tree_problem(
            random_forest(24, 2, seed=m), m=m, seed=m + 5, pmax_over_pmin=4.0
        )
        seq = solve_sequential(problem)
        seq.solution.verify()
        dist = solve_unit_trees(problem, epsilon=0.15, seed=m)
        yard = (
            solve_exact(problem).profit
            if m <= 16
            else seq.certified_upper_bound
        )
        assert yard <= 3.0 * seq.profit + 1e-6, "3-approximation violated"
        seq_iters[m] = seq.result.counters.steps
        dist_rounds[m] = dist.communication_rounds
        rows.append(
            [m, "multi-tree", seq.profit, seq.guarantee, seq.result.counters.steps,
             dist.communication_rounds]
        )
    # Sequential iterations scale with m; distributed rounds barely move.
    assert seq_iters[64] >= 3 * seq_iters[8]
    assert dist_rounds[64] <= 4 * dist_rounds[8]

    for seed in range(3):
        problem = random_tree_problem(
            {0: random_tree(25, seed=seed + 70)}, m=14, seed=seed + 71
        )
        seq = solve_sequential(problem)
        opt = solve_tree_dp(problem)
        assert opt <= 2.0 * seq.profit + 1e-6, "single-tree 2-approximation violated"
        assert seq.guarantee == 2.0
        rows.append(
            [14, f"single-tree s{seed}", seq.profit, seq.guarantee,
             seq.result.counters.steps, "-"]
        )
    out = table(
        ["m", "case", "profit", "guarantee", "sequential iterations",
         "distributed sim rounds"],
        rows,
    )
    return "E10 - Appendix A sequential algorithm", out, {
        "seq_iters": seq_iters,
        "dist_rounds": dist_rounds,
    }


def bench_e10_sequential(benchmark):
    problem = random_tree_problem(random_forest(24, 2, seed=32), m=32, seed=37)
    report = benchmark(solve_sequential, problem)
    assert report.guarantee == 3.0


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
