"""E18 -- the scheduling service under Zipf-skewed request traffic.

Claim reproduced: a serving loop in front of the two-phase framework
amortizes realistic traffic.  Production request streams are not
uniform -- a few hot workloads are re-submitted constantly (the skew
that motivates every VoD control-plane cache) -- so a
fingerprint-keyed result cache plus request coalescing turns most of
the stream into sub-millisecond lookups while cold solves run once.

The experiment builds a population of distinct requests from the
workload registry (multi-tenant forests, diurnal-cycle and bursty
lines -- the service-traffic families), replays a Zipf-skewed stream
of them through a :class:`repro.service.SchedulingService`, and
reports:

* throughput (requests/s) and the cache hit rate over the stream,
* p50/p99 request latency, mean cold-solve and mean warm-hit latency,
  and their ratio -- asserted >= 10x (the acceptance line of the
  service layer: a warm hit must be at least an order of magnitude
  cheaper than a cold solve).  The stream replays *prepared* request
  handles (fingerprints memoized on first use), so a second number is
  measured separately: the *fresh-handle* hit, which re-fingerprints
  the whole problem per submission and must still beat a cold solve
  by >= 3x,
* coalescing: a burst of identical in-flight requests collapses onto
  one solve,
* restart warmth: a second service instance sharing the disk tier
  serves the whole population without a single fresh solve,
* correctness: served results are semantically identical
  (:func:`repro.service.report_semantic_digest`) to direct
  :func:`repro.algorithms.solve_auto` calls, and
* telemetry: the replay runs with the :mod:`repro.obs` metrics layer
  on -- per-family p99 request latency is asserted from the served
  histograms (with a churn tail making ``outcome="delta"`` re-solves
  visible next to ``outcome="cold"``), the SLO attainment report must
  come back met, and the measured per-request instrument cost against
  the measured per-request serving cost bounds the telemetry overhead
  under ``MAX_TELEMETRY_OVERHEAD``.

``--quick`` runs a CI-sized stream; ``--json OUT`` emits the findings
as machine-readable JSON via the shared benchmark plumbing (plus the
rendered Prometheus snapshot next to it, as ``OUT`` with a ``.prom``
suffix).
"""
import math
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import (
    emit_json,
    histogram_percentiles,
    parse_bench_args,
    percentiles,
    table,
)

from repro.algorithms import solve_auto
from repro.obs import (
    MetricsRegistry,
    SLOTracker,
    render_prometheus,
    trace_request,
)
from repro.service import (
    SchedulingService,
    SolveKnobs,
    SolveRequest,
    report_semantic_digest,
)
from repro.workloads import build_trajectory, build_workload

#: (workload name, size, number of seeds) population slices.
FULL_POPULATION = (
    ("multi-tenant-forest", 240, 4),
    ("diurnal-cycle", 120, 4),
    ("bursty-lines", 80, 4),
)
QUICK_POPULATION = (
    ("multi-tenant-forest", 80, 2),
    ("diurnal-cycle", 48, 2),
    ("bursty-lines", 32, 2),
)
FULL_REQUESTS = 400
QUICK_REQUESTS = 80
#: Zipf exponent of the request stream (rank r drawn with weight
#: ``1/(r+1)^s``) -- mild skew, still leaves a long tail.
ZIPF_S = 1.2
STREAM_SEED = 18
#: How many identical requests the coalescing burst submits at once.
BURST = 8
#: Required mean cold-solve / mean warm-hit latency ratio.
MIN_SPEEDUP = 10.0
#: Solve knobs of every request: the serial production engine with the
#: deterministic oracle, so reruns are comparable.
KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)
#: Per-family p99 latency budgets (seconds) the replay must meet --
#: deliberately generous (cold solves land in the same histograms),
#: they guard "the SLO machinery reports sane numbers", not a perf
#: target a loaded CI runner could miss.
SLO_TARGETS = {"line": 60.0, "tree": 60.0}
#: Telemetry must cost under this fraction of replay wall-clock.
MAX_TELEMETRY_OVERHEAD = 0.05


def _population(plan):
    """The distinct requests, in a deterministic order."""
    return [
        SolveRequest.from_workload(name, size, seed=seed, **KNOBS)
        for name, size, n_seeds in plan
        for seed in range(n_seeds)
    ]


def _zipf_stream(n_population: int, n_requests: int, rng: random.Random):
    """Population indices drawn Zipf-skewed, hot ranks shuffled."""
    ranks = list(range(n_population))
    rng.shuffle(ranks)  # decouple hotness from population build order
    weights = [1.0 / (r + 1) ** ZIPF_S for r in range(n_population)]
    return [ranks[i] for i in rng.choices(range(n_population), weights, k=n_requests)]


def _replay_elapsed(population, stream, metrics) -> float:
    """Wall-clock of one full replay on a fresh memory-only service."""
    service = SchedulingService(
        capacity=len(population), workers=2, metrics=metrics
    )
    t0 = time.perf_counter()
    for idx in stream:
        service.solve(population[idx])
    return time.perf_counter() - t0


def _telemetry_overhead() -> float:
    """Fraction of per-request serving cost that telemetry adds.

    A direct A/B of replay wall-clock cannot resolve the true delta on
    shared hardware: the instruments cost ~10 microseconds per request
    while cold-solve jitter between replays runs tens of percent, so
    differencing two noisy ~60ms numbers answers with the noise.  The
    guard instead measures the two factors where each is stable:

    * the **numerator** -- per-request instrument cost -- from a tight
      loop over the exact hit-path telemetry sequence (three phase
      spans, ``finish``, SLO observe) against a private registry;
    * the **denominator** -- per-request serving cost -- from a
      telemetry-off quick replay (min-of-N, so a noisy slow replay
      cannot flatter the ratio).

    Their ratio bounds the replay slowdown telemetry can cause: a hit
    pays exactly the measured sequence, and the few extra span records
    of a cold request are amortized over a solve that is three orders
    of magnitude longer.
    """
    population = _population(QUICK_POPULATION)
    stream = _zipf_stream(
        len(population), QUICK_REQUESTS, random.Random(STREAM_SEED)
    )
    for request in population:
        request.fingerprint()
    _replay_elapsed(population, stream, None)  # warm pools/allocator
    replay = min(_replay_elapsed(population, stream, None) for _ in range(3))
    per_request = replay / len(stream)

    registry = MetricsRegistry()
    slo = SLOTracker(registry)

    def batch(n: int = 2000) -> float:
        t0 = time.perf_counter()
        for _ in range(n):
            trace = trace_request(registry)
            with trace.span("validate"):
                pass
            with trace.span("fingerprint"):
                pass
            with trace.span("cache_probe"):
                pass
            slo.observe("line", trace.finish("hit"))
        return (time.perf_counter() - t0) / n

    batch(200)  # warm the instrument caches
    per_request_telemetry = min(batch() for _ in range(5))
    return per_request_telemetry / per_request


def _delta_tail(registry, quick: bool) -> None:
    """A short churn trajectory so ``outcome="delta"`` re-solves land
    in the same solve-latency histograms as the cold population."""
    trajectory = build_trajectory(
        "tenant-churn", 16 if quick else 32, seed=1, steps=4 if quick else 6
    )
    knobs = SolveKnobs(**KNOBS)
    service = SchedulingService(
        workers=2, keep_artifacts=True, metrics=registry
    )
    service.solve(SolveRequest(problem=trajectory[0].problem, knobs=knobs))
    for step in trajectory[1:]:
        service.solve_delta(
            SolveRequest(problem=step.problem, knobs=knobs)
        )


def run_experiment(quick: bool = False):
    plan = QUICK_POPULATION if quick else FULL_POPULATION
    n_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    rng = random.Random(STREAM_SEED)
    population = _population(plan)
    stream = _zipf_stream(len(population), n_requests, rng)
    registry = MetricsRegistry()

    with tempfile.TemporaryDirectory(prefix="repro-e18-cache-") as disk_dir:
        service = SchedulingService(
            capacity=len(population), disk_dir=disk_dir, workers=2,
            metrics=registry, slo_targets=SLO_TARGETS,
        )
        per_source = {name: {"cold": [], "hit": [], "requests": 0}
                      for name, _, _ in plan}
        latencies = []
        t_start = time.perf_counter()
        for idx in stream:
            request = population[idx]
            result = service.solve(request)
            source = request.label.split("@")[0]
            per_source[source]["requests"] += 1
            per_source[source]["cold" if result.status == "miss" else "hit"].append(
                result.latency_s
            )
            latencies.append(result.latency_s)
        elapsed = time.perf_counter() - t_start

        stats = service.stats
        hits = stats["cache"]["hits"] + stats["cache"]["disk_hits"]
        hit_rate = hits / n_requests
        cold = sorted(x for s in per_source.values() for x in s["cold"])
        warm = sorted(x for s in per_source.values() for x in s["hit"])
        assert stats["solves"] == len(cold) <= len(population), (
            "every distinct fingerprint must solve at most once"
        )
        assert warm, "a Zipf-skewed stream must produce warm hits"
        mean_cold = sum(cold) / len(cold)
        mean_warm = sum(warm) / len(warm)
        speedup = mean_cold / mean_warm
        assert speedup >= MIN_SPEEDUP, (
            f"warm hits must be >= {MIN_SPEEDUP}x faster than cold solves, "
            f"got {speedup:.1f}x ({mean_cold * 1e3:.2f}ms vs {mean_warm * 1e3:.3f}ms)"
        )

        # Fresh-handle hits: the stream above replays prepared request
        # objects (fingerprints memoized on first use -- the client
        # library pattern), so its hit latencies measure lookup alone.
        # A fresh submission of the same problem pays full
        # canonical-form fingerprinting per request; measure that
        # honestly as its own number.
        fresh_latencies = []
        for name, size, n_seeds in plan:
            for seed in range(n_seeds):
                fresh = SolveRequest.from_workload(name, size, seed=seed, **KNOBS)
                result = service.solve(fresh)
                assert result.status == "hit", (
                    f"{fresh.label}: fresh resubmission must hit the cache"
                )
                fresh_latencies.append(result.latency_s)
        mean_fresh = sum(fresh_latencies) / len(fresh_latencies)
        assert mean_fresh * 3 <= mean_cold, (
            f"even a fresh-handle hit (full fingerprinting, "
            f"{mean_fresh * 1e3:.2f}ms) must beat a cold solve "
            f"({mean_cold * 1e3:.2f}ms) by >= 3x"
        )

        # Correctness spot-check: the served report is semantically the
        # direct library call, for the hottest entry of each source.
        for name, size, _ in plan:
            request = next(
                p for p in population if p.label.startswith(f"{name}@")
            )
            served = service.solve(request).report
            direct = solve_auto(
                build_workload(name, size, seed=0),
                **{**KNOBS, "seed": 0},
            )
            assert report_semantic_digest(served) == report_semantic_digest(direct), (
                f"{request.label}: served result diverged from a direct solve"
            )

        # Coalescing: a burst of one *uncached* fingerprint collapses
        # onto a single solve.
        burst_req = SolveRequest.from_workload(
            plan[0][0], plan[0][1] + 1, seed=0, **KNOBS
        )
        before = service.stats
        futures = [service.submit(burst_req) for _ in range(BURST)]
        burst_results = [f.result() for f in futures]
        after = service.stats
        burst_solves = after["solves"] - before["solves"]
        burst_coalesced = after["coalesced"] - before["coalesced"]
        assert burst_solves == 1, (
            f"a coalesced burst must run exactly one solve, ran {burst_solves}"
        )
        assert all(
            report_semantic_digest(r.report)
            == report_semantic_digest(burst_results[0].report)
            for r in burst_results
        ), "coalesced callers must share one result"

        # Restart warmth: a fresh service on the same disk tier serves
        # the population without solving anything.
        service2 = SchedulingService(
            capacity=len(population), disk_dir=disk_dir, workers=2
        )
        disk_latencies = []
        for request in population:
            result = service2.solve(request)
            assert result.status == "hit", (
                f"{request.label}: expected a disk-tier hit after restart"
            )
            disk_latencies.append(result.latency_s)
        assert service2.stats["solves"] == 0, "restart must not re-solve"
        mean_disk = sum(disk_latencies) / len(disk_latencies)

    # -- telemetry: per-family tails, delta visibility, SLO, overhead --
    _delta_tail(registry, quick)
    snap = service.metrics_snapshot()
    metrics = snap["metrics"]
    request_p99 = {
        family: histogram_percentiles(
            metrics, "repro_service_request_seconds", family=family
        )["p99"]
        for family in ("line", "tree")
    }
    for family, p99 in request_p99.items():
        assert not math.isnan(p99), (
            f"family {family!r} served no requests -- the stream must "
            f"exercise both families"
        )
        assert p99 <= SLO_TARGETS[family], (
            f"{family} p99 {p99 * 1e3:.1f}ms blew the "
            f"{SLO_TARGETS[family]:.0f}s budget"
        )
    solve_p99 = {
        outcome: histogram_percentiles(
            metrics, "repro_service_solve_seconds", outcome=outcome
        )["p99"]
        for outcome in ("cold", "delta")
    }
    assert not math.isnan(solve_p99["delta"]), (
        "churn re-solves must be visible under outcome=\"delta\""
    )
    assert not math.isnan(solve_p99["cold"])
    slo = snap["slo"]
    assert slo is not None
    for family, attainment in slo.items():
        assert attainment["met"], (
            f"SLO missed for {family}: {attainment}"
        )
        assert attainment["observed"] > 0
    overhead = _telemetry_overhead()
    assert overhead < MAX_TELEMETRY_OVERHEAD, (
        f"telemetry cost {overhead * 100:.1f}% of replay wall-clock "
        f"(budget {MAX_TELEMETRY_OVERHEAD * 100:.0f}%)"
    )

    latencies.sort()
    rows = []
    for name, size, n_seeds in plan:
        s = per_source[name]
        source_cold = (sum(s["cold"]) / len(s["cold"])) if s["cold"] else 0.0
        source_warm = (sum(s["hit"]) / len(s["hit"])) if s["hit"] else 0.0
        rows.append(
            [
                name,
                size,
                n_seeds,
                s["requests"],
                len(s["hit"]),
                f"{source_cold * 1e3:.1f}",
                f"{source_warm * 1e3:.3f}",
                f"{source_cold / source_warm:.0f}x" if source_warm else "-",
            ]
        )
    stream_pcts = percentiles(latencies)
    findings = {
        "quick": quick,
        "population": len(population),
        "requests": n_requests,
        "zipf_s": ZIPF_S,
        "throughput_rps": n_requests / elapsed,
        "hit_rate": hit_rate,
        "p50_ms": stream_pcts["p50"] * 1e3,
        "p99_ms": stream_pcts["p99"] * 1e3,
        "mean_cold_ms": mean_cold * 1e3,
        "mean_warm_hit_ms": mean_warm * 1e3,
        "mean_fresh_hit_ms": mean_fresh * 1e3,
        "mean_disk_hit_ms": mean_disk * 1e3,
        "warm_speedup": speedup,
        "burst_coalesced": burst_coalesced,
        "service_stats": stats,
        "telemetry": {
            "overhead_frac": overhead,
            "request_p99_ms": {
                family: p99 * 1e3 for family, p99 in request_p99.items()
            },
            "solve_p99_ms": {
                outcome: p99 * 1e3 for outcome, p99 in solve_p99.items()
            },
            "slo": slo,
        },
        "prometheus_text": render_prometheus(metrics),
    }
    out = table(
        [
            "source", "size", "seeds", "requests", "hits",
            "cold ms", "hit ms", "speedup",
        ],
        rows,
    )
    return "E18 - Scheduling service under Zipf-skewed traffic", out, findings


def bench_e18_service_replay_quick(benchmark):
    population = _population(QUICK_POPULATION)
    stream = _zipf_stream(
        len(population), QUICK_REQUESTS, random.Random(STREAM_SEED)
    )

    def replay():
        service = SchedulingService(capacity=len(population), workers=2)
        for idx in stream:
            service.solve(population[idx])
        return service

    service = benchmark(replay)
    assert service.stats["cache"]["hits"] > 0


if __name__ == "__main__":
    quick, json_path = parse_bench_args(sys.argv[1:], Path(sys.argv[0]).name)
    title, out, findings = run_experiment(quick=quick)
    print(title, "\n", out, sep="")
    print(
        f"stream: {findings['requests']} requests over "
        f"{findings['population']} distinct (zipf s={findings['zipf_s']}), "
        f"hit rate {findings['hit_rate']:.2f}, "
        f"{findings['throughput_rps']:.0f} req/s, "
        f"p50 {findings['p50_ms']:.2f}ms p99 {findings['p99_ms']:.1f}ms, "
        f"warm speedup {findings['warm_speedup']:.0f}x, "
        f"fresh-handle hit {findings['mean_fresh_hit_ms']:.2f}ms, "
        f"disk hit {findings['mean_disk_hit_ms']:.2f}ms, "
        f"burst coalesced {findings['burst_coalesced']}/{BURST - 1}"
    )
    telemetry = findings["telemetry"]
    print(
        f"telemetry: overhead {telemetry['overhead_frac'] * 100:+.1f}%, "
        f"request p99 line {telemetry['request_p99_ms']['line']:.1f}ms / "
        f"tree {telemetry['request_p99_ms']['tree']:.1f}ms, "
        f"solve p99 cold {telemetry['solve_p99_ms']['cold']:.1f}ms / "
        f"delta {telemetry['solve_p99_ms']['delta']:.1f}ms"
    )
    # The rendered snapshot lands next to the JSON record, scrape-ready.
    prometheus_text = findings.pop("prometheus_text")
    if json_path is not None:
        prom_path = Path(json_path).with_suffix(".prom")
        prom_path.write_text(prometheus_text)
        print(f"wrote {prom_path}")
    emit_json(json_path, "e18", title, findings)
