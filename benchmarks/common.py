"""Shared helpers for the experiment benchmarks.

Each ``bench_eNN_*.py`` module reproduces one paper claim (see the
experiment index in DESIGN.md).  The convention:

* ``run_experiment()`` computes the reproduction table and returns
  ``(title, table_string, findings_dict)``; assertions inside it encode
  the *shape* claims (bounds hold, who wins, how things scale).
* ``bench_*`` functions time the core computation under
  pytest-benchmark and re-assert the claims.

``python benchmarks/generate_report.py`` collects every experiment's
table into EXPERIMENTS.md.
"""
from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table

ExperimentResult = Tuple[str, str, Dict[str, object]]


def experiment_header(exp_id: str, claim: str) -> str:
    """One-line banner naming the experiment and the claim it checks."""
    return f"[{exp_id}] {claim}"


def table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Alias for the analysis table formatter."""
    return format_table(headers, rows)


def parse_bench_args(argv: Sequence[str], prog: str) -> Tuple[bool, Optional[str]]:
    """Parse the shared benchmark CLI: ``[--quick] [--json OUT]``.

    Returns ``(quick, json_path)``; exits with a usage message on
    anything else.  Kept deliberately tiny (no argparse) so every
    ``bench_eNN`` script stays runnable as a plain file.
    """
    quick = False
    json_path: Optional[str] = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--quick":
            quick = True
        elif arg == "--json":
            if not args:
                sys.exit(f"usage: {prog} [--quick] [--json OUT]")
            json_path = args.pop(0)
        else:
            sys.exit(f"usage: {prog} [--quick] [--json OUT]")
    return quick, json_path


def emit_json(
    json_path: Optional[str],
    exp_id: str,
    title: str,
    findings: Dict[str, object],
) -> None:
    """Write a machine-readable ``BENCH_*.json`` record of one run.

    No-op when *json_path* is ``None``, so callers can pass the parsed
    ``--json`` value through unconditionally.  The record deliberately
    carries the findings dict verbatim -- every ``run_experiment``
    already returns its headline numbers there -- so perf trajectories
    can be scraped without parsing tables.
    """
    if json_path is None:
        return
    record = {"experiment": exp_id, "title": title, "findings": findings}
    Path(json_path).write_text(json.dumps(record, indent=2, default=str) + "\n")
    print(f"wrote {json_path}")
