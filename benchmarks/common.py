"""Shared helpers for the experiment benchmarks.

Each ``bench_eNN_*.py`` module reproduces one paper claim (see the
experiment index in DESIGN.md).  The convention:

* ``run_experiment()`` computes the reproduction table and returns
  ``(title, table_string, findings_dict)``; assertions inside it encode
  the *shape* claims (bounds hold, who wins, how things scale).
* ``bench_*`` functions time the core computation under
  pytest-benchmark and re-assert the claims.

``python benchmarks/generate_report.py`` collects every experiment's
table into EXPERIMENTS.md.
"""
from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table

ExperimentResult = Tuple[str, str, Dict[str, object]]


def experiment_header(exp_id: str, claim: str) -> str:
    """One-line banner naming the experiment and the claim it checks."""
    return f"[{exp_id}] {claim}"


def table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Alias for the analysis table formatter."""
    return format_table(headers, rows)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank *q*-percentile of *values* (sorts internally).

    The one shared definition -- E18/E19/E22 used to carry private
    copies; keeping a single nearest-rank rule means their reported
    p50/p99 columns are comparable across experiments.  ``nan`` on
    empty input.
    """
    if not values:
        return float("nan")
    ordered = sorted(values)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[idx]


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (0.50, 0.99)
) -> Dict[str, float]:
    """``{"p50": ..., "p99": ...}`` of *values* via :func:`percentile`.

    Keys are ``p<100q>`` with any decimal point as ``_`` (``p99_9``),
    matching the findings-dict naming the report generator scrapes.
    """
    ordered = sorted(values)
    return {
        f"p{100 * q:g}".replace(".", "_"): percentile(ordered, q) for q in qs
    }


def histogram_percentiles(
    snapshot: Dict[str, object],
    name: str,
    qs: Sequence[float] = (0.50, 0.99),
    **labels: str,
) -> Dict[str, float]:
    """Percentiles estimated from a telemetry snapshot's histograms.

    *snapshot* is a jsonable registry snapshot (from
    ``MetricsRegistry.snapshot()`` or a ``{"op": "metrics"}`` answer);
    series of *name* whose labels contain *labels* merge bucket-wise
    first, so the answer covers e.g. one problem family across every
    status.  Values are ``nan`` when nothing matches.
    """
    from repro.obs import snapshot_quantile

    return {
        f"p{100 * q:g}".replace(".", "_"): snapshot_quantile(
            snapshot, name, q, **labels
        )
        for q in qs
    }


def parse_bench_args(argv: Sequence[str], prog: str) -> Tuple[bool, Optional[str]]:
    """Parse the shared benchmark CLI: ``[--quick] [--json OUT]``.

    Returns ``(quick, json_path)``; exits with a usage message on
    anything else.  Kept deliberately tiny (no argparse) so every
    ``bench_eNN`` script stays runnable as a plain file.
    """
    quick = False
    json_path: Optional[str] = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--quick":
            quick = True
        elif arg == "--json":
            if not args:
                sys.exit(f"usage: {prog} [--quick] [--json OUT]")
            json_path = args.pop(0)
        else:
            sys.exit(f"usage: {prog} [--quick] [--json OUT]")
    return quick, json_path


def emit_json(
    json_path: Optional[str],
    exp_id: str,
    title: str,
    findings: Dict[str, object],
) -> None:
    """Write a machine-readable ``BENCH_*.json`` record of one run.

    No-op when *json_path* is ``None``, so callers can pass the parsed
    ``--json`` value through unconditionally.  The record deliberately
    carries the findings dict verbatim -- every ``run_experiment``
    already returns its headline numbers there -- so perf trajectories
    can be scraped without parsing tables.
    """
    if json_path is None:
        return
    record = {"experiment": exp_id, "title": title, "findings": findings}
    Path(json_path).write_text(json.dumps(record, indent=2, default=str) + "\n")
    print(f"wrote {json_path}")
