"""Shared helpers for the experiment benchmarks.

Each ``bench_eNN_*.py`` module reproduces one paper claim (see the
experiment index in DESIGN.md).  The convention:

* ``run_experiment()`` computes the reproduction table and returns
  ``(title, table_string, findings_dict)``; assertions inside it encode
  the *shape* claims (bounds hold, who wins, how things scale).
* ``bench_*`` functions time the core computation under
  pytest-benchmark and re-assert the claims.

``python benchmarks/generate_report.py`` collects every experiment's
table into EXPERIMENTS.md.
"""
from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import format_table

ExperimentResult = Tuple[str, str, Dict[str, object]]


def experiment_header(exp_id: str, claim: str) -> str:
    """One-line banner naming the experiment and the claim it checks."""
    return f"[{exp_id}] {claim}"


def table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Alias for the analysis table formatter."""
    return format_table(headers, rows)
