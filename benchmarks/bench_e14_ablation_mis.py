"""E14 -- Ablation: the Time(MIS) primitive.

The paper leaves the MIS subroutine pluggable: Luby [14] (randomized,
O(log N) rounds) or deterministic network decompositions [17]
(O(2^sqrt(log N)) rounds).  This ablation runs the same workload under
the three implemented oracles -- seeded Luby, hash-Luby (the
distributed-equivalent variant), and the deterministic greedy sweep --
showing that solution quality and certificates are insensitive to the
oracle while the round cost is exactly Time(MIS) x steps.
"""
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import solve_exact, solve_unit_trees
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest

ORACLES = ("luby", "hash", "greedy")
EPSILON = 0.15


def run_experiment():
    rows = []
    certs = {kind: [] for kind in ORACLES}
    for seed in range(3):
        problem = random_tree_problem(
            random_forest(24, 2, seed=seed + 41), m=14, seed=seed + 42
        )
        opt = solve_exact(problem).profit
        for kind in ORACLES:
            report = solve_unit_trees(problem, epsilon=EPSILON, seed=seed, mis=kind)
            report.solution.verify()
            assert opt <= report.guarantee * report.profit + 1e-6
            certs[kind].append(report.certified_ratio)
            counters = report.result.counters
            rows.append(
                [
                    seed,
                    kind,
                    report.profit,
                    opt,
                    report.certified_ratio,
                    counters.steps,
                    counters.mis_rounds,
                ]
            )
    means = {kind: statistics.mean(vals) for kind, vals in certs.items()}
    # Quality is oracle-insensitive: certified ratios within 50% of each
    # other across oracles.
    assert max(means.values()) <= 1.5 * min(means.values())
    out = table(
        ["seed", "MIS oracle", "profit", "exact OPT", "certified ratio",
         "steps", "MIS rounds"],
        rows,
    )
    return "E14 - Ablation: MIS oracle (Time(MIS))", out, means


def bench_e14_luby_oracle(benchmark):
    problem = random_tree_problem(random_forest(24, 2, seed=41), m=14, seed=42)
    report = benchmark(solve_unit_trees, problem, epsilon=EPSILON, seed=0, mis="luby")
    assert report.result.counters.mis_rounds > 0


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
