"""E9 -- Theorem 7.2 vs Panconesi-Sozio: arbitrary heights on lines.

Claims reproduced: the combined wide/narrow line algorithm carries a
``23/(1-eps)`` factor versus PS's ``55+eps``, stays within it against
the exact optimum on random window workloads with mixed heights, and
its certificates are tighter than the PS baseline's.
"""
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro import solve_arbitrary_lines, solve_exact, solve_ps_arbitrary_lines
from repro.workloads import random_line_problem

EPSILON = 0.1
SEEDS = range(5)


def run_experiment():
    rows = []
    ours_cert, ps_cert = [], []
    ours_profit, ps_profit = [], []
    for seed in SEEDS:
        problem = random_line_problem(
            30, 12, r=2, seed=seed + 31, window_slack=3,
            height_profile="bimodal", hmin=0.15,
        )
        opt = solve_exact(problem).profit
        ours = solve_arbitrary_lines(problem, epsilon=EPSILON, seed=seed)
        ps = solve_ps_arbitrary_lines(problem, epsilon=EPSILON, seed=seed)
        ours.solution.verify()
        ps.solution.verify()
        assert opt <= ours.guarantee * ours.profit + 1e-6
        assert ours.guarantee <= 23.0 / (1 - EPSILON) + 1e-6
        ours_cert.append(ours.certified_ratio)
        ps_cert.append(ps.certified_ratio)
        ours_profit.append(ours.profit)
        ps_profit.append(ps.profit)
        rows.append(
            [seed, opt, ours.profit, ps.profit, ours.certified_ratio, ps.certified_ratio]
        )
    assert statistics.mean(ours_cert) < statistics.mean(ps_cert)
    rows.append(
        [
            "mean",
            "-",
            statistics.mean(ours_profit),
            statistics.mean(ps_profit),
            statistics.mean(ours_cert),
            statistics.mean(ps_cert),
        ]
    )
    out = table(
        [
            "seed",
            "exact OPT",
            "ours (23+eps)",
            "PS (55+eps)",
            "our certified ratio",
            "PS certified ratio",
        ],
        rows,
    )
    return "E9 - Theorem 7.2 vs Panconesi-Sozio (height lines)", out, {
        "mean_cert_ours": statistics.mean(ours_cert),
        "mean_cert_ps": statistics.mean(ps_cert),
    }


def bench_e09_solve_arbitrary_lines(benchmark):
    problem = random_line_problem(
        30, 12, r=2, seed=31, window_slack=3, height_profile="bimodal", hmin=0.15
    )
    report = benchmark(solve_arbitrary_lines, problem, epsilon=EPSILON, seed=0)
    assert report.guarantee <= 23.0 / (1 - EPSILON) + 1e-6


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
