"""E15 -- Theorem 5.3's round complexity on the message-passing substrate.

Claim reproduced: the simulated synchronous rounds of the *actual
protocol* (schedule length: epochs x stages x steps x Luby budget) grow
polylogarithmically with the vertex count n -- doubling n adds a
constant number of epochs, not a constant factor -- in contrast to the
sequential algorithm whose iteration count grows with the number of
demands (E10).
"""
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import table

from repro.distributed.runner import run_distributed
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest

SIZES = (8, 16, 32, 64)
EPSILON = 0.35
M = 8


def run_experiment():
    rows = []
    rounds_by_n = {}
    for n in SIZES:
        problem = random_tree_problem(
            random_forest(n, 2, seed=n), m=M, seed=n + 3, pmax_over_pmin=4.0
        )
        report = run_distributed(problem, kind="unit-trees", epsilon=EPSILON, seed=n)
        report.solution.verify()
        rounds_by_n[n] = report.metrics.rounds
        rows.append(
            [
                n,
                report.schedule.n_epochs,
                report.schedule.luby_iterations,
                report.metrics.rounds,
                report.metrics.messages,
            ]
        )
    # Polylog scaling: 8x the vertices costs at most ~(log ratio)^2-ish,
    # far below 8x the rounds.
    growth = rounds_by_n[SIZES[-1]] / rounds_by_n[SIZES[0]]
    assert growth <= (SIZES[-1] / SIZES[0]) / 2, (
        f"rounds grew {growth:.1f}x over an 8x vertex increase -- not polylog"
    )
    # Epochs track 2 ceil(log n) + 1 (ideal decomposition depth).
    for row in rows:
        n, epochs = row[0], row[1]
        assert epochs <= 2 * math.ceil(math.log2(n)) + 1
    out = table(
        ["n", "epochs (<=2ceil(log n)+1)", "Luby budget", "sim rounds", "messages"],
        rows,
    )
    return "E15 - Round scaling of the message-passing run", out, {
        "rounds_growth_8x_n": growth,
    }


def bench_e15_run_distributed_n32(benchmark):
    problem = random_tree_problem(
        random_forest(32, 2, seed=32), m=M, seed=35, pmax_over_pmin=4.0
    )
    report = benchmark(run_distributed, problem, kind="unit-trees",
                       epsilon=EPSILON, seed=32)
    report.solution.verify()


if __name__ == "__main__":
    title, out, _ = run_experiment()
    print(title, "\n", out, sep="")
