"""Tests for workload generators, the registry, and the worked examples."""
import pytest

from repro.core.demand import Demand, WindowDemand
from repro.core.problem import Problem
from repro.trees.tree import TreeNetwork
from repro.workloads.demands import random_tree_problem
from repro.workloads.lines import random_line_problem
from repro.workloads.random_suite import (
    REGISTRY,
    TENANT_MIXES,
    WorkloadSpec,
    build_workload,
    bursty_line_problem,
    diurnal_line_problem,
    get_workload,
    multi_tenant_forest_problem,
    register_workload,
    workload_names,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    figure1_problem,
    figure2_network,
    figure2_problem,
    figure6_demand,
    figure6_network,
    figure6_problem,
    scenario,
)
from repro.workloads.trees import SHAPES, random_forest, random_tree, random_tree_edges


class TestTreeGenerators:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 41])
    def test_valid_trees(self, shape, n):
        net = TreeNetwork(0, random_tree_edges(n, seed=1, shape=shape), vertices=range(n))
        assert net.n_vertices == n

    def test_deterministic_under_seed(self):
        assert random_tree_edges(20, seed=5) == random_tree_edges(20, seed=5)
        assert random_tree_edges(20, seed=5) != random_tree_edges(20, seed=6)

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            random_tree_edges(10, shape="moebius")

    def test_path_shape(self):
        net = random_tree(10, shape="path")
        assert net.is_path_graph()

    def test_star_shape(self):
        net = random_tree(10, shape="star")
        assert net.degree(0) == 9

    def test_forest_distinct_networks(self):
        forest = random_forest(15, 3, seed=2)
        edge_sets = [frozenset(net.edges()) for net in forest.values()]
        # Different seeds per network: overwhelmingly likely distinct.
        assert len({frozenset((u, v) for (_, u, v) in es) for es in edge_sets}) > 1


class TestDemandGenerators:
    def test_profit_range(self):
        p = random_tree_problem(
            random_forest(20, 1, seed=1), m=40, seed=2, pmax_over_pmin=7.0
        )
        assert p.pmin >= 1.0 - 1e-9
        assert p.pmax <= 7.0 + 1e-9

    @pytest.mark.parametrize("profile", ["uniform", "powerlaw", "two-point"])
    def test_profit_profiles(self, profile):
        p = random_tree_problem(
            random_forest(15, 1, seed=3), m=20, seed=4,
            profit_profile=profile, pmax_over_pmin=5.0,
        )
        assert all(1.0 - 1e-9 <= a.profit <= 5.0 + 1e-9 for a in p.demands)

    def test_unknown_profit_profile(self):
        with pytest.raises(ValueError):
            random_tree_problem(
                random_forest(10, 1, seed=1), m=4, seed=1, profit_profile="vibes"
            )

    @pytest.mark.parametrize("profile,check", [
        ("unit", lambda h: h == 1.0),
        ("narrow", lambda h: h <= 0.5),
        ("uniform", lambda h: 0.1 <= h <= 1.0),
        ("bimodal", lambda h: h <= 0.4 or h >= 0.6),
    ])
    def test_height_profiles(self, profile, check):
        p = random_tree_problem(
            random_forest(15, 1, seed=5), m=30, seed=6,
            height_profile=profile, hmin=0.1,
        )
        assert all(check(a.height) for a in p.demands)

    def test_locality_bounds_path_length(self):
        p = random_tree_problem(
            random_forest(40, 1, seed=7), m=25, seed=8, locality=3
        )
        for d in p.instances:
            assert d.length <= 3

    def test_access_size(self):
        p = random_tree_problem(
            random_forest(15, 4, seed=9), m=20, seed=10, access_size=2
        )
        assert all(len(nets) == 2 for nets in p.access.values())

    def test_determinism(self):
        a = random_tree_problem(random_forest(15, 2, seed=11), m=10, seed=12)
        b = random_tree_problem(random_forest(15, 2, seed=11), m=10, seed=12)
        assert [(d.u, d.v, d.profit) for d in a.demands] == [
            (d.u, d.v, d.profit) for d in b.demands
        ]


class TestLineGenerators:
    def test_windows_valid(self):
        p = random_line_problem(40, 25, r=2, seed=1, window_slack=5)
        for a in p.demands:
            assert 0 <= a.release <= a.deadline <= 39
            assert a.deadline - a.release + 1 >= a.processing

    def test_rigid_jobs(self):
        p = random_line_problem(30, 10, seed=2, window_slack=0)
        for a in p.demands:
            assert len(list(a.start_slots)) == 1

    def test_processing_bounds(self):
        p = random_line_problem(
            40, 20, seed=3, min_processing=2, max_processing=5
        )
        assert all(2 <= a.processing <= 5 for a in p.demands)

    def test_access_size(self):
        p = random_line_problem(20, 12, r=3, seed=4, access_size=1)
        assert all(len(nets) == 1 for nets in p.access.values())


class TestWorkloadRegistry:
    def test_scale_workloads_registered(self):
        assert {"powerlaw-trees", "deep-trees", "bursty-lines",
                "wide-vod-lines", "sparse-access-forest",
                "multi-tenant-forest"} <= set(REGISTRY)

    def test_scenarios_registered_as_fixed(self):
        for name in SCENARIOS:
            spec = get_workload(name)
            assert not spec.scale
            # Fixed builders ignore (size, seed).
            a = build_workload(name, 5, seed=1)
            b = build_workload(name, 99, seed=2)
            assert len(a.instances) == len(b.instances)

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_all_workloads_build_valid_problems(self, name):
        problem = build_workload(name, 15, seed=3)
        assert problem.instances  # expansion produced something

    @pytest.mark.parametrize("name", ["powerlaw-trees", "bursty-lines"])
    def test_deterministic_under_seed(self, name):
        a = build_workload(name, 20, seed=4)
        b = build_workload(name, 20, seed=4)
        c = build_workload(name, 20, seed=5)
        key = lambda p: [(d.demand_id, d.profit, d.height) for d in p.demands]
        assert key(a) == key(b)
        assert key(a) != key(c)

    def test_scale_grows_with_size(self):
        for name in workload_names(scale=True):
            small = build_workload(name, 10, seed=0)
            large = build_workload(name, 40, seed=0)
            assert len(large.instances) > len(small.instances)

    def test_kind_tags_match_networks(self):
        for name in workload_names(kind="line"):
            problem = build_workload(name, 12, seed=1)
            assert all(
                net.is_path_graph() for net in problem.networks.values()
            )

    def test_height_tags(self):
        assert all(
            a.height == 1.0
            for a in build_workload("powerlaw-trees", 20, seed=2).demands
        )
        assert all(
            a.is_narrow
            for a in build_workload("bursty-lines", 20, seed=2).demands
        )
        assert all(
            a.is_wide
            for a in build_workload("wide-vod-lines", 20, seed=2).demands
        )

    def test_sparse_access_is_single_network(self):
        problem = build_workload("sparse-access-forest", 15, seed=6)
        assert len(problem.networks) == 3
        assert all(len(nets) == 1 for nets in problem.access.values())

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("galaxy-brain")
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario("figure99")

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match="size must be positive"):
            build_workload("powerlaw-trees", 0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload(
                WorkloadSpec(
                    name="powerlaw-trees", kind="tree", heights="unit",
                    description="dup", build=lambda size, seed: None,
                )
            )

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be"):
            register_workload(
                WorkloadSpec(
                    name="hypercube-special", kind="hypercube", heights="unit",
                    description="nope", build=lambda size, seed: None,
                )
            )

    def test_bad_heights_tag_rejected(self):
        # Consumers pick raise rules off the heights tag, so typos must
        # fail loudly at registration.
        with pytest.raises(ValueError, match="heights must be"):
            register_workload(
                WorkloadSpec(
                    name="typo-heights", kind="tree", heights="naroww",
                    description="nope", build=lambda size, seed: None,
                )
            )


class TestMultiTenantForest:
    def test_tenant_isolation(self):
        # Every demand is a single-tenant citizen: one accessible
        # network, endpoints inside it, exactly one instance.
        problem = multi_tenant_forest_problem(n_tenants=8, m=24, seed=1)
        assert len(problem.networks) == 8
        assert all(len(nets) == 1 for nets in problem.access.values())
        per_demand = {}
        for d in problem.instances:
            per_demand[d.demand_id] = per_demand.get(d.demand_id, 0) + 1
            assert d.network_id == problem.access[d.demand_id][0]
        assert all(count == 1 for count in per_demand.values())

    def test_demands_spread_over_all_tenants(self):
        problem = multi_tenant_forest_problem(n_tenants=6, m=18, seed=2)
        used = {problem.access[a.demand_id][0] for a in problem.demands}
        assert used == set(problem.networks)

    def test_unit_heights_and_mix_rotation(self):
        problem = multi_tenant_forest_problem(n_tenants=9, m=27, seed=3)
        assert problem.is_unit_height
        # Two-point tenants only ever see the mix's two profit values.
        two_point_tenants = {
            t for t in problem.networks
            if TENANT_MIXES[t % len(TENANT_MIXES)][0] == "two-point"
        }
        for a in problem.demands:
            if problem.access[a.demand_id][0] in two_point_tenants:
                assert a.profit in (1.0, 20.0)

    def test_locality_bounds_paths(self):
        problem = multi_tenant_forest_problem(
            n_tenants=5, m=15, seed=4, locality=2
        )
        assert all(d.length <= 2 for d in problem.instances)

    def test_deterministic_and_registered(self):
        a = build_workload("multi-tenant-forest", 30, seed=5)
        b = build_workload("multi-tenant-forest", 30, seed=5)
        key = lambda p: [(d.u, d.v, d.profit) for d in p.demands]
        assert key(a) == key(b)
        spec = get_workload("multi-tenant-forest")
        assert spec.kind == "tree" and spec.heights == "unit" and spec.scale

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            multi_tenant_forest_problem(n_tenants=0, m=5)
        with pytest.raises(ValueError, match="one demand per tenant"):
            multi_tenant_forest_problem(n_tenants=6, m=5)
        with pytest.raises(ValueError, match="tenant sizes"):
            multi_tenant_forest_problem(
                n_tenants=2, m=4, tenant_size_range=(9, 5)
            )


class TestBurstyLineGenerator:
    def test_windows_valid(self):
        problem = bursty_line_problem(30, 25, r=2, seed=1)
        for a in problem.demands:
            assert isinstance(a, WindowDemand)
            assert 0 <= a.release <= a.deadline <= 29
            assert a.deadline - a.release + 1 >= a.processing

    def test_releases_cluster_around_bursts(self):
        problem = bursty_line_problem(
            100, 60, seed=2, n_bursts=2, burst_spread=2
        )
        releases = sorted(a.release for a in problem.demands)
        # With 2 bursts and spread 2, releases occupy <= 2 windows of
        # width 5 -- far fewer distinct values than a uniform draw.
        assert len(set(releases)) <= 10

    def test_too_short_timeline_rejected(self):
        with pytest.raises(ValueError, match="at least 4 slots"):
            bursty_line_problem(3, 5)


class TestDiurnalCycleGenerator:
    def test_windows_valid(self):
        problem = diurnal_line_problem(40, 30, r=2, seed=1)
        for a in problem.demands:
            assert isinstance(a, WindowDemand)
            assert 0 <= a.release <= a.deadline <= 39
            assert a.deadline - a.release + 1 >= a.processing

    def test_releases_follow_the_sine_wave(self):
        # With 2 cycles over 200 slots and amplitude 0.9, the positive
        # half-waves are [0, 50) u [100, 150); ~74% of the intensity
        # mass lies there, so a large sample concentrates accordingly.
        problem = diurnal_line_problem(
            200, 400, seed=2, n_cycles=2, amplitude=0.9
        )
        peak = sum(1 for a in problem.demands if a.release % 100 < 50)
        assert peak / len(problem.demands) > 0.6

    def test_zero_amplitude_is_roughly_uniform(self):
        problem = diurnal_line_problem(100, 400, seed=3, amplitude=0.0)
        peak = sum(1 for a in problem.demands if a.release % 50 < 25)
        assert 0.35 < peak / len(problem.demands) < 0.65

    def test_deterministic_and_registered(self):
        a = build_workload("diurnal-cycle", 24, seed=5)
        b = build_workload("diurnal-cycle", 24, seed=5)
        key = lambda p: [
            (d.release, d.deadline, d.processing, d.profit) for d in p.demands
        ]
        assert key(a) == key(b)
        spec = get_workload("diurnal-cycle")
        assert spec.kind == "line" and spec.heights == "narrow" and spec.scale

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 8 slots"):
            diurnal_line_problem(6, 5)
        with pytest.raises(ValueError, match="amplitude"):
            diurnal_line_problem(20, 5, amplitude=1.5)
        with pytest.raises(ValueError, match="cycle"):
            diurnal_line_problem(20, 5, n_cycles=0)


class TestFigure1:
    """Every fact the Figure 1 caption states."""

    def test_structure(self):
        p = figure1_problem()
        a, b, c = p.demands
        assert (a.height, b.height, c.height) == (0.5, 0.7, 0.4)

    def test_a_and_c_coexist(self):
        p = figure1_problem()
        insts = p.instances
        d_a = next(d for d in insts if d.demand_id == 0)
        d_c = next(d for d in insts if d.demand_id == 2)
        from repro.core.solution import Solution

        Solution.from_instances([d_a, d_c]).verify()

    def test_b_and_c_coexist(self):
        p = figure1_problem()
        d_b = next(d for d in p.instances if d.demand_id == 1)
        d_c = next(d for d in p.instances if d.demand_id == 2)
        from repro.core.solution import Solution

        Solution.from_instances([d_b, d_c]).verify()

    def test_a_and_b_conflict(self):
        p = figure1_problem()
        d_a = next(d for d in p.instances if d.demand_id == 0)
        d_b = next(d for d in p.instances if d.demand_id == 1)
        from repro.core.solution import Solution

        assert not Solution.from_instances([d_a, d_b]).is_feasible()


class TestFigure2:
    """Every fact the Figure 2 caption states."""

    def test_all_three_share_edge_4_5(self):
        p = figure2_problem()
        for d in p.instances:
            assert (0, 4, 5) in d.path_edges

    def test_unit_height_only_one_schedulable(self):
        from repro.baselines.exact import solve_exact

        assert solve_exact(figure2_problem(unit_height=True)).profit == 1.0

    def test_heights_first_and_third_coexist(self):
        p = figure2_problem()
        d0 = next(d for d in p.instances if d.demand_id == 0)
        d2 = next(d for d in p.instances if d.demand_id == 2)
        from repro.core.solution import Solution

        Solution.from_instances([d0, d2]).verify()

    def test_heights_second_excludes_others(self):
        p = figure2_problem()
        d0 = next(d for d in p.instances if d.demand_id == 0)
        d1 = next(d for d in p.instances if d.demand_id == 1)
        from repro.core.solution import Solution

        assert not Solution.from_instances([d0, d1]).is_feasible()


class TestFigure6:
    """Every fact the paper states about the Figure 6 tree."""

    def test_path_of_4_13(self):
        net = figure6_network()
        assert net.path_vertices(4, 13) == (4, 2, 5, 8, 13)

    def test_fifteen_vertices(self):
        assert figure6_network().n_vertices == 15

    def test_rooting_at_1_captures_at_2(self):
        from repro.trees.root_fixing import build_root_fixing

        net = figure6_network()
        p = Problem(networks={0: net}, demands=[figure6_demand()])
        td = build_root_fixing(net, root=1)
        (inst,) = p.instances
        assert td.capture_node(inst) == 2

    def test_problem_is_solvable(self):
        from repro.algorithms.unit_trees import solve_unit_trees

        report = solve_unit_trees(figure6_problem(), epsilon=0.1, mis="greedy")
        report.solution.verify()
        assert report.profit > 0
