"""Tests for tree decompositions (Section 4): root-fixing, balancing, ideal."""
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.balancing import build_balancing
from repro.trees.decomposition import InvalidDecompositionError, TreeDecomposition
from repro.trees.ideal import build_ideal
from repro.trees.root_fixing import build_root_fixing
from repro.trees.tree import TreeNetwork, make_line_network
from repro.workloads.scenarios import figure6_network
from repro.workloads.trees import SHAPES, random_tree

BUILDERS = {
    "root_fixing": build_root_fixing,
    "balancing": build_balancing,
    "ideal": build_ideal,
}


class TestDecompositionContainer:
    def test_rejects_multiple_roots(self):
        net = TreeNetwork(0, [(0, 1)])
        with pytest.raises(InvalidDecompositionError):
            TreeDecomposition(net, {0: None, 1: None})

    def test_rejects_wrong_vertex_set(self):
        net = TreeNetwork(0, [(0, 1), (1, 2)])
        with pytest.raises(InvalidDecompositionError):
            TreeDecomposition(net, {0: None, 1: 0})

    def test_rejects_cycle(self):
        net = TreeNetwork(0, [(0, 1), (1, 2)])
        with pytest.raises(InvalidDecompositionError):
            TreeDecomposition(net, {0: 2, 1: 0, 2: 1})

    def test_component_of(self):
        net = TreeNetwork(0, [(0, 1), (1, 2), (2, 3)])
        td = build_root_fixing(net, root=0)
        assert td.component_of(2) == frozenset({2, 3})
        assert td.component_of(0) == frozenset({0, 1, 2, 3})

    def test_ancestor_queries(self):
        net = TreeNetwork(0, [(0, 1), (1, 2), (2, 3)])
        td = build_root_fixing(net, root=0)
        assert td.is_ancestor_or_self(0, 3)
        assert td.is_ancestor_or_self(2, 2)
        assert not td.is_ancestor_or_self(3, 2)
        assert td.ancestors_or_self(3) == [3, 2, 1, 0]

    def test_depth_convention_root_is_one(self):
        net = TreeNetwork(0, [(0, 1)])
        td = build_root_fixing(net, root=0)
        assert td.depth[0] == 1 and td.depth[1] == 2


class TestRootFixing:
    def test_pivot_size_is_one(self):
        net = random_tree(40, seed=3)
        td = build_root_fixing(net)
        assert td.pivot_size == 1

    def test_depth_of_path_is_n(self):
        line = make_line_network(0, 9)  # 10 vertices
        td = build_root_fixing(line, root=0)
        assert td.max_depth == 10

    def test_custom_root(self):
        net = TreeNetwork(0, [(0, 1), (1, 2)])
        td = build_root_fixing(net, root=2)
        assert td.root == 2

    def test_rejects_unknown_root(self):
        net = TreeNetwork(0, [(0, 1)])
        with pytest.raises(ValueError):
            build_root_fixing(net, root=5)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_valid_decomposition(self, shape):
        net = random_tree(20, seed=1, shape=shape)
        build_root_fixing(net).verify()


class TestBalancing:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_valid_decomposition(self, shape):
        net = random_tree(20, seed=2, shape=shape)
        build_balancing(net).verify()

    @pytest.mark.parametrize("n", [2, 5, 17, 64, 100])
    def test_depth_logarithmic(self, n):
        net = random_tree(n, seed=4)
        td = build_balancing(net)
        assert td.max_depth <= math.ceil(math.log2(n)) + 1

    def test_pivot_can_exceed_two_on_path(self):
        line = make_line_network(0, 63)  # 64 vertices
        td = build_balancing(line)
        # The balancing decomposition's weakness: pivots grow with depth.
        assert td.pivot_size >= 2
        assert td.pivot_size <= td.max_depth

    def test_pivot_bounded_by_depth(self):
        # Neighbors of C(z) are always ancestors of z.
        for seed in range(5):
            net = random_tree(30, seed=seed)
            td = build_balancing(net)
            assert td.pivot_size <= td.max_depth


class TestIdeal:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_valid_decomposition(self, shape, seed):
        net = random_tree(24, seed=seed, shape=shape)
        build_ideal(net).verify()

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("n", [2, 3, 9, 33, 128])
    def test_lemma_41_pivot_size_at_most_two(self, shape, n):
        net = random_tree(n, seed=7, shape=shape)
        td = build_ideal(net)
        assert td.pivot_size <= 2

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("n", [2, 3, 9, 33, 128])
    def test_lemma_41_depth_logarithmic(self, shape, n):
        net = random_tree(n, seed=8, shape=shape)
        td = build_ideal(net)
        assert td.max_depth <= 2 * math.ceil(math.log2(n)) + 1

    def test_single_vertex(self):
        net = TreeNetwork(0, [], vertices=[3])
        td = build_ideal(net)
        assert td.max_depth == 1 and td.root == 3

    def test_single_edge(self):
        net = TreeNetwork(0, [(0, 1)])
        td = build_ideal(net)
        td.verify()
        assert td.max_depth == 2

    def test_star(self):
        net = TreeNetwork(0, [(0, i) for i in range(1, 30)])
        td = build_ideal(net)
        td.verify()
        assert td.root == 0
        assert td.max_depth == 2

    def test_figure6_network(self):
        net = figure6_network()
        td = build_ideal(net)
        td.verify()
        assert td.pivot_size <= 2
        assert td.max_depth <= 2 * math.ceil(math.log2(15)) + 1


class TestCaptureNodes:
    def test_capture_is_min_depth_on_path(self):
        net = figure6_network()
        from repro.core.demand import Demand
        from repro.core.problem import Problem

        p = Problem(networks={0: net}, demands=[Demand(0, 4, 13, 1.0)])
        (inst,) = p.instances
        # Rooting at 1 captures <4,13> at node 2 (Appendix A example).
        td = build_root_fixing(net, root=1)
        assert td.capture_node(inst) == 2

    @pytest.mark.parametrize("builder_name", list(BUILDERS))
    def test_capture_lies_on_path(self, builder_name):
        net = random_tree(25, seed=11)
        td = BUILDERS[builder_name](net)
        import random

        rng = random.Random(0)
        for _ in range(25):
            u, v = rng.sample(net.vertices, 2)
            path = net.path_vertices(u, v)
            mu = td.capture_node_of_path(path)
            assert mu in path
            assert td.depth[mu] == min(td.depth[x] for x in path)

    @pytest.mark.parametrize("builder_name", list(BUILDERS))
    def test_capture_unique_min_depth(self, builder_name):
        # The LCA property makes the min-depth node on a path unique.
        net = random_tree(25, seed=12)
        td = BUILDERS[builder_name](net)
        import random

        rng = random.Random(1)
        for _ in range(25):
            u, v = rng.sample(net.vertices, 2)
            path = net.path_vertices(u, v)
            depths = sorted(td.depth[x] for x in path)
            assert depths[0] < depths[1] if len(depths) > 1 else True


@st.composite
def random_network(draw):
    n = draw(st.integers(min_value=2, max_value=48))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    shape = draw(st.sampled_from(SHAPES))
    return random_tree(n, seed=seed, shape=shape)


class TestIdealProperties:
    @given(random_network())
    @settings(max_examples=40, deadline=None)
    def test_ideal_is_valid_with_good_parameters(self, net):
        td = build_ideal(net)
        td.verify()
        assert td.pivot_size <= 2
        assert td.max_depth <= 2 * math.ceil(math.log2(net.n_vertices)) + 1

    @given(random_network())
    @settings(max_examples=25, deadline=None)
    def test_balancing_is_valid(self, net):
        td = build_balancing(net)
        td.verify()
        assert td.max_depth <= math.ceil(math.log2(net.n_vertices)) + 1
