"""Hypothesis suite for the service layer's canonical fingerprints.

The cache-key contract of :mod:`repro.service.fingerprint`:

* **Invariance** -- insertion-order shuffles (demand list, networks
  dict, access dict and its tuples) and isomorphic relabelings of
  network ids and demand ids never change the fingerprint;
* **Sensitivity** -- any change to the demands (profit, height,
  window), the accessibility map, or the solve knobs changes it;
* **Soundness plumbing** -- the underlying canonical byte encoding
  distinguishes types exactly (``1`` vs ``1.0`` vs ``True``), orders
  sets/dicts content-wise, and rejects unknown types loudly.
"""
import random
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.canonical import (
    CanonicalizationError,
    canonical_bytes,
    stable_digest,
)
from repro.core.problem import Problem
from repro.service.fingerprint import (
    SolveKnobs,
    problem_fingerprint,
    solve_fingerprint,
)
from repro.trees.tree import TreeNetwork
from repro.workloads import (
    build_workload,
    diurnal_line_problem,
    random_line_problem,
    workload_names,
)

COMMON = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Scalable registry workloads cover trees, forests, lines, windows,
#: single-network access and mixed heights in one sweep.
SCALE_NAMES = workload_names(scale=True)

problem_cases = st.tuples(
    st.sampled_from(SCALE_NAMES),
    st.integers(min_value=6, max_value=24),
    st.integers(min_value=0, max_value=10_000),
)


def relabeled(problem: Problem, seed: int) -> Problem:
    """An isomorphic copy: fresh network/demand ids, shuffled orders."""
    rng = random.Random(seed)
    nids = sorted(problem.networks)
    new_ids = rng.sample(range(10_000, 10_000 + 10 * len(nids) + 10), len(nids))
    nmap = dict(zip(nids, new_ids))
    dmap = {
        a.demand_id: 5_000 + i
        for i, a in enumerate(rng.sample(problem.demands, len(problem.demands)))
    }
    networks = {}
    for nid in rng.sample(nids, len(nids)):  # shuffled dict insertion
        edges = [(u, v) for (_n, u, v) in problem.networks[nid].edges()]
        rng.shuffle(edges)  # shuffled edge insertion
        networks[nmap[nid]] = TreeNetwork(nmap[nid], edges)
    demands = [
        replace(a, demand_id=dmap[a.demand_id])
        for a in rng.sample(problem.demands, len(problem.demands))
    ]
    access = {}
    for a in rng.sample(problem.demands, len(problem.demands)):
        nets = [nmap[n] for n in problem.access[a.demand_id]]
        rng.shuffle(nets)
        access[dmap[a.demand_id]] = tuple(nets)
    return Problem(networks=networks, demands=demands, access=access)


class TestInvariance:
    @settings(**COMMON)
    @given(case=problem_cases, perm_seed=st.integers(0, 10_000))
    def test_relabeling_and_shuffles_hash_equal(self, case, perm_seed):
        name, size, seed = case
        problem = build_workload(name, size, seed=seed)
        assert problem_fingerprint(relabeled(problem, perm_seed)) == (
            problem_fingerprint(problem)
        )

    @settings(**COMMON)
    @given(case=problem_cases)
    def test_rebuild_is_deterministic(self, case):
        name, size, seed = case
        a = problem_fingerprint(build_workload(name, size, seed=seed))
        b = problem_fingerprint(build_workload(name, size, seed=seed))
        assert a == b

    def test_fixed_scenarios_fingerprint(self):
        for name in workload_names(scale=False):
            p = build_workload(name, 1, seed=0)
            assert problem_fingerprint(p) == problem_fingerprint(
                build_workload(name, 1, seed=0)
            )


class TestSensitivity:
    """Any semantic change must change the fingerprint."""

    @settings(**COMMON)
    @given(case=problem_cases, idx=st.integers(min_value=0, max_value=10**9))
    def test_profit_change_differs(self, case, idx):
        name, size, seed = case
        problem = build_workload(name, size, seed=seed)
        fp = problem_fingerprint(problem)
        demands = list(problem.demands)
        i = idx % len(demands)
        demands[i] = replace(demands[i], profit=demands[i].profit + 0.5)
        mutated = Problem(problem.networks, demands, dict(problem.access))
        assert problem_fingerprint(mutated) != fp

    @settings(**COMMON)
    @given(case=problem_cases, idx=st.integers(min_value=0, max_value=10**9))
    def test_height_change_differs(self, case, idx):
        name, size, seed = case
        problem = build_workload(name, size, seed=seed)
        fp = problem_fingerprint(problem)
        demands = list(problem.demands)
        i = idx % len(demands)
        new_h = 0.35 if demands[i].height > 0.5 else 0.75
        demands[i] = replace(demands[i], height=new_h)
        mutated = Problem(problem.networks, demands, dict(problem.access))
        assert problem_fingerprint(mutated) != fp

    def test_access_change_differs(self):
        problem = build_workload("sparse-access-forest", 18, seed=4)
        fp = problem_fingerprint(problem)
        # Widen one demand's accessibility to every network.
        access = dict(problem.access)
        victim = next(
            a.demand_id for a in problem.demands
            if len(access[a.demand_id]) < len(problem.networks)
        )
        access[victim] = tuple(sorted(problem.networks))
        mutated = Problem(problem.networks, list(problem.demands), access)
        assert problem_fingerprint(mutated) != fp

    def test_window_shift_differs(self):
        problem = diurnal_line_problem(24, 10, seed=3)
        fp = problem_fingerprint(problem)
        demands = list(problem.demands)
        a = demands[0]
        demands[0] = replace(
            a, release=a.release + 1, deadline=min(22, a.deadline + 1)
        )
        assert problem_fingerprint(Problem(problem.networks, demands)) != fp

    def test_network_shape_differs(self):
        p1 = random_line_problem(20, 8, seed=1)
        p2 = Problem(
            networks={0: TreeNetwork(0, [(t, t + 1) for t in range(21)])},
            demands=list(p1.demands),
        )
        assert problem_fingerprint(p1) != problem_fingerprint(p2)

    def test_same_shape_different_wiring_differs(self):
        # Two identical tenant trees; d0/d1 both on net 0 vs spread over
        # both nets.  A lossy multiset-of-records hash would collide.
        from repro.core.demand import Demand

        edges = [(0, 1), (1, 2), (2, 3)]
        nets = {0: TreeNetwork(0, edges), 1: TreeNetwork(1, edges)}
        demands = [Demand(0, 0, 2, profit=1.0), Demand(1, 1, 3, profit=1.0)]
        together = Problem(nets, demands, {0: (0,), 1: (0,)})
        spread = Problem(nets, demands, {0: (0,), 1: (1,)})
        assert problem_fingerprint(together) != problem_fingerprint(spread)


class TestSolveKnobs:
    def test_each_knob_changes_the_key(self):
        problem = build_workload("bursty-lines", 10, seed=0)
        # backend pinned so the variant set is REPRO_BACKEND-independent
        base = SolveKnobs(engine="parallel", backend="thread")
        fp = solve_fingerprint(problem, base)
        variants = [
            replace(base, epsilon=0.2),
            replace(base, mis="greedy"),
            replace(base, seed=1),
            replace(base, engine="incremental"),
            replace(base, backend="process"),
            replace(base, plan_granularity="component"),
            replace(base, decomposition="balancing"),
            replace(base, phase2_engine="sliced"),
            replace(base, phase2_engine="vectorized"),
        ]
        others = {solve_fingerprint(problem, k).digest for k in variants}
        assert fp.digest not in others
        assert len(others) == len(variants)

    def test_workers_is_not_part_of_the_key(self):
        problem = build_workload("bursty-lines", 10, seed=0)
        a = solve_fingerprint(problem, SolveKnobs(engine="parallel", workers=2))
        b = solve_fingerprint(problem, SolveKnobs(engine="parallel", workers=8))
        assert a == b

    def test_parallel_only_knobs_normalize_for_serial_engines(self):
        problem = build_workload("bursty-lines", 10, seed=0)
        a = solve_fingerprint(problem, SolveKnobs(engine="incremental"))
        b = solve_fingerprint(
            problem, SolveKnobs(engine="incremental", workers=4)
        )
        assert a == b

    def test_env_backend_resolves_into_the_key(self, monkeypatch):
        problem = build_workload("bursty-lines", 10, seed=0)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        thread_fp = solve_fingerprint(problem, SolveKnobs(engine="parallel"))
        monkeypatch.setenv("REPRO_BACKEND", "process")
        process_fp = solve_fingerprint(problem, SolveKnobs(engine="parallel"))
        assert thread_fp != process_fp
        explicit = solve_fingerprint(
            problem, SolveKnobs(engine="parallel", backend="process")
        )
        assert process_fp == explicit

    def test_vectorized_accepts_executor_knobs(self):
        # The vectorized engine routes workers=/backend=/plan_granularity=
        # through the parallel executor, so it validates and keys like
        # engine='parallel': workers stays an execution hint, the other
        # knobs resolve into the key.
        problem = build_workload("bursty-lines", 10, seed=0)
        SolveKnobs(engine="vectorized", workers=2, backend="process").validate()
        a = solve_fingerprint(problem, SolveKnobs(engine="vectorized", workers=2))
        b = solve_fingerprint(problem, SolveKnobs(engine="vectorized", workers=8))
        assert a == b
        assert a != solve_fingerprint(
            problem, SolveKnobs(engine="vectorized", backend="process")
        )
        with pytest.raises(ValueError, match="vectorized"):
            SolveKnobs(engine="incremental", backend="process").validate()

    def test_phase2_engine_keys_raw_and_unlocks_executor_knobs(self):
        # Every admission engine is bit-identical, but distinct engines
        # must never alias a cache entry (the knob-sensitivity
        # contract) -- phase2_engine is keyed raw.
        problem = build_workload("bursty-lines", 10, seed=0)
        keys = {
            solve_fingerprint(
                problem, SolveKnobs(phase2_engine=p2)
            ).digest
            for p2 in ("reference", "sliced", "vectorized")
        }
        assert len(keys) == 3
        with pytest.raises(ValueError, match="unknown phase2 engine"):
            SolveKnobs(phase2_engine="bogus").validate()
        # A sliced pop runs on the executor backends, so workers=/backend=
        # become legal with a serial first-phase engine -- but the backend
        # slot stays keyed on the first-phase engine alone (a pop
        # substrate never changes the artifact), leaving workers a pure
        # execution hint.
        sliced = SolveKnobs(
            engine="incremental", phase2_engine="sliced",
            workers=2, backend="process",
        ).validate()
        assert solve_fingerprint(problem, sliced) == solve_fingerprint(
            problem, replace(sliced, workers=8, backend="thread")
        )
        with pytest.raises(ValueError, match="phase2_engine='sliced'"):
            SolveKnobs(
                engine="incremental", phase2_engine="vectorized", workers=2
            ).validate()


class TestCanonicalBytes:
    def test_types_are_distinguished(self):
        assert canonical_bytes(1) != canonical_bytes(1.0)
        assert canonical_bytes(1) != canonical_bytes(True)
        assert canonical_bytes(0) != canonical_bytes(False)
        assert canonical_bytes("1") != canonical_bytes(1)
        assert canonical_bytes((1,)) != canonical_bytes([1])
        assert canonical_bytes(()) != canonical_bytes(None)

    def test_containers_are_content_ordered(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({2, 3, 1})
        assert canonical_bytes(frozenset((1, 2))) == canonical_bytes({2, 1})
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes(
            {"b": 2, "a": 1}
        )

    def test_nesting_is_unambiguous(self):
        assert canonical_bytes(((1, 2), 3)) != canonical_bytes((1, (2, 3)))
        assert canonical_bytes(("ab",)) != canonical_bytes(("a", "b"))

    def test_floats_are_exact(self):
        assert canonical_bytes(0.1 + 0.2) != canonical_bytes(0.3)
        assert stable_digest(1e-9) == stable_digest(1e-9)

    def test_unknown_types_rejected(self):
        with pytest.raises(CanonicalizationError, match="object"):
            canonical_bytes(object())

    def test_digest_is_stable(self):
        # Pinned value: a changed encoding must fail loudly here, since
        # it silently invalidates every on-disk cache entry.
        assert stable_digest((1, "a", 2.5)) == stable_digest((1, "a", 2.5))
        assert canonical_bytes((1, "a", 2.5)) == b't(i1;s1:af0x1.4000000000000p+1;)'
