"""Tests for the arbitrary-height tree algorithms (Section 6)."""
import pytest

from repro.algorithms.arbitrary_trees import solve_arbitrary_trees
from repro.algorithms.narrow_trees import solve_narrow_trees
from repro.baselines.exact import solve_exact
from repro.core.lp import check_scaled_dual_feasible, lp_upper_bound
from repro.workloads import figure2_problem, random_tree_problem
from repro.workloads.trees import random_forest


class TestNarrowTrees:
    def test_rejects_wide_demands(self):
        problem = random_tree_problem(
            random_forest(15, 1, seed=1), m=6, seed=2, height_profile="bimodal"
        )
        with pytest.raises(ValueError):
            solve_narrow_trees(problem)

    def test_rejects_bad_hmin(self):
        problem = random_tree_problem(
            random_forest(15, 1, seed=1), m=6, seed=2,
            height_profile="narrow", hmin=0.1,
        )
        with pytest.raises(ValueError):
            solve_narrow_trees(problem, hmin=0.45)

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma_62_guarantee(self, seed):
        problem = random_tree_problem(
            random_forest(18, 2, seed=seed), m=11, seed=seed + 40,
            height_profile="narrow", hmin=0.15,
        )
        report = solve_narrow_trees(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6
        # Lemma 6.1 with Delta <= 6: (2*36+1)/(1-eps)
        assert report.guarantee <= 73.0 / 0.9 + 1e-9

    def test_slackness_reached(self):
        problem = random_tree_problem(
            random_forest(16, 2, seed=9), m=8, seed=10,
            height_profile="narrow", hmin=0.2,
        )
        report = solve_narrow_trees(problem, epsilon=0.15, seed=0)
        check_scaled_dual_feasible(
            report.result.dual, problem.instances, report.result.slackness
        )
        assert report.result.slackness >= 0.85

    def test_identical_narrow_demands_respect_guarantee(self):
        # Four identical narrow demands fit together (4 * 0.25 = 1), but
        # the framework only admits instances it raised: once a couple
        # are tight, the rest are lambda-satisfied and never stacked.
        # The guarantee must still hold.
        from repro.core.demand import Demand
        from repro.core.problem import Problem
        from repro.trees.tree import TreeNetwork

        net = TreeNetwork(0, [(0, 1), (1, 2)])
        demands = [Demand(i, 0, 2, profit=1.0, height=0.25) for i in range(4)]
        problem = Problem(networks={0: net}, demands=demands)
        report = solve_narrow_trees(problem, epsilon=0.05, mis="greedy")
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt == pytest.approx(4.0)
        assert opt <= report.guarantee * report.profit + 1e-6

    def test_second_phase_packs_stacked_narrow_instances(self):
        # When narrow instances are all on the stack, phase 2 does pack
        # them by height rather than edge-disjointness.
        from repro.core.framework import run_second_phase
        from repro.core.demand import Demand
        from repro.core.problem import Problem
        from repro.trees.tree import TreeNetwork

        net = TreeNetwork(0, [(0, 1), (1, 2)])
        demands = [Demand(i, 0, 2, profit=1.0, height=0.25) for i in range(4)]
        problem = Problem(networks={0: net}, demands=demands)
        stack = [[d] for d in problem.instances]
        solution = run_second_phase(stack)
        assert len(solution) == 4


class TestArbitraryTrees:
    def test_figure2_heights(self):
        """Figure 2: heights .4/.7/.3 -- first and third can coexist."""
        problem = figure2_problem()
        report = solve_arbitrary_trees(problem, epsilon=0.05, mis="greedy")
        report.solution.verify()
        assert report.profit >= 1.0
        assert solve_exact(problem).profit == 2.0

    @pytest.mark.parametrize("seed", range(4))
    def test_theorem_63_guarantee(self, seed):
        problem = random_tree_problem(
            random_forest(18, 2, seed=seed + 7), m=12, seed=seed + 70,
            height_profile="bimodal", hmin=0.15,
        )
        report = solve_arbitrary_trees(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6
        assert report.certified_upper_bound >= opt - 1e-6

    def test_all_wide_falls_back_to_unit(self):
        problem = random_tree_problem(
            random_forest(15, 2, seed=3), m=8, seed=4, height_profile="unit"
        )
        report = solve_arbitrary_trees(problem, epsilon=0.1, seed=1)
        assert report.name.startswith("unit-trees")

    def test_all_narrow_falls_back_to_narrow(self):
        problem = random_tree_problem(
            random_forest(15, 2, seed=5), m=8, seed=6,
            height_profile="narrow", hmin=0.2,
        )
        report = solve_arbitrary_trees(problem, epsilon=0.1, seed=1)
        assert report.name.startswith("narrow-trees")

    def test_mixed_has_parts(self):
        problem = random_tree_problem(
            random_forest(15, 2, seed=7), m=10, seed=8,
            height_profile="bimodal", hmin=0.2,
        )
        report = solve_arbitrary_trees(problem, epsilon=0.1, seed=1)
        assert set(report.parts) == {"wide", "narrow"}
        assert report.guarantee == pytest.approx(
            report.parts["wide"].guarantee + report.parts["narrow"].guarantee
        )
        # Combined solution is at least as good as either side.
        assert report.profit >= max(
            report.parts["wide"].profit, report.parts["narrow"].profit
        ) - 1e-9

    def test_no_demand_scheduled_twice(self):
        problem = random_tree_problem(
            random_forest(15, 3, seed=9), m=12, seed=10,
            height_profile="bimodal", hmin=0.2,
        )
        report = solve_arbitrary_trees(problem, epsilon=0.1, seed=2)
        ids = [d.demand_id for d in report.solution.selected]
        assert len(ids) == len(set(ids))

    @pytest.mark.parametrize("seed", range(3))
    def test_lp_bound_respected(self, seed):
        problem = random_tree_problem(
            random_forest(24, 2, seed=seed + 50), m=25, seed=seed + 51,
            height_profile="uniform", hmin=0.1,
        )
        report = solve_arbitrary_trees(problem, epsilon=0.2, seed=seed)
        report.solution.verify()
        assert report.profit <= lp_upper_bound(problem) + 1e-6
