"""Tests for the epoch-graph planner (:mod:`repro.core.plan`).

The plan's contract: per-epoch slices partition the instance set, the
per-epoch adjacency/index agree with their global counterparts
restricted to the group, interactions capture every shared path edge or
demand, and the waves are a precedence-respecting partition into
independence classes.
"""
import pytest

from repro.algorithms.base import line_layouts, tree_layouts
from repro.core.plan import EpochPlan
from repro.distributed.conflict import (
    build_conflict_graph,
    build_instance_index,
    restrict,
)
from repro.workloads import build_workload, scenario

TREE_WORKLOADS = ["powerlaw-trees", "deep-trees", "multi-tenant-forest"]
LINE_WORKLOADS = ["bursty-lines", "wide-vod-lines"]


def make_plan(name, size=40, seed=3, conflict_adj=None):
    problem = build_workload(name, size, seed=seed)
    if name in LINE_WORKLOADS:
        layout = line_layouts(problem)
    else:
        layout, _ = tree_layouts(problem, "ideal")
    return problem, layout, EpochPlan.build(
        problem.instances, layout, conflict_adj
    )


class TestSlices:
    @pytest.mark.parametrize("name", TREE_WORKLOADS + LINE_WORKLOADS)
    def test_members_partition_instances_in_order(self, name):
        problem, layout, plan = make_plan(name)
        seen = [d.instance_id for mine in plan.members.values() for d in mine]
        assert sorted(seen) == [d.instance_id for d in problem.instances]
        for epoch, mine in plan.members.items():
            for d in mine:
                assert layout.group_of[d.instance_id] == epoch
            # Slices preserve the global instance order within the group.
            ids = [d.instance_id for d in mine]
            assert ids == sorted(ids)

    @pytest.mark.parametrize("name", TREE_WORKLOADS + LINE_WORKLOADS)
    def test_adjacency_matches_global_restriction(self, name):
        problem, layout, plan = make_plan(name)
        global_adj = build_conflict_graph(problem.instances)
        for epoch, mine in plan.members.items():
            ids = [d.instance_id for d in mine]
            assert plan.adjacency[epoch] == restrict(global_adj, ids)

    def test_adjacency_sliced_from_prebuilt_graph(self):
        problem, layout, _ = make_plan("powerlaw-trees")
        global_adj = build_conflict_graph(problem.instances)
        _, _, plan = make_plan("powerlaw-trees", conflict_adj=global_adj)
        for epoch, mine in plan.members.items():
            ids = [d.instance_id for d in mine]
            assert plan.adjacency[epoch] == restrict(global_adj, ids)

    @pytest.mark.parametrize("name", TREE_WORKLOADS)
    def test_index_agrees_with_global_on_members(self, name):
        problem, layout, plan = make_plan(name)
        global_index = build_instance_index(problem.instances)
        for epoch, mine in plan.members.items():
            member_ids = {d.instance_id for d in mine}
            local = plan.index[epoch]
            for d in mine:
                want = global_index.affected_by(
                    d.demand_id, layout.pi[d.instance_id]
                ) & member_ids
                got = local.affected_by(d.demand_id, layout.pi[d.instance_id])
                assert set(got) == want


class TestInteractions:
    @pytest.mark.parametrize("name", TREE_WORKLOADS + LINE_WORKLOADS)
    def test_interactions_are_exactly_shared_edges_or_demands(self, name):
        problem, layout, plan = make_plan(name)
        edges = {
            epoch: set().union(*(d.path_edges for d in mine))
            for epoch, mine in plan.members.items()
        }
        demands = {
            epoch: {d.demand_id for d in mine}
            for epoch, mine in plan.members.items()
        }
        for j in plan.members:
            for k in plan.members:
                if j >= k:
                    continue
                expected = bool(
                    (edges[j] & edges[k]) or (demands[j] & demands[k])
                )
                assert (k in plan.interactions[j]) == expected
                assert (j in plan.interactions[k]) == expected

    @pytest.mark.parametrize("name", TREE_WORKLOADS + LINE_WORKLOADS)
    def test_shared_key_sets_cover_interaction_evidence(self, name):
        problem, layout, plan = make_plan(name)
        for epoch, mine in plan.members.items():
            my_edges = set().union(*(d.path_edges for d in mine))
            my_demands = {d.demand_id for d in mine}
            others_edges = set()
            others_demands = set()
            for other, theirs in plan.members.items():
                if other == epoch:
                    continue
                others_edges |= set().union(*(d.path_edges for d in theirs))
                others_demands |= {d.demand_id for d in theirs}
            assert plan.shared_edges[epoch] == my_edges & others_edges
            assert plan.shared_demands[epoch] == my_demands & others_demands


class TestWaves:
    @pytest.mark.parametrize("name", TREE_WORKLOADS + LINE_WORKLOADS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_waves_verify(self, name, seed):
        _, _, plan = make_plan(name, seed=seed)
        plan.verify()
        assert plan.n_waves >= 1
        assert plan.width >= 1

    def test_chained_epochs_serialize(self):
        # The worked tree example is small and dense: its epochs all
        # touch the same few edges, so the plan must serialize them.
        problem = scenario("figure6")
        layout, _ = tree_layouts(problem, "ideal")
        plan = EpochPlan.build(problem.instances, layout)
        plan.verify()
        non_empty = [k for k, mine in plan.members.items() if mine]
        if len(non_empty) > 1:
            assert plan.n_waves > 1

    def test_multi_tenant_forest_has_width(self):
        # The headline workload of bench_e17: the planner must find
        # genuinely independent epochs to run concurrently.
        _, _, plan = make_plan("multi-tenant-forest", size=160, seed=160)
        plan.verify()
        assert plan.width >= 2

    def test_empty_epochs_carry_no_constraints(self):
        problem, layout, plan = make_plan("powerlaw-trees")
        empty = [
            k for k in range(1, layout.n_epochs + 1) if k not in plan.members
        ]
        wave0 = set(plan.waves[0]) if plan.waves else set()
        for k in empty:
            assert not plan.interactions[k]
            assert k in wave0
