"""Concurrent stats/metrics reads mid-solve-storm.

The registry's contract is that snapshots are internally consistent
(taken under the registry lock): no snapshot may show a torn histogram
(``sum(counts) != count`` or ``sum`` inconsistent with ``count == 0``),
and counters must read monotone across successive snapshots from one
observer.  These tests hammer ``{"op": "stats"}`` and
``{"op": "metrics"}`` from multiple connections while a solve storm is
in flight, which is exactly when a torn read would surface.

No ``pytest-asyncio``: each test drives its own loop with
``asyncio.run``.
"""
import asyncio
import json

from repro.obs import MetricsRegistry
from repro.service import AsyncSchedulingService

KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)

POLLERS = 3
STORM = 10


async def _rpc(reader, writer, message):
    writer.write(json.dumps(message).encode("utf-8") + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def _storm(host, port, done):
    """Pipeline STORM distinct solves on one connection, then flag."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i in range(STORM):
            wire = {
                "id": i,
                "workload": "bursty-lines",
                "size": 10 + i,
                "seed": 1 + (i % 3),
                "knobs": KNOBS,
            }
            writer.write(json.dumps(wire).encode("utf-8") + b"\n")
        await writer.drain()
        responses = [
            json.loads(await reader.readline()) for _ in range(STORM)
        ]
    finally:
        done.set()
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return responses


async def _poll(host, port, op, done, min_polls=5):
    """Poll one wire op on a dedicated connection until the storm ends
    (at least *min_polls* times); returns the responses in order."""
    reader, writer = await asyncio.open_connection(host, port)
    polls = []
    try:
        while len(polls) < min_polls or not done.is_set():
            polls.append(
                await _rpc(reader, writer, {"id": len(polls), "op": op})
            )
            await asyncio.sleep(0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return polls


def _assert_untorn(snapshot):
    for key, h in snapshot["histograms"].items():
        assert sum(h["counts"]) == h["count"], (
            f"torn histogram snapshot for {key}: "
            f"sum(counts)={sum(h['counts'])} != count={h['count']}"
        )
        if h["count"] == 0:
            assert h["sum"] == 0.0
        else:
            assert h["min"] is not None and h["max"] is not None
            assert h["min"] <= h["max"]


class TestConcurrentReads:
    def test_metrics_snapshots_are_untorn_and_monotone(self):
        async def run():
            front = AsyncSchedulingService(
                capacity=16, workers=2, metrics=MetricsRegistry()
            )
            host, port = await front.serve()
            done = asyncio.Event()
            storm, *poller_results = await asyncio.gather(
                _storm(host, port, done),
                *[
                    _poll(host, port, "metrics", done)
                    for _ in range(POLLERS)
                ],
            )
            await front.drain()
            final = front.service.metrics_snapshot()["metrics"]
            return storm, poller_results, final

        storm, poller_results, final = asyncio.run(run())
        assert all(r["ok"] for r in storm)
        for polls in poller_results:
            assert len(polls) >= 5
            assert all(p["ok"] for p in polls)
            for p in polls:
                _assert_untorn(p["metrics"])
            # Counters read monotone across successive snapshots taken
            # by the same observer.
            for earlier, later in zip(polls, polls[1:]):
                for key, value in earlier["metrics"]["counters"].items():
                    assert later["metrics"]["counters"].get(key, 0) >= value, (
                        f"counter {key} moved backwards"
                    )
            # ... and the drained service's final state dominates every
            # mid-storm read.
            last = polls[-1]["metrics"]["counters"]
            for key, value in last.items():
                assert final["counters"].get(key, 0) >= value
        _assert_untorn(final)
        requests_total = sum(
            v
            for k, v in final["counters"].items()
            if k.startswith("repro_service_requests_total")
        )
        assert requests_total == STORM

    def test_stats_and_metrics_interleave_mid_storm(self):
        async def run():
            front = AsyncSchedulingService(
                capacity=16, workers=2, metrics=MetricsRegistry()
            )
            host, port = await front.serve()
            done = asyncio.Event()
            storm, stats_polls, metrics_polls = await asyncio.gather(
                _storm(host, port, done),
                _poll(host, port, "stats", done),
                _poll(host, port, "metrics", done),
            )
            await front.drain()
            return storm, stats_polls, metrics_polls

        storm, stats_polls, metrics_polls = asyncio.run(run())
        assert all(r["ok"] for r in storm)
        assert all(p["ok"] and "service" in p["stats"] for p in stats_polls)
        for p in metrics_polls:
            _assert_untorn(p["metrics"])
        # The service-level request counter in stats is monotone too.
        requests = [
            p["stats"]["service"]["requests"] for p in stats_polls
        ]
        assert requests == sorted(requests)
