"""The asyncio front door: solve/batch parity, backpressure, the
JSON-over-TCP endpoint, and graceful drain.

Event-loop plumbing must never change served bits: every result that
comes back through ``await``/the wire is digest-compared against a
direct :func:`solve_auto` call.  No ``pytest-asyncio`` dependency --
each test drives its own loop with ``asyncio.run``.
"""
import asyncio
import json
import threading

import pytest

from repro.algorithms import solve_auto
from repro.core.engines import backends
from repro.service import (
    AsyncSchedulingService,
    ServiceError,
    SolveRequest,
    report_semantic_digest,
)
from repro.workloads import build_workload

KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)


def request(name="bursty-lines", size=14, seed=1):
    return SolveRequest.from_workload(name, size, seed=seed, **KNOBS)


def direct_digest(name="bursty-lines", size=14, seed=1):
    report = solve_auto(
        build_workload(name, size, seed=seed), **{**KNOBS, "seed": seed}
    )
    return report_semantic_digest(report)


class TestAsyncSolve:
    def test_solve_matches_direct_cold_and_cached(self):
        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            cold = await front.solve(request())
            warm = await front.solve(request())
            await front.drain()
            return cold, warm

        cold, warm = asyncio.run(run())
        expected = direct_digest()
        assert cold.status == "miss"
        assert warm.status == "hit"
        assert report_semantic_digest(cold.report) == expected
        assert report_semantic_digest(warm.report) == expected

    def test_solve_batch_coalesces_and_orders(self):
        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            reqs = [request(seed=1), request(seed=2), request(seed=1)]
            results = await front.solve_batch(reqs)
            stats = front.stats
            await front.drain()
            return reqs, results, stats

        reqs, results, stats = asyncio.run(run())
        assert [r.label for r in results] == [r.label for r in reqs]
        # Two distinct fingerprints -> exactly two solves; the third
        # entry coalesced or hit.
        assert stats["service"]["solves"] == 2
        assert report_semantic_digest(results[0].report) == report_semantic_digest(
            results[2].report
        )

    def test_solve_problem_uses_default_knobs(self):
        async def run():
            front = AsyncSchedulingService(capacity=4, workers=2)
            problem = build_workload("bursty-lines", 14, seed=1)
            result = await front.solve_problem(problem, label="adhoc")
            await front.drain()
            return result

        result = asyncio.run(run())
        assert result.label == "adhoc"
        assert result.profit > 0

    def test_failures_stay_attributable(self):
        async def run():
            front = AsyncSchedulingService(capacity=4, workers=2)
            from repro.service import SolveKnobs

            bad = SolveRequest(
                problem=build_workload("bursty-lines", 14, seed=1),
                knobs=SolveKnobs(engine="incremental", backend="process"),
                label="bad-combo",
            )
            with pytest.raises(ServiceError, match="bad-combo"):
                await front.solve(bad)
            await front.drain()

        asyncio.run(run())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="not both"):
            AsyncSchedulingService(
                service=object(), capacity=4  # type: ignore[arg-type]
            )
        with pytest.raises(ValueError, match="max_inflight"):
            AsyncSchedulingService(max_inflight=0)


class TestBackpressure:
    def test_peak_inflight_respects_the_cap(self):
        cap = 2

        async def run():
            front = AsyncSchedulingService(
                capacity=16, workers=2, max_inflight=cap
            )
            reqs = [request(size=14 + i) for i in range(6)]  # all cold
            await asyncio.gather(*(front.solve(r) for r in reqs))
            stats = front.stats
            await front.drain()
            return stats

        stats = asyncio.run(run())
        assert 1 <= stats["peak_active"] <= cap
        assert stats["peak_queued"] >= 6 - cap, (
            "arrivals beyond the cap must be visible as queue depth"
        )
        assert stats["served"] == 6
        assert stats["queued"] == 0 and stats["active"] == 0

    def test_drained_front_rejects_new_requests(self):
        async def run():
            front = AsyncSchedulingService(capacity=4, workers=2)
            await front.solve(request())
            await front.drain()
            with pytest.raises(ServiceError, match="draining"):
                await front.solve(request(seed=9))
            return front.stats

        stats = asyncio.run(run())
        assert stats["rejected"] == 1


class TestWireProtocol:
    @staticmethod
    async def roundtrip(lines, *, front_kwargs=None):
        """Open a front door + client, send *lines*, return responses."""
        front = AsyncSchedulingService(
            capacity=16, workers=2, **(front_kwargs or {})
        )
        host, port = await front.serve()
        reader, writer = await asyncio.open_connection(host, port)
        for line in lines:
            payload = line if isinstance(line, bytes) else json.dumps(line).encode()
            writer.write(payload + b"\n")
        await writer.drain()
        responses = [
            json.loads(await reader.readline()) for _ in range(len(lines))
        ]
        writer.close()
        await writer.wait_closed()
        await front.drain()
        return front, responses

    def test_request_roundtrip_matches_direct_solve(self):
        wire = {
            "id": 5,
            "workload": "bursty-lines",
            "size": 14,
            "seed": 1,
            "knobs": KNOBS,
        }
        front, responses = asyncio.run(self.roundtrip([wire, wire]))
        assert all(r["ok"] and r["id"] == 5 for r in responses)
        # Pipelined duplicates coalesce: one solve ran; callers see the
        # shared miss, or a hit if they landed after resolution.
        assert front.stats["service"]["solves"] == 1
        assert {r["status"] for r in responses} <= {"miss", "hit"}
        expected = direct_digest()
        assert all(r["semantic_digest"] == expected for r in responses)
        assert all(r["label"] == "bursty-lines@14#1" for r in responses)

    def test_pipelined_ids_correlate_out_of_order_responses(self):
        lines = [
            {"id": i, "workload": "bursty-lines", "size": 14 + (i % 2),
             "seed": 1, "knobs": KNOBS}
            for i in range(6)
        ]
        front, responses = asyncio.run(self.roundtrip(lines))
        assert sorted(r["id"] for r in responses) == list(range(6))
        assert all(r["ok"] for r in responses)

    def test_malformed_and_invalid_lines_answer_without_killing_conn(self):
        lines = [
            b"this is not json",
            {"id": 1, "op": "stats"},
            {"id": 2, "workload": "no-such-workload", "size": 8},
            {"id": 3, "size": 8},  # missing workload
            {"id": 4, "workload": "bursty-lines", "size": 14, "seed": 1,
             "knobs": {"bogus_knob": True}},
            {"id": 5, "workload": "bursty-lines", "size": 14, "seed": 1,
             "knobs": KNOBS},
        ]
        front, responses = asyncio.run(self.roundtrip(lines))
        by_id = {r.get("id"): r for r in responses}
        assert not by_id[None]["ok"]  # unparseable line
        assert by_id[1]["ok"] and "service" in by_id[1]["stats"]
        assert not by_id[2]["ok"] and "no-such-workload" in by_id[2]["error"]
        assert not by_id[3]["ok"] and "workload" in by_id[3]["error"]
        assert not by_id[4]["ok"]
        assert by_id[5]["ok"], "a valid request after garbage must still serve"
        assert by_id[5]["semantic_digest"] == direct_digest()

    def test_oversized_line_answers_and_flushes_accepted_work(self):
        # A line past the stream limit breaks the line discipline, so
        # the connection ends -- but the already-pipelined valid
        # request must still get its response, and the offense gets an
        # ok:false answer instead of a silent hangup.
        from repro.service.async_front import WIRE_LINE_LIMIT

        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(
                host, port, limit=WIRE_LINE_LIMIT
            )
            writer.write(json.dumps({
                "id": 1, "workload": "bursty-lines", "size": 14,
                "seed": 1, "knobs": KNOBS,
            }).encode() + b"\n")
            writer.write(b"x" * (WIRE_LINE_LIMIT + 1024) + b"\n")
            await writer.drain()
            responses = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                responses.append(json.loads(line))
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return responses

        responses = asyncio.run(run())
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["ok"], "accepted request must be answered"
        assert by_id[1]["semantic_digest"] == direct_digest()
        assert not by_id[None]["ok"] and "exceeds" in by_id[None]["error"]

    def test_serve_twice_rejected(self):
        async def run():
            front = AsyncSchedulingService(capacity=4, workers=2)
            await front.serve()
            with pytest.raises(RuntimeError, match="already"):
                await front.serve()
            await front.drain()

        asyncio.run(run())


class TestStatsAndInvalidateWire:
    def test_stats_round_trips_a_future_non_serializable_counter(self):
        # The regression: one layer growing a non-JSON stat (an object,
        # an Enum, a numpy scalar) must degrade that value to its repr,
        # not flip the whole {"op": "stats"} answer to ok:false.  Real
        # socket, not a direct stats-property peek -- the bug lives in
        # the json.dumps on the wire path.
        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            front.service._delta_totals["future_stat"] = object()
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"id": 1, "op": "stats"}).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return response

        response = asyncio.run(run())
        assert response["ok"], "stats must answer despite the bad counter"
        bogus = response["stats"]["service"]["delta_totals"]["future_stat"]
        assert isinstance(bogus, str) and "object" in bogus
        assert response["stats"]["service"]["requests"] == 0

    def test_invalidate_op_sweeps_and_validates(self):
        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            lines = [
                {"id": 1, "workload": "bursty-lines", "size": 14, "seed": 1,
                 "knobs": KNOBS},
                {"id": 2, "op": "invalidate", "epoch_below": 1},
                {"id": 3, "workload": "bursty-lines", "size": 14, "seed": 1,
                 "knobs": KNOBS},
                {"id": 4, "op": "invalidate"},  # missing epoch_below
            ]
            responses = []
            for line in lines:  # sequential: order matters here
                writer.write(json.dumps(line).encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return {r["id"]: r for r in responses}

        by_id = asyncio.run(run())
        assert by_id[1]["ok"] and by_id[1]["status"] == "miss"
        assert by_id[2]["ok"] and by_id[2]["dropped"] >= 1
        assert by_id[3]["ok"] and by_id[3]["status"] == "miss", (
            "a swept entry must re-solve, not serve stale"
        )
        assert not by_id[4]["ok"] and "epoch_below" in by_id[4]["error"]


class TestDeltaPushWire:
    def test_subscription_pushes_full_then_delta(self):
        from repro.service import ScheduleFollower, schedule_table, table_digest
        from repro.workloads import build_trajectory

        steps = build_trajectory("churn-lines", 16, seed=3, steps=2)

        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            responses = []
            for k in range(2):
                writer.write(json.dumps({
                    "id": k, "trajectory": "churn-lines", "size": 16,
                    "seed": 3, "step": k, "knobs": KNOBS,
                    "sub": "watch", "table": bool(k),
                }).encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return responses

        responses = asyncio.run(run())
        assert all(r["ok"] for r in responses)
        assert responses[0]["push"]["mode"] == "full"
        assert "table" not in responses[0], "table rides only on request"
        assert responses[1]["push"]["mode"] == "delta"
        follower = ScheduleFollower()
        for k, r in enumerate(responses):
            table = follower.apply(r["push"])
            direct = solve_auto(steps[k].problem, **{**KNOBS, "seed": 3})
            assert table_digest(table) == table_digest(schedule_table(direct))
        # table: true on the second request: explicit table + digest,
        # consistent with the push chain.
        assert responses[1]["table_digest"] == table_digest(follower.table)

    def test_trajectory_requests_validate(self):
        async def run():
            front = AsyncSchedulingService(capacity=4, workers=2)
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            lines = [
                {"id": 1, "trajectory": "churn-lines",
                 "workload": "bursty-lines", "size": 14},
                {"id": 2, "trajectory": "churn-lines", "size": 14,
                 "step": -1},
                {"id": 3, "workload": "bursty-lines", "size": 14, "seed": 1,
                 "sub": 7, "knobs": KNOBS},
            ]
            for line in lines:
                writer.write(json.dumps(line).encode() + b"\n")
            await writer.drain()
            responses = [
                json.loads(await reader.readline()) for _ in lines
            ]
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return {r["id"]: r for r in responses}

        by_id = asyncio.run(run())
        assert not by_id[1]["ok"] and "not both" in by_id[1]["error"]
        assert not by_id[2]["ok"] and "step" in by_id[2]["error"]
        assert not by_id[3]["ok"] and "sub" in by_id[3]["error"]


class TestRoutedWireRobustness:
    """The front door's garbage/oversize/sever guarantees, re-checked
    through the shard router: a hostile or dying client must leave both
    the router and the shard behind it healthy."""

    @pytest.fixture(scope="class")
    def cluster(self):
        from repro.service import ShardCluster

        with ShardCluster(shards=1, capacity=16, workers=2) as c:
            yield c

    @staticmethod
    async def healthy_roundtrip(reader, writer):
        writer.write(json.dumps({
            "id": 77, "workload": "bursty-lines", "size": 14, "seed": 1,
            "knobs": KNOBS,
        }).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())

    def test_oversized_line_answers_and_router_survives(self, cluster):
        from repro.service import ShardRouter
        from repro.service.async_front import WIRE_LINE_LIMIT

        async def run():
            router = ShardRouter(cluster.addresses)
            host, port = await router.serve()
            reader, writer = await asyncio.open_connection(
                host, port, limit=WIRE_LINE_LIMIT
            )
            writer.write(json.dumps({
                "id": 1, "workload": "bursty-lines", "size": 14, "seed": 1,
                "knobs": KNOBS,
            }).encode() + b"\n")
            writer.write(b"x" * (WIRE_LINE_LIMIT + 1024) + b"\n")
            await writer.drain()
            responses = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                responses.append(json.loads(line))
            writer.close()
            await writer.wait_closed()
            # The offending connection is gone; a fresh one must serve.
            reader2, writer2 = await asyncio.open_connection(host, port)
            followup = await self.healthy_roundtrip(reader2, writer2)
            writer2.close()
            await writer2.wait_closed()
            await router.aclose()
            return responses, followup

        responses, followup = asyncio.run(run())
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["ok"], "the pipelined request must be answered"
        assert not by_id[None]["ok"] and "exceeds" in by_id[None]["error"]
        assert followup["ok"] and followup["semantic_digest"] == direct_digest()

    def test_sever_mid_forward_leaves_router_and_shard_healthy(self, cluster):
        from repro.service import ShardRouter

        async def run():
            router = ShardRouter(cluster.addresses)
            host, port = await router.serve()
            # Fire a cold request and slam the connection before the
            # shard can answer: the router's relay must hit its
            # closing-transport guard, not crash or poison the link.
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({
                "id": 1, "workload": "bursty-lines", "size": 15, "seed": 4,
                "knobs": KNOBS,
            }).encode() + b"\n")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            reader2, writer2 = await asyncio.open_connection(host, port)
            followup = await self.healthy_roundtrip(reader2, writer2)
            stats = None
            writer2.write(json.dumps({"id": 9, "op": "stats"}).encode() + b"\n")
            await writer2.drain()
            stats = json.loads(await reader2.readline())
            writer2.close()
            await writer2.wait_closed()
            await router.aclose()
            return followup, stats

        followup, stats = asyncio.run(run())
        assert followup["ok"] and followup["semantic_digest"] == direct_digest()
        assert stats["ok"] and stats["stats"]["router"]["shards_dead"] == [], (
            "a severed client must never mark the shard dead"
        )

    def test_garbage_lines_through_router(self, cluster):
        from repro.service import ShardRouter

        async def run():
            router = ShardRouter(cluster.addresses)
            host, port = await router.serve()
            reader, writer = await asyncio.open_connection(host, port)
            lines = [
                b"not json at all",
                json.dumps({"id": 1, "op": "bogus"}).encode(),
                json.dumps({"id": 2, "workload": "no-such", "size": 8}).encode(),
                json.dumps({
                    "id": 3, "workload": "bursty-lines", "size": 14,
                    "seed": 1, "knobs": KNOBS,
                }).encode(),
            ]
            for line in lines:
                writer.write(line + b"\n")
            await writer.drain()
            responses = [
                json.loads(await reader.readline()) for _ in lines
            ]
            writer.close()
            await writer.wait_closed()
            await router.aclose()
            return {r.get("id"): r for r in responses}

        by_id = asyncio.run(run())
        assert not by_id[None]["ok"]
        assert not by_id[1]["ok"] and "bogus" in by_id[1]["error"]
        assert not by_id[2]["ok"] and "no-such" in by_id[2]["error"]
        assert by_id[3]["ok"], "a valid request after garbage must serve"
        assert by_id[3]["semantic_digest"] == direct_digest()


class TestGracefulDrain:
    def test_aclose_leaves_zero_live_executors(self):
        async def run():
            async with AsyncSchedulingService(capacity=8, workers=2) as front:
                host, port = await front.serve()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(json.dumps({
                    "id": 0, "workload": "bursty-lines", "size": 14,
                    "seed": 1, "knobs": KNOBS,
                }).encode() + b"\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"]
                writer.close()
                await writer.wait_closed()
            # __aexit__ ran aclose(): drained + pools torn down.

        asyncio.run(run())
        assert not backends._THREAD_POOLS
        assert not backends._PROCESS_POOLS
        assert not backends._SERVICE_POOLS
        assert not any(
            t.name.startswith(("repro-service", "repro-epoch", "repro-admission"))
            for t in threading.enumerate()
        ), "a closed front door must leave no live pool threads"

    def test_inflight_requests_resolve_through_drain(self):
        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            # Launch cold work, then drain while it is in flight: the
            # drain must wait for resolution, not cancel it.
            tasks = [
                asyncio.ensure_future(front.solve(request(size=14 + i)))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let the tasks reach admission
            await front.drain()
            results = [await t for t in tasks]
            assert all(r.report.profit >= 0 for r in results)
            return front.stats

        stats = asyncio.run(run())
        assert stats["served"] == 3
        assert stats["draining"]

    def test_drain_is_idempotent(self):
        async def run():
            front = AsyncSchedulingService(capacity=4, workers=2)
            await front.solve(request())
            await front.drain()
            await front.drain()
            await front.aclose()

        asyncio.run(run())
