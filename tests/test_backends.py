"""Golden cross-engine differential harness for the execution backends.

The parallel engine's three backends (thread pool, process pool, inline
serial) must be **bit-identical** to ``engine="incremental"`` -- and to
each other -- under the default epoch granularity, for every registry
workload and every bundled MIS oracle.  One comparable value captures
the whole contract: :meth:`TwoPhaseResult.semantic_tuple` folds the
selected ids, the full raise log (exact float deltas), the stack shape,
the schedule counters and the final dual assignments *as ordered items*
into a single tuple, so any divergence -- including a dual dict whose
keys were created in a different order, which would silently change
``DualState.value()``'s float summation -- fails loudly.

The full sweep (every workload x oracle x backend, reference engine
included) is marked ``slow``; the quick CI legs run the unmarked smoke
subset (`-m "not slow"`), which still crosses every backend.
"""
import os
import subprocess
import sys

import pytest

from repro.algorithms.arbitrary_lines import solve_arbitrary_lines
from repro.algorithms.arbitrary_trees import solve_arbitrary_trees
from repro.core.engines import BACKENDS
from repro.workloads import build_workload, get_workload, workload_names

ORACLES = ("greedy", "luby", "hash")

#: (size, seed, epsilon) per workload kind; fixed scenarios ignore size.
SWEEP_SIZE = 26
SWEEP_SEED = 4
EPSILON = {"tree": 0.25, "line": 0.3}

#: Per-(workload, oracle) incremental/reference runs are shared across
#: the backend parametrization; solving them once keeps the sweep from
#: being quadratically slow.
_BASELINES = {}


def solve(name, mis, **kwargs):
    """Solve a registry workload with the algorithm family its kind
    demands (arbitrary-heights entry points subsume unit/narrow/wide)."""
    spec = get_workload(name)
    problem = build_workload(name, SWEEP_SIZE, seed=SWEEP_SEED)
    solver = solve_arbitrary_trees if spec.kind == "tree" else solve_arbitrary_lines
    return solver(
        problem, epsilon=EPSILON[spec.kind], mis=mis, seed=SWEEP_SEED, **kwargs
    )


def baseline(name, mis):
    key = (name, mis)
    if key not in _BASELINES:
        _BASELINES[key] = {
            "incremental": solve(name, mis, engine="incremental"),
            "reference": solve(name, mis, engine="reference"),
        }
    return _BASELINES[key]


def assert_identical_reports(expected, got, what):
    """Bit-identity of two reports via semantic tuples, recursing into
    the wide/narrow parts of composite algorithms."""
    assert set(expected.parts) == set(got.parts), what
    if expected.result is not None or got.result is not None:
        a, b = expected.result, got.result
        assert a.semantic_tuple() == b.semantic_tuple(), (
            f"{what}: semantic tuples diverged"
        )
        # Insertion order of the dual dicts, asserted explicitly: the
        # semantic tuple covers it via ordered items, but a bare key
        # listing names the first out-of-place key on failure.
        assert list(a.dual.alpha) == list(b.dual.alpha), what
        assert list(a.dual.beta) == list(b.dual.beta), what
    assert expected.guarantee == got.guarantee, what
    assert expected.certified_upper_bound == got.certified_upper_bound, what
    for part in expected.parts:
        assert_identical_reports(expected.parts[part], got.parts[part], f"{what}/{part}")


class TestGoldenSweep:
    """Every registry workload x engine x backend x oracle."""

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("name", workload_names())
    def test_backend_matches_incremental(self, name, mis, backend):
        base = baseline(name, mis)
        workers = 1 if backend == "serial" else 2
        par = solve(
            name, mis, engine="parallel", workers=workers, backend=backend
        )
        assert_identical_reports(
            base["incremental"], par, f"{name}/{mis}/parallel-{backend}"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("name", workload_names())
    def test_reference_matches_incremental(self, name, mis):
        base = baseline(name, mis)
        assert_identical_reports(
            base["reference"], base["incremental"], f"{name}/{mis}/reference"
        )


class TestSmokeSweep:
    """The always-on subset: one tree and one line family, every backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mis", ("greedy", "luby"))
    @pytest.mark.parametrize("name", ("multi-tenant-forest", "bursty-lines"))
    def test_backend_matches_incremental(self, name, mis, backend):
        base = baseline(name, mis)
        workers = 1 if backend == "serial" else 2
        par = solve(
            name, mis, engine="parallel", workers=workers, backend=backend
        )
        assert_identical_reports(
            base["incremental"], par, f"{name}/{mis}/parallel-{backend}"
        )


class TestBackendKnob:
    def test_unknown_backend_rejected_early(self):
        problem = build_workload("multi-tenant-forest", 12, seed=0)
        with pytest.raises(ValueError, match="unknown backend"):
            solve_arbitrary_trees(problem, engine="parallel", backend="gpu")

    @pytest.mark.parametrize("knob", ["backend", "plan_granularity"])
    @pytest.mark.parametrize("engine", ["reference", "incremental"])
    def test_parallel_knobs_rejected_for_serial_engines(self, engine, knob):
        from repro.algorithms.base import tree_layouts
        from repro.core.dual import UnitRaise
        from repro.core.framework import run_two_phase

        problem = build_workload("multi-tenant-forest", 12, seed=0)
        layout, _ = tree_layouts(problem, "ideal")
        value = "serial" if knob == "backend" else "component"
        with pytest.raises(ValueError, match=f"{knob}= applies only"):
            run_two_phase(
                problem.instances, layout, UnitRaise(), [0.9],
                mis="greedy", engine=engine, **{knob: value},
            )

    def test_serial_backend_rejects_pooled_workers(self):
        from repro.core.engines import ParallelEpochExecutor

        with pytest.raises(ValueError, match="serial"):
            ParallelEpochExecutor(workers=3, backend="serial")
        assert ParallelEpochExecutor(backend="serial").workers == 1

    def test_validation_is_single_sourced(self):
        from repro.algorithms.base import validate_backend as base_validate
        from repro.core.framework import validate_backend as fw_validate

        with pytest.raises(ValueError) as base_err:
            base_validate("warp")
        with pytest.raises(ValueError) as fw_err:
            fw_validate("warp")
        assert str(base_err.value) == str(fw_err.value)
        assert base_validate("process") == "process"
        assert base_validate(None) is None

    def test_env_var_resolves_default_backend(self):
        # The CI smoke leg runs the unmodified suite under
        # REPRO_BACKEND=process; resolution must honor it only when the
        # caller left backend=None.
        code = (
            "from repro.core.engines import ParallelEpochExecutor;"
            "assert ParallelEpochExecutor(workers=2).backend_name == 'process';"
            "assert ParallelEpochExecutor(workers=2, backend='thread')"
            ".backend_name == 'thread';"
            "print('ok')"
        )
        env = dict(os.environ, REPRO_BACKEND="process")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.returncode == 0, out.stderr
        assert "ok" in out.stdout

    def test_env_var_with_unknown_backend_fails(self):
        from repro.core.engines import resolve_backend

        assert resolve_backend(None) in BACKENDS
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("quantum")

    def test_env_resolved_serial_coerces_pooled_workers(self, monkeypatch):
        # REPRO_BACKEND=serial must run unmodified callers that pass
        # workers=N with backend=None -- coercing to one worker, not
        # crashing; the workers/serial conflict error is reserved for an
        # *explicit* backend='serial'.
        from repro.core.engines import ParallelEpochExecutor

        monkeypatch.setenv("REPRO_BACKEND", "serial")
        executor = ParallelEpochExecutor(workers=4)
        assert executor.backend_name == "serial"
        assert executor.workers == 1
        with pytest.raises(ValueError, match="serial"):
            ParallelEpochExecutor(workers=4, backend="serial")


class TestExecutorLifecycle:
    """The warm-pool registries must never leak executors: setdefault
    losers are shut down, broken process pools are shut down on
    eviction, and ``shutdown_pools()`` tears every family down."""

    def test_warm_pool_race_shuts_down_losers(self):
        # Hammer _warm_pool from many threads racing on one empty key;
        # exactly one constructed executor may survive in the registry,
        # and every loser must have been shut down (not orphaned with
        # live idle threads).
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.engines.backends import _warm_pool

        n_threads = 16
        rounds = 25
        constructed = []
        lock = threading.Lock()

        def factory():
            pool = ThreadPoolExecutor(max_workers=1)
            with lock:
                constructed.append(pool)
            return pool

        for _ in range(rounds):
            pools = {}
            barrier = threading.Barrier(n_threads)
            winners = []

            def hammer():
                barrier.wait()
                winners.append(_warm_pool(pools, 2, factory))

            threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(pools) == 1
            assert all(w is pools[2] for w in winners), (
                "every racer must receive the one registered pool"
            )
            for pool in constructed:
                if pool is not pools[2]:
                    assert pool._shutdown, "losing executor leaked un-shutdown"
            pools[2].shutdown(wait=True)
            constructed.clear()

    def test_shutdown_pools_empties_every_family(self):
        from repro.core.engines import backends

        # Warm one pool in each family, then tear down.
        backends._shared_thread_pool(2)
        backends.shared_service_pool(2)
        backends._shared_process_pool(2)
        assert backends._THREAD_POOLS and backends._SERVICE_POOLS
        assert backends._PROCESS_POOLS
        count = backends.shutdown_pools(wait=True)
        assert count >= 3
        assert not backends._THREAD_POOLS
        assert not backends._PROCESS_POOLS
        assert not backends._SERVICE_POOLS
        # Teardown is not terminal: the next fetch re-warms on demand.
        pool = backends._shared_thread_pool(2)
        fut = pool.submit(lambda: 41 + 1)
        assert fut.result() == 42
        assert backends.shutdown_pools(wait=True) == 1

    def test_no_live_pool_threads_after_shutdown(self):
        import threading

        from repro.core.engines import backends

        pool = backends.shared_service_pool(3)
        pool.submit(lambda: None).result()  # force a worker to spawn
        assert any(
            t.name.startswith("repro-service") for t in threading.enumerate()
        )
        backends.shutdown_pools(wait=True)
        assert not any(
            t.name.startswith("repro-service") for t in threading.enumerate()
        ), "shutdown_pools(wait=True) must join every pool thread"

    def test_broken_process_pool_eviction_shuts_pool_down(self):
        # A BrokenProcessPool must evict the poisoned executor from the
        # warm registry *and* shut it down -- popping without shutdown
        # leaks its management thread and dead workers.  Simulated with
        # a stub pool so the test is deterministic and fast.
        from concurrent.futures.process import BrokenProcessPool

        import pytest

        from repro.core.engines import backends

        class StubBrokenPool:
            def __init__(self):
                self.shutdown_calls = []

            def submit(self, fn, *args):
                raise BrokenProcessPool("worker died abruptly")

            def shutdown(self, wait=True, cancel_futures=False):
                self.shutdown_calls.append((wait, cancel_futures))

        workers = 7919  # a key no real solve uses
        stub = StubBrokenPool()
        backends._PROCESS_POOLS[workers] = stub
        backend = backends.ProcessBackend(workers)
        backend._prepare = lambda jobs: jobs  # dummy jobs: skip slicing
        try:
            with pytest.raises(BrokenProcessPool):
                backend.run_wave([object(), object()])
            assert workers not in backends._PROCESS_POOLS, (
                "broken pool must be evicted from the warm registry"
            )
            assert stub.shutdown_calls, "evicted broken pool must be shut down"
        finally:
            backends._PROCESS_POOLS.pop(workers, None)
