"""Tests for the line-network helpers (slot/edge conversions)."""
import pytest

from repro.core.demand import WindowDemand
from repro.core.problem import Problem
from repro.lines.line import (
    edge_to_slot,
    instance_mid_slot,
    instance_slots,
    slot_to_edge,
)
from repro.trees.tree import make_line_network


class TestSlotEdgeConversion:
    def test_roundtrip(self):
        for slot in (0, 1, 17):
            assert edge_to_slot(slot_to_edge(3, slot)) == slot

    def test_slot_to_edge_network_id(self):
        assert slot_to_edge(5, 2) == (5, 2, 3)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            slot_to_edge(0, -1)

    def test_non_line_edge_rejected(self):
        with pytest.raises(ValueError):
            edge_to_slot((0, 2, 7))


class TestInstanceSlots:
    def _instance(self, release, processing, n_slots=20):
        problem = Problem(
            networks={0: make_line_network(0, n_slots)},
            demands=[
                WindowDemand(0, release=release, deadline=release + processing - 1,
                             processing=processing, profit=1.0)
            ],
        )
        (d,) = problem.instances
        return d

    def test_slots_inclusive(self):
        d = self._instance(release=4, processing=3)
        assert instance_slots(d) == (4, 6)

    def test_single_slot(self):
        d = self._instance(release=9, processing=1)
        assert instance_slots(d) == (9, 9)
        assert instance_mid_slot(d) == 9

    def test_mid_slot_floor(self):
        d = self._instance(release=2, processing=4)  # slots 2..5
        assert instance_mid_slot(d) == 3

    def test_mid_slot_odd_length(self):
        d = self._instance(release=2, processing=5)  # slots 2..6
        assert instance_mid_slot(d) == 4
