"""TTL and invalidation semantics of the two-tier result cache.

The contract under test: an entry past its TTL deadline -- or dropped
by an explicit ``invalidate()`` call -- is *never served from either
tier*; expiry is driven by an injectable monotonic clock; and bulk
capacity-epoch invalidation drops exactly the stale generation while
unrelated entries stay warm.  A hypothesis sweep drives a random
interleaving of puts, clock advances, epoch bumps and lookups and
asserts the never-serve-stale invariant over every trajectory.
"""
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.canonical import stable_digest
from repro.service.cache import CacheEntry, ResultCache
from repro.service.fingerprint import Fingerprint, SolveKnobs, solve_fingerprint
from repro.workloads import build_workload


def fp(tag: str) -> Fingerprint:
    return Fingerprint(stable_digest(tag))


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def ttl_cache(clock, **kwargs) -> ResultCache:
    kwargs.setdefault("digest_fn", stable_digest)
    return ResultCache(clock=clock, **kwargs)


class TestMemoryTierTTL:
    def test_entry_served_before_deadline_dropped_after(self):
        clock = FakeClock()
        cache = ttl_cache(clock, capacity=4, ttl=10.0)
        cache.put(fp("a"), "A")
        clock.advance(9.999)
        assert cache.get(fp("a")) == "A"
        clock.advance(0.001)  # exactly at the deadline: expired
        assert cache.get(fp("a")) is None
        assert cache.stats.expirations == 1
        assert fp("a") not in cache

    def test_per_entry_ttl_overrides_cache_default(self):
        clock = FakeClock()
        cache = ttl_cache(clock, capacity=4, ttl=10.0)
        cache.put(fp("short"), "S", ttl=1.0)
        cache.put(fp("forever"), "F", ttl=None)  # explicit: never expires
        cache.put(fp("default"), "D")
        clock.advance(5.0)
        assert cache.get(fp("short")) is None
        assert cache.get(fp("default")) == "D"
        clock.advance(1e9)
        assert cache.get(fp("forever")) == "F"

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ttl_cache(clock, capacity=4)
        cache.put(fp("a"), "A")
        clock.advance(1e12)
        assert cache.get(fp("a")) == "A"
        assert cache.stats.expirations == 0

    def test_ttl_validated(self):
        with pytest.raises(ValueError, match="ttl"):
            ttl_cache(FakeClock(), ttl=0)


class TestDiskTierTTL:
    def test_disk_entry_expires_and_unlinks(self, tmp_path):
        clock = FakeClock()
        cache = ttl_cache(clock, capacity=1, disk_dir=str(tmp_path), ttl=10.0)
        cache.put(fp("a"), "A")
        cache.put(fp("b"), "B")  # evicts a from memory; disk copy remains
        clock.advance(11.0)
        assert cache.get(fp("a")) is None
        assert cache.stats.expirations == 1
        assert not cache._path(fp("a").digest).exists(), (
            "an expired disk entry must be unlinked, not kept"
        )

    def test_restart_shares_deadline_through_clock(self, tmp_path):
        # Deadlines are absolute on the injected clock: a second cache
        # constructed over the same directory and clock domain sees the
        # same expiry instant.
        clock = FakeClock()
        first = ttl_cache(clock, capacity=4, disk_dir=str(tmp_path), ttl=10.0)
        first.put(fp("a"), "A")
        second = ttl_cache(clock, capacity=4, disk_dir=str(tmp_path), ttl=10.0)
        clock.advance(5.0)
        assert second.get(fp("a")) == "A"
        clock.advance(6.0)
        third = ttl_cache(clock, capacity=4, disk_dir=str(tmp_path), ttl=10.0)
        assert third.get(fp("a")) is None

    def test_expiry_is_not_an_integrity_failure(self, tmp_path):
        # Aging out is ordinary, even under strict=True: no raise, no
        # verify_failure -- a separate expirations counter.
        clock = FakeClock()
        cache = ttl_cache(
            clock, capacity=1, disk_dir=str(tmp_path), ttl=5.0, strict=True
        )
        cache.put(fp("a"), "A")
        cache.put(fp("b"), "B")
        clock.advance(6.0)
        assert cache.get(fp("a")) is None
        assert cache.stats.verify_failures == 0
        assert cache.stats.expirations == 1

    def test_pre_ttl_entry_counts_as_never_expiring(self, tmp_path):
        # Disk files written before the TTL fields existed unpickle
        # without them; they must load as never-expiring, not crash.
        clock = FakeClock()
        cache = ttl_cache(clock, capacity=4, disk_dir=str(tmp_path), ttl=1.0)
        cache.put(fp("old"), "O")
        path = cache._path(fp("old").digest)
        import pickle

        entry = pickle.loads(path.read_bytes())
        del entry.__dict__["expires_at"]
        del entry.__dict__["epoch"]
        path.write_bytes(pickle.dumps(entry))
        clock.advance(100.0)
        fresh = ttl_cache(clock, capacity=4, disk_dir=str(tmp_path), ttl=1.0)
        assert fresh.get(fp("old")) == "O"


class TestInvalidate:
    def test_by_fingerprint_covers_both_tiers(self, tmp_path):
        cache = ttl_cache(FakeClock(), capacity=4, disk_dir=str(tmp_path))
        cache.put(fp("a"), "A")
        cache.put(fp("b"), "B")
        assert cache.invalidate(fingerprint=fp("a")) == 2  # memory + disk
        assert cache.get(fp("a")) is None
        assert cache.get(fp("b")) == "B"
        assert cache.stats.invalidations == 2

    def test_by_predicate_covers_both_tiers(self, tmp_path):
        cache = ttl_cache(FakeClock(), capacity=1, disk_dir=str(tmp_path))
        cache.put(fp("a"), "stale")
        cache.put(fp("b"), "fresh")  # evicts a to disk-only
        dropped = cache.invalidate(predicate=lambda e: e.value == "stale")
        assert dropped == 1
        assert cache.get(fp("a")) is None
        assert cache.get(fp("b")) == "fresh"

    def test_by_epoch_below_leaves_current_generation_warm(self, tmp_path):
        cache = ttl_cache(FakeClock(), capacity=8, disk_dir=str(tmp_path))
        for i, tag in enumerate(("e0", "e0b", "e1", "e2")):
            cache.put(fp(tag), tag.upper(), epoch=int(tag[1]))
        dropped = cache.invalidate(epoch_below=1)
        assert dropped == 4  # two epoch-0 entries, each in both tiers
        assert cache.get(fp("e0")) is None
        assert cache.get(fp("e0b")) is None
        assert cache.get(fp("e1")) == "E1"
        assert cache.get(fp("e2")) == "E2"
        # Unrelated entries stayed warm in *memory* (tier-1 hits).
        assert cache.stats.hits >= 2

    def test_epoch_less_memory_entry_counts_as_generation_zero(self):
        # The pinned semantics: an entry with no epoch attribute at all
        # (written before the field existed) is generation 0 -- swept by
        # any epoch_below >= 1, untouched by epoch_below=0.  An unknown
        # generation must not outlive a bulk invalidation.
        cache = ttl_cache(FakeClock(), capacity=4)
        cache.put(fp("legacy"), "L", epoch=2)
        cache.put(fp("modern"), "M", epoch=2)
        del cache.peek_entry(fp("legacy")).__dict__["epoch"]
        assert cache.invalidate(epoch_below=0) == 0, (
            "epoch_below=0 names no generation: nothing drops"
        )
        assert cache.get(fp("legacy")) == "L"
        assert cache.invalidate(epoch_below=1) == 1
        assert cache.get(fp("legacy")) is None, (
            "the epoch-less entry is generation 0 and must be swept"
        )
        assert cache.get(fp("modern")) == "M", (
            "the current generation must stay warm"
        )
        assert cache.stats.invalidations == 1

    def test_epoch_less_disk_entry_counts_as_generation_zero(self, tmp_path):
        import pickle

        cache = ttl_cache(FakeClock(), capacity=1, disk_dir=str(tmp_path))
        cache.put(fp("legacy"), "L", epoch=2)
        cache.put(fp("evictor"), "E", epoch=2)  # legacy is now disk-only
        path = cache._path(fp("legacy").digest)
        entry = pickle.loads(path.read_bytes())
        del entry.__dict__["epoch"]  # a pre-epoch pickle
        path.write_bytes(pickle.dumps(entry))
        assert cache.invalidate(epoch_below=0) == 0
        assert cache.invalidate(epoch_below=1) == 1
        assert cache.get(fp("legacy")) is None
        assert not path.exists(), "the swept disk entry must be unlinked"
        assert cache.get(fp("evictor")) == "E"

    def test_exactly_one_selector_required(self):
        cache = ttl_cache(FakeClock(), capacity=4)
        with pytest.raises(ValueError, match="exactly one"):
            cache.invalidate()
        with pytest.raises(ValueError, match="exactly one"):
            cache.invalidate(fingerprint=fp("a"), epoch_below=1)

    def test_missing_fingerprint_is_a_zero_drop(self, tmp_path):
        cache = ttl_cache(FakeClock(), capacity=4, disk_dir=str(tmp_path))
        assert cache.invalidate(fingerprint=fp("ghost")) == 0
        assert cache.stats.invalidations == 0


class TestCapacityEpochKnob:
    def test_epoch_changes_the_fingerprint(self):
        problem = build_workload("bursty-lines", 12, seed=1)
        base = SolveKnobs(mis="greedy", epsilon=0.25)
        bumped = SolveKnobs(mis="greedy", epsilon=0.25, capacity_epoch=1)
        assert (
            solve_fingerprint(problem, base).digest
            != solve_fingerprint(problem, bumped).digest
        ), "a bumped capacity epoch must key differently"
        again = SolveKnobs(mis="greedy", epsilon=0.25, capacity_epoch=1)
        assert (
            solve_fingerprint(problem, bumped).digest
            == solve_fingerprint(problem, again).digest
        )

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="capacity_epoch"):
            SolveKnobs(capacity_epoch=-1).validate()


class TestNeverServesStaleHypothesis:
    """Random trajectories of puts / clock advances / epoch bumps /
    invalidations: a lookup must never return a value whose TTL has
    passed or whose capacity epoch predates the last bulk
    invalidation."""

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("put"),
                    st.integers(min_value=0, max_value=7),   # key
                    st.one_of(
                        st.none(),
                        st.floats(min_value=0.5, max_value=20.0),
                    ),                                        # ttl
                ),
                st.tuples(st.just("advance"),
                          st.floats(min_value=0.1, max_value=30.0)),
                st.tuples(st.just("bump_epoch")),
                st.tuples(st.just("get"),
                          st.integers(min_value=0, max_value=7)),
            ),
            min_size=5,
            max_size=60,
        ),
        use_disk=st.booleans(),
    )
    def test_expiry_never_serves_a_stale_capacity_epoch(
        self, tmp_path_factory, ops, use_disk
    ):
        clock = FakeClock()
        disk = (
            str(tmp_path_factory.mktemp("ttl-hypo")) if use_disk else None
        )
        cache = ttl_cache(clock, capacity=4, disk_dir=disk)
        epoch = 0
        # key -> (value, deadline or None, epoch written under)
        written = {}
        for op in ops:
            if op[0] == "put":
                _, key, ttl = op
                value = (key, epoch, clock.now)
                cache.put(fp(f"k{key}"), value, ttl=ttl, epoch=epoch)
                deadline = None if ttl is None else clock.now + ttl
                written[key] = (value, deadline, epoch)
            elif op[0] == "advance":
                clock.advance(op[1])
            elif op[0] == "bump_epoch":
                epoch += 1
                cache.invalidate(epoch_below=epoch)
                written = {
                    k: v for k, v in written.items() if v[2] >= epoch
                }
            else:
                _, key = op
                served = cache.get(fp(f"k{key}"))
                if served is not None:
                    assert key in written, (
                        f"served a value for k{key} after its epoch was "
                        "invalidated"
                    )
                    value, deadline, written_epoch = written[key]
                    assert served == value
                    assert written_epoch == epoch, (
                        "served a value from a stale capacity epoch"
                    )
                    assert deadline is None or clock.now < deadline, (
                        "served a value past its TTL deadline"
                    )
