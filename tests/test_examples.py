"""Smoke tests: every example script runs to completion."""
import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"
