"""Tests for conflict graphs and MIS oracles."""
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.conflict import build_conflict_graph, is_independent, restrict
from repro.distributed.mis import (
    greedy_mis,
    hash_luby_mis,
    hashed_priority,
    instance_key,
    luby_mis,
    make_mis_oracle,
)
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest
from tests.test_demand import make_instance


class TestConflictGraph:
    def test_matches_pairwise_definition(self):
        problem = random_tree_problem(random_forest(20, 2, seed=1), m=12, seed=2)
        instances = problem.instances
        adj = build_conflict_graph(instances)
        for a in instances:
            for b in instances:
                if a.instance_id == b.instance_id:
                    continue
                expected = a.conflicts_with(b)
                assert (b.instance_id in adj[a.instance_id]) == expected

    def test_same_demand_conflicts(self):
        d1 = make_instance(0, 9, 0, [0, 1])
        d2 = make_instance(1, 9, 1, [5, 6])
        adj = build_conflict_graph([d1, d2])
        assert adj[0] == {1} and adj[1] == {0}

    def test_no_conflicts(self):
        d1 = make_instance(0, 0, 0, [0, 1])
        d2 = make_instance(1, 1, 0, [2, 3])
        adj = build_conflict_graph([d1, d2])
        assert adj[0] == set() and adj[1] == set()

    def test_is_independent(self):
        d1 = make_instance(0, 0, 0, [0, 1, 2])
        d2 = make_instance(1, 1, 0, [1, 2, 3])
        d3 = make_instance(2, 2, 0, [4, 5])
        adj = build_conflict_graph([d1, d2, d3])
        assert is_independent([0, 2], adj)
        assert not is_independent([0, 1], adj)

    def test_restrict(self):
        d1 = make_instance(0, 0, 0, [0, 1, 2])
        d2 = make_instance(1, 1, 0, [1, 2, 3])
        d3 = make_instance(2, 2, 0, [2, 3, 4])
        adj = build_conflict_graph([d1, d2, d3])
        sub = restrict(adj, [0, 2])
        assert set(sub) == {0, 2}
        assert sub[0] == set()  # d1 and d3 do not overlap


def _assert_valid_mis(chosen, candidates, adj):
    ids = {d.instance_id for d in candidates}
    assert chosen <= ids
    assert is_independent(chosen, adj)
    # Maximality: every unchosen candidate conflicts with a chosen one.
    for v in ids - chosen:
        assert adj[v] & chosen, f"{v} could have been added"


def _mis_fixture(seed, n=24, m=16):
    problem = random_tree_problem(random_forest(n, 2, seed=seed), m=m, seed=seed + 1)
    instances = list(problem.instances)
    adj = build_conflict_graph(instances)
    return instances, adj


class TestGreedyMIS:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_and_maximal(self, seed):
        instances, adj = _mis_fixture(seed)
        chosen, rounds = greedy_mis(instances, adj)
        _assert_valid_mis(chosen, instances, adj)
        assert rounds == 1

    def test_deterministic(self):
        instances, adj = _mis_fixture(7)
        a, _ = greedy_mis(instances, adj)
        b, _ = greedy_mis(instances, adj)
        assert a == b


class TestLubyMIS:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_and_maximal(self, seed):
        instances, adj = _mis_fixture(seed)
        chosen, rounds = luby_mis(instances, adj, random.Random(seed))
        _assert_valid_mis(chosen, instances, adj)
        assert rounds >= 2 and rounds % 2 == 0

    def test_reproducible_given_seed(self):
        instances, adj = _mis_fixture(3)
        a, _ = luby_mis(instances, adj, random.Random(42))
        b, _ = luby_mis(instances, adj, random.Random(42))
        assert a == b

    def test_empty_input(self):
        chosen, rounds = luby_mis([], {}, random.Random(0))
        assert chosen == set() and rounds == 0

    def test_singleton(self):
        d = make_instance(0, 0, 0, [0, 1])
        chosen, _ = luby_mis([d], {0: set()}, random.Random(0))
        assert chosen == {0}


class TestHashLubyMIS:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_and_maximal(self, seed):
        instances, adj = _mis_fixture(seed)
        chosen, _ = hash_luby_mis(instances, adj, (1, 1, 1), seed)
        _assert_valid_mis(chosen, instances, adj)

    def test_context_changes_outcome_possible(self):
        # Different contexts give independent priorities; at least the
        # priorities themselves must differ.
        d = make_instance(0, 0, 0, [0, 1])
        p1 = hashed_priority(0, instance_key(d), (1, 1, 1), 1)
        p2 = hashed_priority(0, instance_key(d), (1, 1, 2), 1)
        assert p1 != p2

    def test_priority_deterministic_and_uniform_range(self):
        d = make_instance(0, 0, 0, [0, 1])
        p = hashed_priority(5, instance_key(d), (2, 3, 4), 6)
        assert p == hashed_priority(5, instance_key(d), (2, 3, 4), 6)
        assert 0.0 <= p < 1.0


def _random_conflict_fixture(seed, n_instances=30, n_slots=40):
    """Synthetic random conflict graphs: random intervals on a line
    (overlap conflicts) plus shared demand ids (same-demand conflicts),
    independent of the tree-problem pipeline."""
    rng = random.Random(seed)
    instances = []
    for iid in range(n_instances):
        a = rng.randrange(0, n_slots - 2)
        b = rng.randrange(a + 1, min(n_slots, a + 1 + rng.randint(1, 8)))
        instances.append(
            make_instance(iid, demand_id=iid // 3, network_id=rng.randrange(2),
                          verts=list(range(a, b + 1)))
        )
    return instances, build_conflict_graph(instances)


class TestOraclesOnRandomGraphs:
    """Satellite: maximality of all three oracles on random conflict
    graphs, and hash-Luby reproducibility under (seed, context)."""

    @pytest.mark.parametrize("kind", ["greedy", "luby", "hash"])
    @pytest.mark.parametrize("seed", range(8))
    def test_maximal_independent_on_random_graphs(self, kind, seed):
        instances, adj = _random_conflict_fixture(seed)
        oracle = make_mis_oracle(kind, seed)
        chosen, _ = oracle(instances, adj, (1, 2, 3))
        _assert_valid_mis(chosen, instances, adj)

    @pytest.mark.parametrize("seed", range(4))
    def test_hash_luby_reproducible_same_seed_and_context(self, seed):
        instances, adj = _random_conflict_fixture(seed)
        a, rounds_a = hash_luby_mis(instances, adj, (2, 3, 4), seed)
        b, rounds_b = hash_luby_mis(instances, adj, (2, 3, 4), seed)
        assert a == b and rounds_a == rounds_b
        # Fresh factory-made oracles agree too: no hidden state.
        o1 = make_mis_oracle("hash", seed)
        o2 = make_mis_oracle("hash", seed)
        assert o1(instances, adj, (2, 3, 4))[0] == o2(instances, adj, (2, 3, 4))[0]

    def test_hash_luby_seed_or_context_changes_priorities(self):
        instances, adj = _random_conflict_fixture(5)
        base, _ = hash_luby_mis(instances, adj, (1, 1, 1), seed=0)
        # Other seeds/contexts give valid (possibly different) MIS's.
        for seed, ctx in [(1, (1, 1, 1)), (0, (1, 1, 2)), (0, (9, 9, 9))]:
            other, _ = hash_luby_mis(instances, adj, ctx, seed=seed)
            _assert_valid_mis(other, instances, adj)


class TestOracleFactory:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_mis_oracle("quantum", 0)

    def test_hash_oracle_requires_context(self):
        oracle = make_mis_oracle("hash", 0)
        with pytest.raises(ValueError):
            oracle([], {}, None)

    @pytest.mark.parametrize("kind", ["greedy", "luby", "hash"])
    def test_oracle_outputs_valid_mis(self, kind):
        instances, adj = _mis_fixture(11)
        oracle = make_mis_oracle(kind, 3)
        chosen, rounds = oracle(instances, adj, (1, 1, 1))
        _assert_valid_mis(chosen, instances, adj)
        assert rounds >= 0
