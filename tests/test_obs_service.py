"""Telemetry integration across the serving stack.

The acceptance contract of the observability layer:

* **Status labels** -- ``repro_service_requests_total`` splits by
  metrics status (``cold`` / ``hit`` / ``coalesced`` / ``delta``) and
  problem family (``line`` / ``tree``);
* **Phase coverage** -- a cold solve records every phase of the
  request lifecycle into ``repro_service_phase_seconds``;
* **Digest identity** -- telemetry on, telemetry off, and a direct
  :func:`solve_auto` call all serve the same bits;
* **SLO** -- per-family targets ride the same histograms, attainment
  is reported alongside the snapshot, and ``slo_targets`` without a
  registry is rejected;
* **Wire** -- ``{"op": "metrics"}`` answers with the snapshot, the
  SLO report, and a Prometheus rendering, while ``{"op": "stats"}``
  is unchanged -- and :func:`jsonable` encodes numpy scalars and
  dataclasses as numbers and dicts, not reprs.

No ``pytest-asyncio``: wire tests drive their own loop with
``asyncio.run``.
"""
import asyncio
import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.algorithms import solve_auto
from repro.obs import MetricsRegistry, SLOTracker, default_registry
from repro.obs.metrics import parse_series_key
from repro.obs.trace import PHASES
from repro.service import (
    AsyncSchedulingService,
    SchedulingService,
    SolveKnobs,
    SolveRequest,
    jsonable,
    report_semantic_digest,
)
from repro.workloads import build_trajectory, build_workload

KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)


def make_request(name="bursty-lines", size=14, seed=1):
    return SolveRequest.from_workload(name, size, seed=seed, **KNOBS)


def direct_digest(name="bursty-lines", size=14, seed=1):
    report = solve_auto(
        build_workload(name, size, seed=seed), **{**KNOBS, "seed": seed}
    )
    return report_semantic_digest(report)


def series(snapshot_section, name, **labels):
    """Sum every series of *name* whose labels contain *labels*."""
    total = 0
    found = False
    for key, value in snapshot_section.items():
        base, got = parse_series_key(key)
        if base != name:
            continue
        if any(got.get(k) != v for k, v in labels.items()):
            continue
        found = True
        total += value["count"] if isinstance(value, dict) else value
    return total if found else None


class TestServiceTelemetry:
    def test_request_status_labels(self):
        registry = MetricsRegistry()
        service = SchedulingService(workers=2, metrics=registry)
        req = make_request()
        futures = [service.submit(req) for _ in range(4)]
        for fut in futures:
            fut.result()
        service.solve(req)  # a guaranteed post-resolution hit
        counters = registry.snapshot()["counters"]
        name = "repro_service_requests_total"
        assert series(counters, name, family="line", status="cold") == 1
        hits = series(counters, name, family="line", status="hit") or 0
        joined = series(counters, name, family="line", status="coalesced") or 0
        assert hits + joined == 4, (
            "every duplicate must count as a hit or a coalesced join"
        )
        assert hits >= 1
        assert series(counters, name, status="error") is None

    def test_cold_solve_records_every_phase(self):
        registry = MetricsRegistry()
        service = SchedulingService(workers=2, metrics=registry)
        service.solve(make_request())
        histograms = registry.snapshot()["histograms"]
        for phase in PHASES:
            # `validate` runs before the family is classified, so it is
            # labeled family="unknown"; every later phase carries the
            # real family.
            labels = {} if phase == "validate" else {"family": "line"}
            count = series(
                histograms, "repro_service_phase_seconds",
                phase=phase, **labels,
            )
            assert count and count >= 1, f"phase {phase!r} not recorded"
        assert series(
            histograms, "repro_service_request_seconds",
            family="line", status="cold",
        ) == 1

    def test_family_label_splits_line_and_tree(self):
        registry = MetricsRegistry()
        service = SchedulingService(workers=2, metrics=registry)
        service.solve(make_request("bursty-lines", 14))
        service.solve(make_request("multi-tenant-forest", 16))
        counters = registry.snapshot()["counters"]
        name = "repro_service_requests_total"
        assert series(counters, name, family="line", status="cold") == 1
        assert series(counters, name, family="tree", status="cold") == 1

    def test_solve_outcome_labels_cold_vs_delta(self):
        registry = MetricsRegistry()
        service = SchedulingService(
            workers=2, keep_artifacts=True, metrics=registry
        )
        trajectory = build_trajectory("tenant-churn", 16, seed=1, steps=3)
        knobs = SolveKnobs(**KNOBS)
        service.solve(SolveRequest(problem=trajectory[0].problem, knobs=knobs))
        for step in trajectory[1:]:
            service.solve_delta(
                SolveRequest(problem=step.problem, knobs=knobs)
            )
        snap = registry.snapshot()
        solve_name = "repro_service_solve_seconds"
        assert series(snap["histograms"], solve_name, outcome="cold") >= 1
        assert series(snap["histograms"], solve_name, outcome="delta") >= 1, (
            "warm delta re-solves must be attributable in the labels"
        )
        # The live DeltaStats fold into summable counters.
        assert series(
            snap["counters"], "repro_delta_requests_total", outcome="warm"
        ) >= 1

    def test_metrics_true_uses_the_process_default_registry(self):
        service = SchedulingService(workers=2, metrics=True)
        assert service.metrics is default_registry()
        assert service.metrics_registry() is default_registry()

    def test_metrics_off_by_default(self):
        service = SchedulingService(workers=2)
        assert service.metrics is None
        # The metrics op still answers: executor/pool gauges land in
        # the process default regardless.
        assert service.metrics_registry() is default_registry()
        assert service.metrics_snapshot()["slo"] is None


class TestDigestIdentity:
    def test_telemetry_never_changes_served_bits(self):
        req = make_request()
        with_metrics = SchedulingService(
            workers=2, metrics=MetricsRegistry(),
            slo_targets={"line": 5.0, "tree": 5.0},
        )
        without = SchedulingService(workers=2)
        expected = direct_digest()
        for service in (with_metrics, without):
            cold = service.solve(req)
            warm = service.solve(req)
            assert report_semantic_digest(cold.report) == expected
            assert report_semantic_digest(warm.report) == expected


class TestSLO:
    def test_slo_targets_require_a_registry(self):
        with pytest.raises(ValueError, match="metrics"):
            SchedulingService(workers=2, slo_targets={"line": 1.0})

    def test_generous_targets_are_met(self):
        service = SchedulingService(
            workers=2, metrics=MetricsRegistry(),
            slo_targets={"line": 60.0, "tree": 60.0},
        )
        service.solve(make_request())
        report = service.metrics_snapshot()["slo"]
        line = report["line"]
        assert line["target"] == 60.0
        assert line["observed"] == 1
        assert line["over_budget"] == 0
        assert line["met"] is True
        assert 0 < line["measured"] <= 60.0

    def test_impossible_target_counts_over_budget(self):
        service = SchedulingService(
            workers=2, metrics=MetricsRegistry(),
            slo_targets={"line": 1e-9},
        )
        service.solve(make_request())
        report = service.metrics_snapshot()["slo"]
        assert report["line"]["over_budget"] == 1
        assert report["line"]["met"] is False

    def test_tracker_standalone(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(registry, targets={"line": 0.5})
        assert tracker.observe("line", 0.1) is False
        assert tracker.observe("line", 2.0) is True
        report = tracker.report()
        assert report["line"]["observed"] == 2
        assert report["line"]["over_budget"] == 1


class TestJsonable:
    """Satellite: numpy scalars and dataclasses must encode as
    numbers and dicts on the wire, not reprs."""

    def test_numpy_scalars_become_numbers(self):
        assert jsonable(np.int64(7)) == 7
        assert type(jsonable(np.int64(7))) is int
        assert jsonable(np.float64(2.5)) == 2.5
        assert type(jsonable(np.float64(2.5))) is float
        assert jsonable(np.bool_(True)) is True

    def test_dataclasses_become_dicts(self):
        @dataclass
        class Inner:
            hits: "np.int64"

        @dataclass
        class Outer:
            name: str
            inner: Inner

        encoded = jsonable(Outer(name="x", inner=Inner(hits=np.int64(3))))
        assert encoded == {"name": "x", "inner": {"hits": 3}}
        json.dumps(encoded)  # round-trips without a custom encoder

    def test_stats_wire_op_round_trips_numpy_counters(self):
        # The regression: a layer growing a numpy-typed stat must reach
        # the client as a JSON number, not its repr.  Real socket --
        # the bug lives in the wire encoding path.
        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            front.service._delta_totals["np_int"] = np.int64(41)
            front.service._delta_totals["np_float"] = np.float64(0.25)
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"id": 1, "op": "stats"}).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return response

        response = asyncio.run(run())
        assert response["ok"]
        totals = response["stats"]["service"]["delta_totals"]
        assert totals["np_int"] == 41 and isinstance(totals["np_int"], int)
        assert totals["np_float"] == 0.25


class TestMetricsWireOp:
    def test_metrics_op_answers_snapshot_slo_and_text(self):
        async def run():
            front = AsyncSchedulingService(
                capacity=8, workers=2, metrics=MetricsRegistry(),
                slo_targets={"line": 60.0, "tree": 60.0},
            )
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            for i in range(2):
                wire = {"id": i, "workload": "bursty-lines", "size": 14,
                        "seed": 1, "knobs": KNOBS}
                writer.write(json.dumps(wire).encode() + b"\n")
                await writer.drain()
                json.loads(await reader.readline())
            writer.write(json.dumps({"id": 9, "op": "metrics"}).encode() + b"\n")
            await writer.drain()
            metrics = json.loads(await reader.readline())
            writer.write(json.dumps({"id": 10, "op": "stats"}).encode() + b"\n")
            await writer.drain()
            stats = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return metrics, stats

        metrics, stats = asyncio.run(run())
        assert metrics["ok"] and metrics["id"] == 9
        snap = metrics["metrics"]
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert series(
            snap["counters"], "repro_service_requests_total", family="line"
        ) == 2
        # Admission instruments ride the same registry.
        assert series(
            snap["histograms"], "repro_admission_wait_seconds"
        ) == 2
        assert series(snap["gauges"], "repro_admission_queue_depth") == 0
        assert metrics["slo"]["line"]["met"] is True
        assert "# TYPE repro_service_request_seconds histogram" in metrics["text"]
        assert "repro_service_request_seconds_bucket" in metrics["text"]
        # The stats op is unchanged alongside.
        assert stats["ok"] and "service" in stats["stats"]

    def test_metrics_op_answers_when_telemetry_is_off(self):
        async def run():
            front = AsyncSchedulingService(capacity=8, workers=2)
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"id": 1, "op": "metrics"}).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return response

        response = asyncio.run(run())
        assert response["ok"]
        assert response["slo"] is None
        assert set(response["metrics"]) == {"counters", "gauges", "histograms"}
