"""Composite property-based tests: framework invariants on random inputs.

These are the strongest correctness checks in the suite: for arbitrary
generated problems, every run of every algorithm must produce a feasible
solution whose profit is within the guarantee of the LP bound, with a
valid scaled-dual certificate and an interference-clean raise log.
"""
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.arbitrary_trees import solve_arbitrary_trees
from repro.algorithms.sequential import solve_sequential
from repro.algorithms.unit_lines import solve_unit_lines
from repro.algorithms.unit_trees import solve_unit_trees
from repro.core.interference import check_interference
from repro.core.lp import check_scaled_dual_feasible, lp_upper_bound
from repro.workloads import random_line_problem, random_tree_problem
from repro.workloads.trees import random_forest

COMMON = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tree_problems(draw, height_profile="unit"):
    n = draw(st.integers(min_value=4, max_value=40))
    r = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    return random_tree_problem(
        random_forest(n, r, seed=seed),
        m=m,
        seed=seed + 1,
        height_profile=height_profile,
        hmin=0.15,
        pmax_over_pmin=draw(st.sampled_from([1.0, 5.0, 50.0])),
    )


@st.composite
def line_problems(draw):
    n_slots = draw(st.integers(min_value=5, max_value=40))
    m = draw(st.integers(min_value=1, max_value=15))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    return random_line_problem(
        n_slots,
        m,
        r=draw(st.integers(min_value=1, max_value=2)),
        seed=seed,
        window_slack=draw(st.integers(min_value=0, max_value=4)),
    )


class TestUnitTreesInvariants:
    @given(tree_problems())
    @settings(**COMMON)
    def test_feasible_certified_and_within_guarantee(self, problem):
        report = solve_unit_trees(problem, epsilon=0.2, mis="greedy")
        report.solution.verify()
        result = report.result
        check_scaled_dual_feasible(result.dual, problem.instances, result.slackness)
        check_interference(result.events)
        lp = lp_upper_bound(problem)
        assert report.profit <= lp + 1e-6
        assert lp <= report.guarantee * report.profit + 1e-6
        assert report.certified_upper_bound >= lp - 1e-6 or True  # cert >= OPT, not LP
        assert report.certified_upper_bound >= report.profit - 1e-9


class TestArbitraryTreesInvariants:
    @given(tree_problems(height_profile="uniform"))
    @settings(**COMMON)
    def test_heights_respected_and_guarantee(self, problem):
        report = solve_arbitrary_trees(problem, epsilon=0.2, mis="greedy")
        report.solution.verify()
        lp = lp_upper_bound(problem)
        assert lp <= report.guarantee * report.profit + 1e-6


class TestLinesInvariants:
    @given(line_problems())
    @settings(**COMMON)
    def test_windows_and_guarantee(self, problem):
        report = solve_unit_lines(problem, epsilon=0.2, mis="greedy")
        report.solution.verify()
        for d in report.solution.selected:
            a = problem.demand_by_id(d.demand_id)
            assert a.release <= min(d.u, d.v)
            assert max(d.u, d.v) - 1 <= a.deadline
        lp = lp_upper_bound(problem)
        assert lp <= report.guarantee * report.profit + 1e-6


class TestSequentialInvariants:
    @given(tree_problems())
    @settings(**COMMON)
    def test_three_approx_always(self, problem):
        report = solve_sequential(problem)
        report.solution.verify()
        lp = lp_upper_bound(problem)
        assert lp <= 3.0 * report.profit + 1e-6
        check_interference(report.result.events)
