"""Tests for solutions and the capacity ledger."""
import pytest

from repro.core.solution import (
    CapacityLedger,
    InfeasibleSolutionError,
    Solution,
    combine_per_network,
)
from tests.test_demand import make_instance


class TestCapacityLedger:
    def test_fits_and_add(self):
        ledger = CapacityLedger()
        d = make_instance(0, 0, 0, [0, 1, 2], height=0.6)
        assert ledger.fits(d)
        ledger.add(d)
        assert ledger.load((0, 0, 1)) == pytest.approx(0.6)

    def test_rejects_same_demand_twice(self):
        ledger = CapacityLedger()
        ledger.add(make_instance(0, 0, 0, [0, 1]))
        assert not ledger.fits(make_instance(1, 0, 0, [5, 6]))

    def test_rejects_capacity_violation(self):
        ledger = CapacityLedger()
        ledger.add(make_instance(0, 0, 0, [0, 1, 2], height=0.6))
        assert not ledger.fits(make_instance(1, 1, 0, [1, 2, 3], height=0.5))
        assert ledger.fits(make_instance(2, 2, 0, [1, 2, 3], height=0.4))

    def test_unit_heights_mean_edge_disjoint(self):
        ledger = CapacityLedger()
        ledger.add(make_instance(0, 0, 0, [0, 1, 2]))
        assert not ledger.fits(make_instance(1, 1, 0, [1, 2]))
        assert ledger.fits(make_instance(2, 2, 0, [2, 3]))

    def test_add_raises_when_unfit(self):
        ledger = CapacityLedger()
        ledger.add(make_instance(0, 0, 0, [0, 1]))
        with pytest.raises(InfeasibleSolutionError):
            ledger.add(make_instance(1, 1, 0, [0, 1]))

    def test_remove_undoes(self):
        ledger = CapacityLedger()
        d = make_instance(0, 0, 0, [0, 1], height=1.0)
        ledger.add(d)
        ledger.remove(d)
        assert ledger.fits(d)
        assert ledger.load((0, 0, 1)) == 0.0
        assert not ledger.demand_used(0)

    def test_remove_unknown_raises(self):
        ledger = CapacityLedger()
        with pytest.raises(KeyError):
            ledger.remove(make_instance(0, 0, 0, [0, 1]))

    def test_networks_do_not_interact(self):
        ledger = CapacityLedger()
        ledger.add(make_instance(0, 0, 0, [0, 1]))
        assert ledger.fits(make_instance(1, 1, 1, [0, 1]))


class TestSolution:
    def test_profit(self):
        s = Solution.from_instances(
            [
                make_instance(0, 0, 0, [0, 1], profit=2.0),
                make_instance(1, 1, 0, [2, 3], profit=3.0),
            ]
        )
        assert s.profit == 5.0
        assert len(s) == 2
        assert s.demand_ids == (0, 1)

    def test_verify_passes(self):
        s = Solution.from_instances([make_instance(0, 0, 0, [0, 1])])
        s.verify()
        assert s.is_feasible()

    def test_verify_catches_overlap(self):
        s = Solution.from_instances(
            [
                make_instance(0, 0, 0, [0, 1, 2]),
                make_instance(1, 1, 0, [1, 2, 3]),
            ]
        )
        assert not s.is_feasible()

    def test_verify_catches_duplicate_demand(self):
        s = Solution.from_instances(
            [
                make_instance(0, 5, 0, [0, 1]),
                make_instance(1, 5, 0, [3, 4]),
            ]
        )
        with pytest.raises(InfeasibleSolutionError):
            s.verify()

    def test_restricted_to_network(self):
        s = Solution.from_instances(
            [
                make_instance(0, 0, 0, [0, 1], profit=1.0),
                make_instance(1, 1, 1, [0, 1], profit=2.0),
            ]
        )
        assert s.restricted_to_network(1).profit == 2.0

    def test_deterministic_ordering(self):
        a = make_instance(4, 0, 0, [0, 1])
        b = make_instance(2, 1, 0, [2, 3])
        s = Solution.from_instances([a, b])
        assert [d.instance_id for d in s.selected] == [2, 4]


class TestCombinePerNetwork:
    def test_keeps_richer_side_per_network(self):
        first = Solution.from_instances(
            [
                make_instance(0, 0, 0, [0, 1], profit=5.0),
                make_instance(1, 1, 1, [0, 1], profit=1.0),
            ]
        )
        second = Solution.from_instances(
            [
                make_instance(2, 2, 0, [0, 1], profit=2.0),
                make_instance(3, 3, 1, [0, 1], profit=4.0),
            ]
        )
        combined = combine_per_network(first, second, [0, 1])
        assert combined.profit == 9.0
        assert combined.demand_ids == (0, 3)

    def test_empty_network_sides(self):
        first = Solution.from_instances([make_instance(0, 0, 0, [0, 1], profit=1.0)])
        second = Solution.from_instances([])
        combined = combine_per_network(first, second, [0, 1])
        assert combined.profit == 1.0
