"""Integration suite for the scheduling service.

The acceptance contract of the service layer:

* **Bit-identity** -- served results equal direct
  :func:`repro.algorithms.solve_auto` calls
  (``TwoPhaseResult.semantic_tuple()`` through the report digest) for
  every engine x backend combination, cold and cached;
* **Keying** -- resubmission and isomorphic relabelings hit the cache;
  different knobs do not;
* **Coalescing** -- duplicate in-flight requests share one future and
  one solve;
* **Attribution** -- a failed entry of a batch raises
  :class:`ServiceError` naming that request's label and fingerprint;
* **Persistence** -- a service restarted over the same disk tier
  serves without re-solving.
"""
import random
import threading
from dataclasses import replace

import pytest

from repro.algorithms import solve_auto
from repro.core.engines import BACKENDS
from repro.core.problem import Problem
from repro.service import (
    SchedulingService,
    ServiceError,
    SolveKnobs,
    SolveRequest,
    report_semantic_digest,
)
from repro.trees.tree import TreeNetwork
from repro.workloads import build_workload

#: One tree family and one line family keep the sweep CI-sized while
#: crossing the solve_auto dispatch both ways.
SWEEP = (("multi-tenant-forest", 16), ("bursty-lines", 14))
SEED = 4
EPSILON = 0.3


def make_request(name, size, **knob_kwargs):
    knob_kwargs.setdefault("epsilon", EPSILON)
    knob_kwargs.setdefault("mis", "greedy")
    return SolveRequest.from_workload(name, size, seed=SEED, **knob_kwargs)


def direct_digest(name, size, **knob_kwargs):
    knobs = SolveKnobs(
        epsilon=knob_kwargs.pop("epsilon", EPSILON),
        mis=knob_kwargs.pop("mis", "greedy"),
        seed=knob_kwargs.pop("seed", SEED),
        **knob_kwargs,
    )
    report = solve_auto(
        build_workload(name, size, seed=SEED),
        epsilon=knobs.epsilon,
        mis=knobs.mis,
        seed=knobs.seed,
        decomposition=knobs.decomposition,
        engine=knobs.engine,
        workers=knobs.workers,
        backend=knobs.backend,
        plan_granularity=knobs.plan_granularity,
    )
    return report_semantic_digest(report)


class TestBitIdentity:
    """Service == direct library call, cold and cached, every config."""

    @pytest.mark.parametrize("name,size", SWEEP)
    @pytest.mark.parametrize("engine", ("reference", "incremental"))
    def test_serial_engines(self, name, size, engine):
        service = SchedulingService(workers=2)
        request = make_request(name, size, engine=engine)
        cold = service.solve(request)
        cached = service.solve(request)
        assert cold.status == "miss" and cached.status == "hit"
        expected = direct_digest(name, size, engine=engine)
        assert report_semantic_digest(cold.report) == expected
        assert report_semantic_digest(cached.report) == expected
        assert service.stats["solves"] == 1

    @pytest.mark.parametrize("name,size", SWEEP)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_backends(self, name, size, backend):
        service = SchedulingService(workers=2)
        workers = 1 if backend == "serial" else 2
        request = make_request(
            name, size, engine="parallel", workers=workers, backend=backend
        )
        cold = service.solve(request)
        cached = service.solve(request)
        expected = direct_digest(
            name, size, engine="parallel", workers=workers, backend=backend
        )
        assert report_semantic_digest(cold.report) == expected
        assert report_semantic_digest(cached.report) == expected
        # Cross-engine bit-identity carries through the service too.
        assert expected == direct_digest(name, size, engine="incremental")

    def test_luby_oracle_round_trips(self):
        service = SchedulingService(workers=2)
        request = make_request("multi-tenant-forest", 16, mis="luby")
        cold = service.solve(request)
        assert report_semantic_digest(cold.report) == direct_digest(
            "multi-tenant-forest", 16, mis="luby"
        )


class TestKeying:
    def test_relabeled_resubmission_hits(self):
        problem = build_workload("multi-tenant-forest", 16, seed=SEED)
        knobs = SolveKnobs(epsilon=EPSILON, mis="greedy", seed=SEED)
        service = SchedulingService(workers=2)
        first = service.solve(SolveRequest(problem=problem, knobs=knobs))
        assert first.status == "miss"
        rng = random.Random(7)
        nmap = {nid: nid + 50 for nid in problem.networks}
        dmap = {a.demand_id: a.demand_id + 900 for a in problem.demands}
        networks = {
            nmap[nid]: TreeNetwork(
                nmap[nid], [(u, v) for (_n, u, v) in net.edges()]
            )
            for nid, net in problem.networks.items()
        }
        demands = [
            replace(a, demand_id=dmap[a.demand_id]) for a in problem.demands
        ]
        rng.shuffle(demands)
        access = {
            dmap[d]: tuple(sorted(nmap[n] for n in nets))
            for d, nets in problem.access.items()
        }
        relabeled = SolveRequest(
            problem=Problem(networks, demands, access), knobs=knobs
        )
        second = service.solve(relabeled)
        assert second.status == "hit"
        assert service.stats["solves"] == 1

    def test_different_knobs_do_not_alias(self):
        service = SchedulingService(workers=2)
        a = service.solve(
            SolveRequest.from_workload(
                "bursty-lines", 14, seed=SEED,
                knobs=SolveKnobs(epsilon=EPSILON, mis="greedy", seed=0),
            )
        )
        b = service.solve(
            SolveRequest.from_workload(
                "bursty-lines", 14, seed=SEED,
                knobs=SolveKnobs(epsilon=EPSILON, mis="greedy", seed=1),
            )
        )
        assert a.fingerprint != b.fingerprint
        assert b.status == "miss"
        assert service.stats["solves"] == 2

    def test_from_workload_rejects_mixed_knob_forms(self):
        with pytest.raises(ValueError, match="not both"):
            SolveRequest.from_workload(
                "bursty-lines", 14, knobs=SolveKnobs(), mis="greedy"
            )

    def test_submit_problem_uses_default_knobs(self):
        service = SchedulingService(
            workers=2,
            default_knobs=SolveKnobs(epsilon=EPSILON, mis="greedy", seed=SEED),
        )
        problem = build_workload("bursty-lines", 14, seed=SEED)
        result = service.submit_problem(problem, label="adhoc").result()
        assert result.label == "adhoc"
        assert report_semantic_digest(result.report) == direct_digest(
            "bursty-lines", 14
        )


class TestCoalescing:
    def test_inflight_duplicates_share_one_solve(self, monkeypatch):
        import repro.service.server as server_mod

        gate = threading.Event()
        release = threading.Event()
        real = server_mod.solve_auto
        calls = []

        def gated(problem, **kwargs):
            calls.append(1)
            gate.set()
            assert release.wait(10), "test gate never released"
            return real(problem, **kwargs)

        monkeypatch.setattr(server_mod, "solve_auto", gated)
        service = SchedulingService(workers=2)
        request = make_request("bursty-lines", 14)
        first = service.submit(request)
        assert gate.wait(10), "solve never started"
        second = service.submit(request)
        third = service.submit(
            SolveRequest(
                problem=request.problem, knobs=request.knobs, label="mine"
            )
        )
        release.set()
        results = [f.result(timeout=30) for f in (first, second, third)]
        assert len(calls) == 1
        assert service.stats["coalesced"] == 2
        assert service.stats["solves"] == 1
        assert {r.status for r in results} == {"miss"}
        assert report_semantic_digest(results[1].report) == (
            report_semantic_digest(results[0].report)
        )
        # Coalesced callers keep their own identity on the shared solve.
        assert results[2].label == "mine"
        assert results[2].fingerprint == results[0].fingerprint

    def test_batch_coalesces_and_preserves_order(self):
        service = SchedulingService(workers=2)
        reqs = [
            make_request("bursty-lines", 14),
            make_request("multi-tenant-forest", 16),
            make_request("bursty-lines", 14),
        ]
        results = service.solve_batch(reqs)
        assert [r.label for r in results] == [r.label for r in reqs]
        assert service.stats["solves"] == 2
        assert report_semantic_digest(results[0].report) == (
            report_semantic_digest(results[2].report)
        )


class TestErrorAttribution:
    def test_failure_names_label_and_fingerprint(self):
        service = SchedulingService(workers=2)
        request = make_request("bursty-lines", 14, mis="nonsense-oracle")
        fp = request.fingerprint()
        with pytest.raises(ServiceError, match="bursty-lines@14"):
            service.solve(request)
        with pytest.raises(ServiceError, match=fp.short):
            service.solve(request)

    def test_batch_failure_is_attributable(self):
        service = SchedulingService(workers=2)
        good = make_request("bursty-lines", 14)
        bad = make_request("multi-tenant-forest", 16, mis="nonsense-oracle")
        with pytest.raises(ServiceError) as err:
            service.solve_batch([good, bad, good])
        assert "multi-tenant-forest@16" in str(err.value)
        assert bad.fingerprint().short in str(err.value)
        assert "bursty-lines" not in str(err.value)

    def test_invalid_knob_combo_rejected_before_the_cache(self):
        # engine='incremental' + backend='process' normalizes to the
        # same cache key as the valid backend=None request; it must be
        # rejected deterministically, never served from that entry.
        service = SchedulingService(workers=2)
        valid = make_request("bursty-lines", 14, engine="incremental")
        service.solve(valid)  # primes the cache under the shared key
        invalid = SolveRequest(
            problem=valid.problem,
            knobs=replace(valid.knobs, backend="process"),
            label="bad-combo",
        )
        with pytest.raises(ServiceError, match="bad-combo.*applies only"):
            service.solve(invalid)
        assert service.stats["solves"] == 1

    def test_failure_keeps_cause_chain(self):
        service = SchedulingService(workers=2)
        request = make_request("bursty-lines", 14, mis="nonsense-oracle")
        with pytest.raises(ServiceError) as err:
            service.solve(request)
        assert err.value.__cause__ is not None

    def test_failed_fingerprint_can_be_retried(self, monkeypatch):
        import repro.service.server as server_mod

        real = server_mod.solve_auto
        boom = {"armed": True}

        def flaky(problem, **kwargs):
            if boom.pop("armed", False):
                raise RuntimeError("transient failure")
            return real(problem, **kwargs)

        monkeypatch.setattr(server_mod, "solve_auto", flaky)
        service = SchedulingService(workers=2)
        request = make_request("bursty-lines", 14)
        with pytest.raises(ServiceError, match="transient"):
            service.solve(request)
        result = service.solve(request)  # in-flight slot was released
        assert result.status == "miss"


class TestPersistence:
    def test_restart_serves_from_disk(self, tmp_path):
        request = make_request("multi-tenant-forest", 16)
        first = SchedulingService(workers=2, disk_dir=str(tmp_path))
        cold = first.solve(request)
        second = SchedulingService(workers=2, disk_dir=str(tmp_path))
        warm = second.solve(request)
        assert warm.status == "hit"
        assert second.stats["solves"] == 0
        assert second.stats["cache"]["disk_hits"] == 1
        assert report_semantic_digest(warm.report) == (
            report_semantic_digest(cold.report)
        )

    def test_strict_disk_failure_flows_through_the_future(self, tmp_path):
        # A strict-mode integrity failure must resolve the registered
        # in-flight future (coalesced duplicates are waiting on it),
        # wrapped as an attributable ServiceError -- not escape raw in
        # the probing thread while the future hangs.
        request = make_request("bursty-lines", 14)
        primer = SchedulingService(workers=2, disk_dir=str(tmp_path))
        primer.solve(request)
        primer.cache._path(request.fingerprint().digest).write_bytes(b"junk")
        strict = SchedulingService(
            workers=2, disk_dir=str(tmp_path), strict_cache=True
        )
        fut = strict.submit(request)
        with pytest.raises(ServiceError, match=request.fingerprint().short):
            fut.result(timeout=30)
        assert strict.stats["inflight"] == 0

    def test_disk_write_failure_degrades_not_fails(self, tmp_path):
        # An unwritable tier-2 (here: the configured dir path is an
        # existing regular file, so mkdir fails) must not fail the
        # request -- the solve succeeded and stays served from memory.
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        service = SchedulingService(workers=2, disk_dir=str(blocked))
        request = make_request("bursty-lines", 14)
        cold = service.solve(request)  # the solve itself succeeded
        assert cold.status == "miss"
        assert service.stats["cache"]["disk_write_failures"] == 1
        warm = service.solve(request)  # served from the memory tier
        assert warm.status == "hit"
        assert service.stats["solves"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            SchedulingService(workers=0)


class TestOptionalLabels:
    def test_unlabeled_request_serves_with_none_label(self):
        # SolveRequest.label and ServiceResult.label are Optional[str]:
        # an unlabeled request is a first-class citizen, carried as
        # None end to end (not coerced to "").
        service = SchedulingService(workers=2)
        request = SolveRequest(
            problem=build_workload("bursty-lines", 14, seed=1),
            knobs=SolveKnobs(mis="greedy", epsilon=0.25),
        )
        assert request.label is None
        result = service.solve(request)
        assert result.label is None
        again = service.solve(request)  # hit path preserves optionality
        assert again.label is None

    def test_unlabeled_failure_renders_as_unlabeled(self):
        service = SchedulingService(workers=2)
        request = SolveRequest(
            problem=build_workload("bursty-lines", 14, seed=1),
            knobs=SolveKnobs(mis="nonsense-oracle"),
        )
        with pytest.raises(ServiceError, match="<unlabeled>"):
            service.solve(request)


class TestServiceTTLAndInvalidation:
    def test_expired_entry_resolves_fresh_not_stale(self, tmp_path):
        clock_now = [1000.0]
        service = SchedulingService(
            workers=2, disk_dir=str(tmp_path), ttl=30.0,
            clock=lambda: clock_now[0],
        )
        request = make_request("bursty-lines", 14)
        first = service.solve(request)
        assert first.status == "miss"
        assert service.solve(request).status == "hit"
        clock_now[0] += 31.0  # past the deadline: both tiers expire
        refreshed = service.solve(request)
        assert refreshed.status == "miss"
        assert service.stats["solves"] == 2
        assert service.cache.stats.expirations >= 1
        assert report_semantic_digest(refreshed.report) == (
            report_semantic_digest(first.report)
        ), "a re-solve of an unchanged problem must reproduce the result"

    def test_capacity_epoch_bump_misses_and_bulk_invalidates(self, tmp_path):
        service = SchedulingService(workers=2, disk_dir=str(tmp_path))
        old = make_request("bursty-lines", 14, capacity_epoch=0)
        unrelated = make_request("multi-tenant-forest", 16, capacity_epoch=1)
        assert service.solve(old).status == "miss"
        assert service.solve(unrelated).status == "miss"
        # The bumped epoch keys differently: never served from epoch 0.
        bumped = SolveRequest(
            problem=old.problem,
            knobs=replace(old.knobs, capacity_epoch=1),
            label="epoch-1",
        )
        assert bumped.fingerprint().digest != old.fingerprint().digest
        assert service.solve(bumped).status == "miss"
        # Bulk-dropping the stale generation leaves current-epoch
        # entries warm in both tiers.
        dropped = service.invalidate(epoch_below=1)
        assert dropped == 2  # old entry, memory + disk
        assert service.solve(unrelated).status == "hit"
        assert service.solve(bumped).status == "hit"
        assert service.solve(old).status == "miss"  # re-solves from scratch
