"""Structural tests of the columnar instance layout.

The equivalence suite pins the vectorized engine's *outputs* against
the incremental engine; this suite pins the encoding itself.  On
arbitrary seeded registry workloads, every :class:`ColumnarLayout`
block must decode back to exactly the instances it was built from --
rows in ascending instance id, path-edge CSR segments in each
instance's own ``path_edges`` iteration order (the order the LHS
accumulates beta in), critical-edge segments equal to the layout's pi
tuples, and conflict buckets that are precisely the edge and demand
cliques of the epoch's conflict graph.  The per-epoch builder and the
shared-vocabulary phase builder must agree block-for-block (only the
column numbering may differ), blocks must survive pickling bitwise
(what the process backend ships inside ``EpochJob``), and a
*subclassed* raise rule must drop the kernel to shadow mode and still
match the incremental engine.
"""
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import line_layouts, tree_layouts
from repro.core.dual import HeightRaise, UnitRaise
from repro.core.engines.artifacts import group_members
from repro.core.engines.columnar import build_columnar, build_columnar_epochs
from repro.core.framework import (
    geometric_thresholds,
    narrow_xi,
    run_first_phase,
    unit_xi,
)
from repro.distributed.mis import make_mis_oracle
from repro.workloads import build_workload, get_workload

COMMON = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: One tree family and one line family per height regime.
FAMILIES = (
    "powerlaw-trees",
    "multi-tenant-forest",
    "bursty-lines",
    "wide-vod-lines",
)

workload_cases = st.tuples(
    st.sampled_from(FAMILIES),
    st.integers(min_value=4, max_value=40),
    st.integers(min_value=0, max_value=10_000),
)


def setup_workload(name, size, seed):
    """Build (problem, layout, raise rule, thresholds) for a workload."""
    spec = get_workload(name)
    problem = build_workload(name, size, seed=seed)
    if spec.kind == "tree":
        layout, _ = tree_layouts(problem, "ideal")
        rule = UnitRaise()
        xi = unit_xi(max(layout.critical_set_size, 6))
    else:
        layout = line_layouts(problem)
        if spec.heights == "narrow":
            rule = HeightRaise()
            xi = narrow_xi(max(layout.critical_set_size, 3), problem.hmin)
        else:
            rule = UnitRaise()
            xi = unit_xi(max(layout.critical_set_size, 3))
    return problem, layout, rule, geometric_thresholds(xi, 0.3)


def fingerprint(artifacts):
    """Everything two engines must agree on, bit-for-bit."""
    dual, stack, events, counters = artifacts
    return (
        tuple(
            (e.order, e.instance.instance_id, e.delta, e.critical_edges, e.step_tuple)
            for e in events
        ),
        tuple(dual.alpha.items()),
        tuple(dual.beta.items()),
        tuple(tuple(d.instance_id for d in batch) for batch in stack),
        (counters.epochs, counters.stages, counters.steps, counters.raises),
    )


class TestRoundTrip:
    @given(workload_cases)
    @settings(**COMMON)
    def test_blocks_decode_back_to_the_instances(self, case):
        name, size, seed = case
        problem, layout, rule, _ = setup_workload(name, size, seed)
        blocks, n_edges, n_demands = build_columnar_epochs(
            problem.instances, layout, rule
        )
        seen = []
        for epoch, block in blocks.items():
            assert block.epoch == epoch
            assert block.edge_keys[0] is None
            assert block.n_edges == n_edges
            ids = [d.instance_id for d in block.instances]
            assert ids == sorted(ids), "rows must be ascending instance id"
            assert block.ids.tolist() == ids
            for row, inst in enumerate(block.instances):
                assert layout.group_of[inst.instance_id] == epoch
                lo, hi = int(block.path_indptr[row]), int(block.path_indptr[row + 1])
                cols = block.path_cols[lo:hi].tolist()
                assert 0 not in cols, "column 0 is the padding sentinel"
                assert [block.edge_keys[c] for c in cols] == list(inst.path_edges)
                assert int(block.path_len[row]) == len(inst.path_edges)
                qlo, qhi = int(block.pi_indptr[row]), int(block.pi_indptr[row + 1])
                pi = tuple(block.edge_keys[c] for c in block.pi_cols[qlo:qhi].tolist())
                assert pi == layout.pi[inst.instance_id]
                assert block.pi_tuples[row] == layout.pi[inst.instance_id]
                assert block.demand_ids[int(block.dcol[row])] == inst.demand_id
                assert int(block.dcol[row]) < n_demands
                assert block.profit[row] == inst.profit
            seen.extend(ids)
        assert sorted(seen) == sorted(d.instance_id for d in problem.instances)

    @given(workload_cases)
    @settings(**COMMON)
    def test_padded_positions_cover_the_csr_exactly(self, case):
        name, size, seed = case
        problem, layout, rule, _ = setup_workload(name, size, seed)
        blocks, _, _ = build_columnar_epochs(problem.instances, layout, rule)
        for block in blocks.values():
            n_pos = block.path_pad.shape[0]
            assert n_pos >= int(block.path_len.max(initial=0))
            for row in range(block.n_rows):
                lo = int(block.path_indptr[row])
                length = int(block.path_len[row])
                for pos in range(n_pos):
                    if pos < length:
                        assert block.path_pad[pos, row] == block.path_cols[lo + pos]
                    else:
                        assert block.path_pad[pos, row] == 0

    def test_empty_phase_builds_no_blocks(self):
        problem, layout, rule, _ = setup_workload("powerlaw-trees", 8, seed=0)
        blocks, n_edges, n_demands = build_columnar_epochs([], layout, rule)
        assert blocks == {}
        assert n_edges == 1  # just the sentinel
        assert n_demands == 0


class TestConflictBuckets:
    @given(workload_cases)
    @settings(**COMMON)
    def test_buckets_are_exactly_the_edge_and_demand_cliques(self, case):
        name, size, seed = case
        problem, layout, rule, _ = setup_workload(name, size, seed)
        blocks, n_edges, _ = build_columnar_epochs(problem.instances, layout, rule)
        for block in blocks.values():
            assert block.red_sizes.tolist() == np.diff(block.red_indptr).tolist()
            assert (block.red_sizes > 0).all(), "only non-empty buckets compact"
            bucket_ids = block.red_buckets.tolist()
            assert bucket_ids == sorted(set(bucket_ids))
            assert 0 not in bucket_ids, "the sentinel bucket is always empty"
            expected = {}
            for row in range(block.n_rows):
                lo, hi = int(block.path_indptr[row]), int(block.path_indptr[row + 1])
                for col in block.path_cols[lo:hi].tolist():
                    expected.setdefault(col, []).append(row)
                expected.setdefault(n_edges + int(block.dcol[row]), []).append(row)
            got = {}
            for k, bucket in enumerate(bucket_ids):
                seg = block.bucket_rows[
                    int(block.red_indptr[k]) : int(block.red_indptr[k + 1])
                ].tolist()
                assert seg == sorted(seg), "bucket rows must be ascending"
                got[bucket] = seg
            assert got == expected
            assert block.nb_of_row.tolist() == (block.path_len + 1).tolist()


class TestSharedVocabulary:
    @given(workload_cases)
    @settings(**COMMON)
    def test_per_epoch_build_matches_the_phase_build(self, case):
        """Only the column numbering may differ between the per-epoch
        builder and the shared-vocabulary phase builder; everything the
        kernel computes from (values, decoded keys, rule encoding) must
        be identical."""
        name, size, seed = case
        problem, layout, rule, _ = setup_workload(name, size, seed)
        blocks, _, _ = build_columnar_epochs(problem.instances, layout, rule)
        groups = group_members(problem.instances, layout)
        assert set(groups) == set(blocks)
        for epoch, members in groups.items():
            solo = build_columnar(epoch, members, layout, rule)
            shared = blocks[epoch]
            assert solo.ids.tolist() == shared.ids.tolist()
            np.testing.assert_array_equal(solo.profit, shared.profit)
            np.testing.assert_array_equal(solo.coeff, shared.coeff)
            np.testing.assert_array_equal(solo.denom, shared.denom)
            np.testing.assert_array_equal(solo.incfac, shared.incfac)
            assert solo.rule_kind == shared.rule_kind
            assert solo.use_alpha == shared.use_alpha
            assert solo.pi_within_path == shared.pi_within_path
            assert solo.pi_tuples == shared.pi_tuples
            assert solo.path_len.tolist() == shared.path_len.tolist()
            for row in range(solo.n_rows):
                for cols, indptr in (("path_cols", "path_indptr"),
                                     ("pi_cols", "pi_indptr")):
                    decoded = []
                    for block in (solo, shared):
                        ptr = getattr(block, indptr)
                        seg = getattr(block, cols)[
                            int(ptr[row]) : int(ptr[row + 1])
                        ].tolist()
                        decoded.append([block.edge_keys[c] for c in seg])
                    assert decoded[0] == decoded[1]


class TestProcessBackend:
    def test_columnar_layout_pickles_bitwise(self):
        problem, layout, rule, _ = setup_workload("multi-tenant-forest", 24, seed=3)
        blocks, _, _ = build_columnar_epochs(problem.instances, layout, rule)
        assert blocks, "workload produced no epochs"
        for block in blocks.values():
            clone = pickle.loads(pickle.dumps(block))
            assert clone.epoch == block.epoch
            assert clone.ids.tolist() == block.ids.tolist()
            np.testing.assert_array_equal(clone.profit, block.profit)
            np.testing.assert_array_equal(clone.denom, block.denom)
            np.testing.assert_array_equal(clone.path_cols, block.path_cols)
            np.testing.assert_array_equal(clone.bucket_rows, block.bucket_rows)
            assert clone.edge_keys == block.edge_keys
            assert clone.pi_tuples == block.pi_tuples
            assert [d.instance_id for d in clone.instances] == [
                d.instance_id for d in block.instances
            ]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_vectorized_engine_under_pooled_backends(self, backend):
        """workers= routes the vectorized engine through the parallel
        executor with kernel='vectorized'; under the process backend the
        prebuilt blocks cross a pickle boundary inside EpochJob."""
        problem, layout, rule, thresholds = setup_workload(
            "multi-tenant-forest", 40, seed=5
        )
        inc = run_first_phase(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("luby", 5), engine="incremental",
        )
        vec = run_first_phase(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("luby", 5), engine="vectorized",
            workers=2, backend=backend,
        )
        assert fingerprint(inc) == fingerprint(vec)


class TestShadowMode:
    def test_subclassed_raise_rule_matches_incremental(self):
        """A subclass of a bundled rule may override anything, so the
        kernel must treat it as custom (shadow mode) -- and still agree
        with the incremental engine, just without the fast path."""

        class TracingUnitRaise(UnitRaise):
            pass

        problem, layout, _, thresholds = setup_workload(
            "powerlaw-trees", 30, seed=7
        )
        rule = TracingUnitRaise()
        blocks, _, _ = build_columnar_epochs(problem.instances, layout, rule)
        assert all(b.rule_kind == "custom" for b in blocks.values())
        inc = run_first_phase(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("luby", 7), engine="incremental",
        )
        vec = run_first_phase(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("luby", 7), engine="vectorized",
        )
        assert fingerprint(inc) == fingerprint(vec)
