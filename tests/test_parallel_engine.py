"""Tests for the parallel first-phase engine (plan -> execute -> merge).

Golden equivalence across algorithms lives in
``test_engine_equivalence.py`` (every case there runs the parallel
engine too); this module covers the executor itself: the workers knob,
plan passthrough, worker-count invariance, the worker-attribution
counters, and the per-epoch Luby substreams that make epoch executions
order-independent.
"""
import pytest

from repro.algorithms.base import line_layouts, tree_layouts
from repro.core.dual import HeightRaise, UnitRaise
from repro.core.engines import backends as backends_mod
from repro.core.engines.backends import MAX_DEFAULT_WORKERS, usable_cpu_count
from repro.core.engines.parallel import ParallelEpochExecutor, default_workers
from repro.core.framework import (
    geometric_thresholds,
    narrow_xi,
    run_first_phase,
    run_two_phase,
    unit_xi,
)
from repro.core.plan import EpochPlan
from repro.distributed.mis import luby_substream_seed, make_mis_oracle
from repro.workloads import build_workload


def setup_case(name, size, seed):
    problem = build_workload(name, size, seed=seed)
    if name in ("bursty-lines",):
        layout = line_layouts(problem)
        rule = HeightRaise()
        xi = narrow_xi(max(layout.critical_set_size, 3), problem.hmin)
    else:
        layout, _ = tree_layouts(problem, "ideal")
        rule = UnitRaise()
        xi = unit_xi(max(layout.critical_set_size, 6))
    return problem, layout, rule, geometric_thresholds(xi, 0.25)


def results_equal(a, b):
    assert [d.instance_id for d in a.solution.selected] == [
        d.instance_id for d in b.solution.selected
    ]
    assert [
        (e.order, e.instance.instance_id, e.delta, e.step_tuple) for e in a.events
    ] == [
        (e.order, e.instance.instance_id, e.delta, e.step_tuple) for e in b.events
    ]
    assert a.counters.semantic_tuple() == b.counters.semantic_tuple()
    assert a.dual.alpha == b.dual.alpha
    assert a.dual.beta == b.dual.beta


class TestWorkersKnob:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, "two"])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ValueError, match="workers"):
            ParallelEpochExecutor(workers=bad)

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert ParallelEpochExecutor().workers == default_workers()


class TestUsableCpuCount:
    """default_workers must size against the CPUs the *process* may use
    (affinity masks, cgroup cpusets), not the machine's total count --
    the probes are resolved through the os module so they can be pinned
    here."""

    def test_process_cpu_count_probe_wins(self, monkeypatch):
        # os.process_cpu_count (3.13+) is affinity-aware; when present
        # it is authoritative even if os.cpu_count says otherwise.
        monkeypatch.setattr(
            backends_mod.os, "process_cpu_count", lambda: 3, raising=False
        )
        monkeypatch.setattr(backends_mod.os, "cpu_count", lambda: 64)
        assert usable_cpu_count() == 3
        assert default_workers() == 3

    def test_affinity_probe_caps_cpu_count(self, monkeypatch):
        # Without process_cpu_count, a 2-CPU affinity mask on a 64-CPU
        # machine must yield 2 workers, not 8.
        monkeypatch.setattr(
            backends_mod.os, "process_cpu_count", None, raising=False
        )
        monkeypatch.setattr(
            backends_mod.os, "sched_getaffinity", lambda pid: {0, 5},
            raising=False,
        )
        monkeypatch.setattr(backends_mod.os, "cpu_count", lambda: 64)
        assert usable_cpu_count() == 2
        assert default_workers() == 2

    def test_failing_affinity_probe_falls_back_to_cpu_count(self, monkeypatch):
        def boom(pid):
            raise OSError("no affinity support")

        monkeypatch.setattr(
            backends_mod.os, "process_cpu_count", None, raising=False
        )
        monkeypatch.setattr(
            backends_mod.os, "sched_getaffinity", boom, raising=False
        )
        monkeypatch.setattr(backends_mod.os, "cpu_count", lambda: 6)
        assert usable_cpu_count() == 6

    def test_unknown_probes_yield_one(self, monkeypatch):
        monkeypatch.setattr(
            backends_mod.os, "process_cpu_count", None, raising=False
        )
        monkeypatch.delattr(
            backends_mod.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(backends_mod.os, "cpu_count", lambda: None)
        assert usable_cpu_count() == 1
        assert default_workers() == 1

    def test_default_workers_cap(self, monkeypatch):
        monkeypatch.setattr(
            backends_mod.os, "process_cpu_count", lambda: 128, raising=False
        )
        assert default_workers() == MAX_DEFAULT_WORKERS

    def test_workers_rejected_for_serial_engines(self):
        problem, layout, rule, thresholds = setup_case(
            "multi-tenant-forest", 24, seed=1
        )
        oracle = make_mis_oracle("greedy", 0)
        for engine in ("reference", "incremental"):
            with pytest.raises(ValueError, match="workers"):
                run_first_phase(
                    problem.instances, layout, rule, thresholds, oracle,
                    engine=engine, workers=2,
                )

    @pytest.mark.parametrize("name", ["multi-tenant-forest", "bursty-lines"])
    @pytest.mark.parametrize("mis", ["greedy", "luby", "hash"])
    def test_worker_count_invariance(self, name, mis):
        problem, layout, rule, thresholds = setup_case(name, 40, seed=5)
        baseline = run_two_phase(
            problem.instances, layout, rule, thresholds,
            mis=mis, seed=5, engine="incremental",
        )
        for workers in (1, 2, 3, 8):
            par = run_two_phase(
                problem.instances, layout, rule, thresholds,
                mis=mis, seed=5, engine="parallel", workers=workers,
            )
            results_equal(baseline, par)


class TestExecutor:
    def test_prebuilt_plan_passthrough(self):
        problem, layout, rule, thresholds = setup_case(
            "multi-tenant-forest", 40, seed=7
        )
        plan = EpochPlan.build(problem.instances, layout)
        executor = ParallelEpochExecutor(workers=2)
        dual_a, stack_a, events_a, counters_a = executor.run(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("greedy", 0), plan=plan,
        )
        dual_b, stack_b, events_b, counters_b = executor.run(
            problem.instances, layout, rule, thresholds,
            make_mis_oracle("greedy", 0),
        )
        assert dual_a.alpha == dual_b.alpha and dual_a.beta == dual_b.beta
        assert [[d.instance_id for d in b] for b in stack_a] == [
            [d.instance_id for d in b] for b in stack_b
        ]
        assert [e.order for e in events_a] == [e.order for e in events_b]

    def test_worker_attribution_counters(self):
        problem, layout, rule, thresholds = setup_case(
            "multi-tenant-forest", 40, seed=9
        )
        plan = EpochPlan.build(problem.instances, layout)
        # backend pinned: a REPRO_BACKEND=serial override would truthfully
        # report workers_used=1 and fail the attribution assertion below.
        result = run_two_phase(
            problem.instances, layout, rule, thresholds,
            mis="greedy", seed=9, engine="parallel", workers=3,
            backend="thread",
        )
        assert result.counters.workers_used == 3
        assert result.counters.wavefronts == plan.n_waves
        # Serial engines never set the attribution fields.
        inc = run_two_phase(
            problem.instances, layout, rule, thresholds,
            mis="greedy", seed=9, engine="incremental",
        )
        assert inc.counters.wavefronts == 0 and inc.counters.workers_used == 0
        assert result.counters.semantic_tuple() == inc.counters.semantic_tuple()

    def test_event_orders_are_globally_sequential(self):
        problem, layout, rule, thresholds = setup_case(
            "multi-tenant-forest", 60, seed=11
        )
        result = run_two_phase(
            problem.instances, layout, rule, thresholds,
            mis="greedy", seed=11, engine="parallel", workers=4,
        )
        assert [e.order for e in result.events] == list(range(len(result.events)))
        # Events arrive in epoch-major order, like the serial engines.
        epochs = [e.step_tuple[0] for e in result.events]
        assert epochs == sorted(epochs)


class TestLubySubstreams:
    def test_substream_seed_depends_on_epoch(self):
        assert luby_substream_seed(0, 1) != luby_substream_seed(0, 2)
        assert luby_substream_seed(1, 1) != luby_substream_seed(2, 1)

    def test_oracle_draws_are_epoch_local(self):
        # Consuming draws in one epoch must not shift another epoch's
        # stream: querying epochs in different interleavings gives the
        # same answer per (epoch, context).
        problem, layout, rule, thresholds = setup_case(
            "multi-tenant-forest", 30, seed=13
        )
        plan = EpochPlan.build(problem.instances, layout)
        rich = [k for k, mine in plan.members.items() if len(mine) >= 2][:2]
        if len(rich) < 2:
            pytest.skip("workload draw produced fewer than two rich epochs")
        a, b = rich

        def query(oracle, epoch):
            members = plan.members[epoch]
            return oracle(
                members, plan.adjacency[epoch], (epoch, 1, 1)
            )[0]

        first = make_mis_oracle("luby", 42)
        res_a, res_b = query(first, a), query(first, b)
        second = make_mis_oracle("luby", 42)
        assert query(second, b) == res_b
        assert query(second, a) == res_a
