"""Tests for the interference-property checkers themselves."""
import pytest

from repro.core.dual import DualState, RaiseEvent, UnitRaise
from repro.core.interference import (
    InterferenceViolation,
    check_dual_objective_bound,
    check_interference,
    check_predecessor_bound,
)
from tests.test_demand import make_instance


def event(order, inst, delta, critical, step=(1, 1, 1)):
    return RaiseEvent(
        order=order,
        instance=inst,
        delta=delta,
        critical_edges=tuple(critical),
        step_tuple=step,
    )


class TestCheckInterference:
    def test_passes_when_critical_edge_shared(self):
        d1 = make_instance(0, 0, 0, [0, 1, 2, 3])
        d2 = make_instance(1, 1, 0, [1, 2])
        events = [
            event(0, d1, 0.5, [(0, 1, 2)]),
            event(1, d2, 0.5, [(0, 1, 2)]),
        ]
        check_interference(events)

    def test_fails_when_critical_edge_missed(self):
        d1 = make_instance(0, 0, 0, [0, 1, 2, 3])
        d2 = make_instance(1, 1, 0, [2, 3])
        events = [
            event(0, d1, 0.5, [(0, 0, 1)]),  # critical edge far from d2
            event(1, d2, 0.5, [(0, 2, 3)]),
        ]
        with pytest.raises(InterferenceViolation):
            check_interference(events)

    def test_non_overlapping_pairs_ignored(self):
        d1 = make_instance(0, 0, 0, [0, 1])
        d2 = make_instance(1, 1, 0, [5, 6])
        check_interference([event(0, d1, 1.0, [(0, 0, 1)]), event(1, d2, 1.0, [(0, 5, 6)])])

    def test_same_demand_non_overlap_is_fine(self):
        # Same-demand conflicts are handled by alpha, not critical edges.
        d1 = make_instance(0, 7, 0, [0, 1])
        d2 = make_instance(1, 7, 1, [0, 1])
        check_interference([event(0, d1, 1.0, [(0, 0, 1)]), event(1, d2, 1.0, [(1, 0, 1)])])


class TestPredecessorBound:
    def test_passes_within_profit(self):
        d1 = make_instance(0, 0, 0, [0, 1, 2], profit=1.0)
        d2 = make_instance(1, 1, 0, [1, 2], profit=2.0)
        events = [event(0, d1, 0.5, [(0, 1, 2)]), event(1, d2, 1.5, [(0, 1, 2)])]
        check_predecessor_bound(events)

    def test_fails_when_deltas_exceed_profit(self):
        d1 = make_instance(0, 0, 0, [0, 1, 2], profit=1.0)
        d2 = make_instance(1, 1, 0, [1, 2], profit=1.0)
        events = [event(0, d1, 0.9, [(0, 1, 2)]), event(1, d2, 0.9, [(0, 1, 2)])]
        with pytest.raises(InterferenceViolation):
            check_predecessor_bound(events)


class TestDualObjectiveBound:
    def test_passes_for_consistent_raises(self):
        d1 = make_instance(0, 0, 0, [0, 1, 2], profit=3.0)
        dual = DualState()
        rule = UnitRaise()
        critical = tuple(sorted(d1.path_edges))
        delta = rule.apply(dual, d1, critical)
        check_dual_objective_bound(dual, [event(0, d1, delta, critical)], rule)

    def test_fails_for_inflated_dual(self):
        d1 = make_instance(0, 0, 0, [0, 1], profit=1.0)
        dual = DualState()
        dual.alpha[0] = 100.0
        with pytest.raises(InterferenceViolation):
            check_dual_objective_bound(
                dual, [event(0, d1, 0.5, [(0, 0, 1)])], UnitRaise()
            )
