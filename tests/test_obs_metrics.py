"""Unit suite for the :mod:`repro.obs` telemetry primitives.

Covers the three instrument kinds and their registry (labeled series,
kind conflicts, consistent snapshots), bucket-wise snapshot merging
(the shard router's cluster view), quantile estimation over the fixed
log-spaced buckets, the Prometheus text exposition, per-request phase
tracing, and the SLO tracker riding on the request histograms.
"""
import json
import math
import threading

import pytest

from repro.obs import (
    DEFAULT_TARGETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_TRACE,
    SLOTracker,
    Trace,
    default_registry,
    merge_snapshots,
    parse_series_key,
    quantile_from_histogram,
    render_prometheus,
    series_key,
    trace_request,
)
from repro.obs.trace import PHASE_HISTOGRAM, REQUEST_HISTOGRAM


class TestSeriesKeys:
    def test_unlabeled_is_bare_name(self):
        assert series_key("repro_requests_total", {}) == "repro_requests_total"

    def test_labels_sorted_and_quoted(self):
        key = series_key("m", {"b": "2", "a": "1"})
        assert key == 'm{a="1",b="2"}'

    def test_label_order_never_forks_series(self):
        reg = MetricsRegistry()
        reg.counter("m", x="1", y="2").inc()
        reg.counter("m", y="2", x="1").inc()
        assert reg.snapshot()["counters"] == {'m{x="1",y="2"}': 2.0}

    def test_parse_inverts(self):
        name, labels = parse_series_key('m{a="1",b="2"}')
        assert name == "m" and labels == {"a": "1", "b": "2"}
        assert parse_series_key("bare") == ("bare", {})


class TestInstruments:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(2.5)
        assert reg.snapshot()["counters"]["c"] == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(4)
        g.inc()
        g.dec(2)
        assert reg.snapshot()["gauges"]["g"] == 3.0

    def test_histogram_buckets_sum_count_minmax(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (0.0002, 0.0002, 0.3, 70.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(0.0002 + 0.0002 + 0.3 + 70.0)
        assert snap["min"] == pytest.approx(0.0002)
        assert snap["max"] == pytest.approx(70.0)
        assert sum(snap["counts"]) == snap["count"]
        # 0.0002 lands in the (0.0001, 0.00025] bucket; 70 in +inf.
        assert snap["counts"][1] == 2
        assert snap["counts"][-1] == 1

    def test_latency_buckets_fixed_and_increasing(self):
        assert LATENCY_BUCKETS[-1] == math.inf
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert len(set(LATENCY_BUCKETS)) == len(LATENCY_BUCKETS)

    def test_histogram_bounds_must_end_in_inf(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="inf"):
            reg.histogram("bad", bounds=(1.0, 2.0))

    def test_histogram_bounds_conflict(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, math.inf))
        with pytest.raises(ValueError, match="different bounds"):
            reg.histogram("h", bounds=(2.0, math.inf))

    def test_same_series_is_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c", a="1") is reg.counter("c", a="1")
        assert reg.counter("c", a="1") is not reg.counter("c", a="2")


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already a counter"):
            reg.gauge("m")
        with pytest.raises(ValueError, match="already a counter"):
            reg.histogram("m")

    def test_snapshot_is_jsonable_and_detached(self):
        reg = MetricsRegistry()
        reg.counter("c", kind="x").inc()
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        json.dumps(snap)  # strictly serializable
        reg.counter("c", kind="x").inc(41)
        assert snap["counters"]['c{kind="x"}'] == 1.0  # copy, not view

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        # And the name is free to re-register as a different kind.
        reg.gauge("c").set(2)

    def test_default_registry_is_process_wide(self):
        assert default_registry() is default_registry()

    def test_concurrent_observes_never_tear(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                h.observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                snap = reg.snapshot()["histograms"]["h"]
                assert sum(snap["counts"]) == snap["count"]
        finally:
            stop.set()
            for t in threads:
                t.join()


class TestMerge:
    def test_counters_and_gauges_add(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c", s="0").inc(2)
        b.counter("c", s="0").inc(3)
        b.counter("only_b").inc()
        a.gauge("g").set(1)
        b.gauge("g").set(4)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]['c{s="0"}'] == 5.0
        assert merged["counters"]["only_b"] == 1.0
        assert merged["gauges"]["g"] == 5.0

    def test_histograms_add_bucket_wise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for v in (0.002, 0.2):
            a.histogram("h").observe(v)
        for v in (0.002, 30.0):
            b.histogram("h").observe(v)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])["histograms"]["h"]
        assert merged["count"] == 4
        assert merged["sum"] == pytest.approx(0.002 + 0.2 + 0.002 + 30.0)
        assert merged["min"] == pytest.approx(0.002)
        assert merged["max"] == pytest.approx(30.0)
        single = MetricsRegistry()
        for v in (0.002, 0.2, 0.002, 30.0):
            single.histogram("h").observe(v)
        assert merged["counts"] == single.snapshot()["histograms"]["h"]["counts"]

    def test_mismatched_bounds_refuse_to_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", bounds=(1.0, math.inf)).observe(0.5)
        b.histogram("h", bounds=(2.0, math.inf)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_of_none_is_empty(self):
        assert merge_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestQuantiles:
    def test_empty_is_nan(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert math.isnan(reg.quantile("h", 0.5))
        assert math.isnan(reg.quantile("missing", 0.5))

    def test_identical_observations_answer_exactly(self):
        reg = MetricsRegistry()
        for _ in range(100):
            reg.histogram("h").observe(0.04)
        assert reg.quantile("h", 0.5) == pytest.approx(0.04, rel=1e-9)
        assert reg.quantile("h", 0.99) == pytest.approx(0.04, rel=1e-9)

    def test_interpolation_brackets_the_true_quantile(self):
        reg = MetricsRegistry()
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
        for v in values:
            reg.histogram("h").observe(v)
        p99 = reg.quantile("h", 0.99)
        # True p99 is ~0.99; the estimate must land inside the owning
        # bucket (0.5, 1.0].
        assert 0.5 <= p99 <= 1.0

    def test_label_filter_merges_matching_series(self):
        reg = MetricsRegistry()
        reg.histogram("h", family="line", status="hit").observe(0.01)
        reg.histogram("h", family="line", status="cold").observe(0.01)
        reg.histogram("h", family="tree", status="hit").observe(10.0)
        # family=line spans both line series, ignores the tree one.
        assert reg.quantile("h", 0.99, family="line") < 1.0
        assert reg.quantile("h", 0.99, family="tree") > 1.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            quantile_from_histogram(
                {"bounds": ["+inf"], "counts": [1], "sum": 1, "count": 1,
                 "min": 1, "max": 1},
                1.5,
            )


class TestPrometheusRendering:
    def test_counter_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", status="hit").inc(3)
        reg.gauge("repro_queue_depth").set(2)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{status="hit"} 3.0' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2.0" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 2.0, math.inf), f="x")
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        text = render_prometheus(reg.snapshot())
        assert '# TYPE h histogram' in text
        assert 'h_bucket{f="x",le="1.0"} 1' in text
        assert 'h_bucket{f="x",le="2.0"} 2' in text
        assert 'h_bucket{f="x",le="+Inf"} 3' in text
        assert 'h_sum{f="x"} 5.0' in text
        assert 'h_count{f="x"} 3' in text

    def test_renders_merged_snapshots(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc()
        b.counter("c").inc()
        text = render_prometheus(merge_snapshots([a.snapshot(), b.snapshot()]))
        assert "c 2.0" in text


class TestTracing:
    def test_spans_record_into_phase_histogram(self):
        reg = MetricsRegistry()
        trace = trace_request(reg, family="tree")
        with trace.span("validate"):
            pass
        with trace.span("solve"):
            pass
        elapsed = trace.finish("cold")
        assert elapsed > 0
        snap = reg.snapshot()
        hists = snap["histograms"]
        assert hists[f'{PHASE_HISTOGRAM}{{family="tree",phase="validate"}}'][
            "count"
        ] == 1
        assert hists[f'{PHASE_HISTOGRAM}{{family="tree",phase="solve"}}'][
            "count"
        ] == 1
        assert hists[f'{REQUEST_HISTOGRAM}{{family="tree",status="cold"}}'][
            "count"
        ] == 1
        assert snap["counters"][
            'repro_service_requests_total{family="tree",status="cold"}'
        ] == 1.0

    def test_finish_is_idempotent(self):
        reg = MetricsRegistry()
        trace = Trace(reg, family="line")
        trace.finish("hit")
        trace.finish("error")  # defensive second finish: ignored
        hists = reg.snapshot()["histograms"]
        assert len(hists) == 1
        assert hists[f'{REQUEST_HISTOGRAM}{{family="line",status="hit"}}'][
            "count"
        ] == 1

    def test_span_records_even_when_body_raises(self):
        reg = MetricsRegistry()
        trace = Trace(reg, family="line")
        with pytest.raises(RuntimeError):
            with trace.span("solve"):
                raise RuntimeError("boom")
        key = f'{PHASE_HISTOGRAM}{{family="line",phase="solve"}}'
        assert reg.snapshot()["histograms"][key]["count"] == 1

    def test_set_family_relabels(self):
        reg = MetricsRegistry()
        trace = trace_request(reg)
        trace.set_family("line")
        trace.finish("hit")
        assert (
            f'{REQUEST_HISTOGRAM}{{family="line",status="hit"}}'
            in reg.snapshot()["histograms"]
        )

    def test_null_trace_records_nothing(self):
        trace = trace_request(None)
        assert trace is NULL_TRACE
        with trace.span("solve"):
            pass
        trace.set_family("line")
        assert trace.finish("cold") == 0.0


class TestSLOTracker:
    def test_over_budget_counting(self):
        reg = MetricsRegistry()
        slo = SLOTracker(reg, targets={"line": 0.1})
        assert slo.observe("line", 0.05) is False
        assert slo.observe("line", 0.5) is True
        assert slo.observe("tree", 99.0) is False  # no budget configured
        counters = reg.snapshot()["counters"]
        assert counters['repro_slo_over_budget_total{family="line"}'] == 1.0
        assert counters['repro_slo_requests_total{family="line"}'] == 2.0
        assert counters['repro_slo_requests_total{family="tree"}'] == 1.0

    def test_report_reads_request_histograms(self):
        reg = MetricsRegistry()
        slo = SLOTracker(reg, targets={"line": 1.0, "tree": 1.0})
        for _ in range(20):
            reg.histogram(REQUEST_HISTOGRAM, family="line", status="hit").observe(
                0.01
            )
            slo.observe("line", 0.01)
        report = slo.report()
        assert report["line"]["met"] is True
        assert report["line"]["measured"] == pytest.approx(0.01, rel=0.5)
        assert report["line"]["observed"] == 20.0
        assert report["line"]["over_budget"] == 0.0
        # tree served nothing: vacuously met, measured is None.
        assert report["tree"]["met"] is True
        assert report["tree"]["measured"] is None
        json.dumps(report)

    def test_default_targets_cover_both_families(self):
        reg = MetricsRegistry()
        slo = SLOTracker(reg)
        assert set(slo.targets) == set(DEFAULT_TARGETS) == {"line", "tree"}

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            SLOTracker(MetricsRegistry(), quantile=0.0)
