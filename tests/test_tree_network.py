"""Tests for the TreeNetwork substrate."""
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.tree import NotATreeError, TreeNetwork, make_line_network
from repro.workloads.trees import random_tree, random_tree_edges


@pytest.fixture
def small_tree():
    #       0
    #      / \
    #     1   2
    #    / \    \
    #   3   4    5
    return TreeNetwork(0, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])


class TestConstruction:
    def test_counts(self, small_tree):
        assert small_tree.n_vertices == 6
        assert len(small_tree.edges()) == 5

    def test_single_vertex_network(self):
        net = TreeNetwork(0, [], vertices=[7])
        assert net.n_vertices == 1
        assert net.edges() == []

    def test_rejects_cycle(self):
        with pytest.raises(NotATreeError):
            TreeNetwork(0, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_disconnected(self):
        with pytest.raises(NotATreeError):
            TreeNetwork(0, [(0, 1), (2, 3), (3, 4), (4, 2)])

    def test_rejects_disconnected_forest(self):
        # Right edge count but two components is impossible for a tree
        # over the induced vertex set; add an isolated declared vertex.
        with pytest.raises(NotATreeError):
            TreeNetwork(0, [(0, 1)], vertices=[0, 1, 2])

    def test_rejects_self_loop(self):
        with pytest.raises(NotATreeError):
            TreeNetwork(0, [(1, 1)])

    def test_rejects_empty(self):
        with pytest.raises(NotATreeError):
            TreeNetwork(0, [])

    def test_rejects_parallel_edges(self):
        with pytest.raises(NotATreeError):
            TreeNetwork(0, [(0, 1), (1, 0)])


class TestAccessors:
    def test_neighbors(self, small_tree):
        assert sorted(small_tree.neighbors(1)) == [0, 3, 4]

    def test_degree(self, small_tree):
        assert small_tree.degree(0) == 2
        assert small_tree.degree(5) == 1

    def test_has_edge(self, small_tree):
        assert small_tree.has_edge(0, 1)
        assert small_tree.has_edge(1, 0)
        assert not small_tree.has_edge(0, 5)

    def test_edge_lookup(self, small_tree):
        assert small_tree.edge(1, 0) == (0, 0, 1)
        with pytest.raises(KeyError):
            small_tree.edge(0, 5)

    def test_is_path_graph(self, small_tree):
        assert not small_tree.is_path_graph()
        assert make_line_network(0, 5).is_path_graph()

    def test_rooted_accessors(self, small_tree):
        assert small_tree.root == 0
        assert small_tree.parent_of(0) is None
        assert small_tree.parent_of(3) == 1
        assert small_tree.depth_of(0) == 0
        assert small_tree.depth_of(5) == 2
        assert sorted(small_tree.children_of(1)) == [3, 4]


class TestPaths:
    def test_path_vertices(self, small_tree):
        assert small_tree.path_vertices(3, 5) == (3, 1, 0, 2, 5)

    def test_path_single_edge(self, small_tree):
        assert small_tree.path_vertices(0, 1) == (0, 1)

    def test_path_same_subtree(self, small_tree):
        assert small_tree.path_vertices(3, 4) == (3, 1, 4)

    def test_path_edges_in_order(self, small_tree):
        assert small_tree.path_edges(3, 5) == (
            (0, 1, 3),
            (0, 0, 1),
            (0, 0, 2),
            (0, 2, 5),
        )

    def test_path_to_self(self, small_tree):
        assert small_tree.path_vertices(2, 2) == (2,)
        assert small_tree.path_edges(2, 2) == ()

    def test_unknown_vertex_raises(self, small_tree):
        with pytest.raises(KeyError):
            small_tree.path_vertices(0, 99)

    def test_lca(self, small_tree):
        assert small_tree.lca(3, 4) == 1
        assert small_tree.lca(3, 5) == 0
        assert small_tree.lca(1, 3) == 1

    def test_distance(self, small_tree):
        assert small_tree.distance(3, 5) == 4
        assert small_tree.distance(0, 0) == 0


class TestComponents:
    def test_is_component(self, small_tree):
        assert small_tree.is_component({0, 1, 3})
        assert not small_tree.is_component({3, 4})  # disconnected without 1
        assert not small_tree.is_component(set())
        assert not small_tree.is_component({0, 99})

    def test_component_neighborhood(self, small_tree):
        assert small_tree.component_neighborhood({1, 3, 4}) == frozenset({0})
        assert small_tree.component_neighborhood({0}) == frozenset({1, 2})
        assert small_tree.component_neighborhood(set(small_tree.vertices)) == frozenset()

    def test_split_component(self, small_tree):
        pieces = small_tree.split_component(set(small_tree.vertices), 0)
        assert sorted(sorted(p) for p in pieces) == [[1, 3, 4], [2, 5]]

    def test_split_component_leaf(self, small_tree):
        pieces = small_tree.split_component({1, 3, 4}, 3)
        assert sorted(sorted(p) for p in pieces) == [[1, 4]]

    def test_split_requires_membership(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.split_component({1, 3}, 0)


class TestBalancer:
    def test_balancer_of_path(self):
        line = make_line_network(0, 6)  # vertices 0..6
        z = line.balancer(set(line.vertices))
        pieces = line.split_component(set(line.vertices), z)
        assert all(len(p) <= 7 // 2 for p in pieces)

    def test_balancer_of_star(self):
        star = TreeNetwork(0, [(0, i) for i in range(1, 8)])
        assert star.balancer(set(star.vertices)) == 0

    def test_balancer_singleton(self, small_tree):
        assert small_tree.balancer({4}) == 4

    def test_balancer_rejects_disconnected(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.balancer({3, 4})

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("shape", ["uniform", "caterpillar", "binary"])
    def test_balancer_bound_random(self, seed, shape):
        net = random_tree(33, seed=seed, shape=shape)
        comp = set(net.vertices)
        z = net.balancer(comp)
        for piece in net.split_component(comp, z):
            assert len(piece) <= len(comp) // 2


class TestMedian:
    def test_median_on_small_tree(self, small_tree):
        assert small_tree.median(3, 4, 5) == 1
        assert small_tree.median(3, 5, 2) == 2  # 2 lies on all three paths
        assert small_tree.median(3, 4, 2) == 1

    def test_median_collinear(self, small_tree):
        assert small_tree.median(3, 1, 0) == 1

    def test_median_identity(self, small_tree):
        assert small_tree.median(3, 3, 5) == 3

    @pytest.mark.parametrize("seed", range(5))
    def test_median_lies_on_all_three_paths(self, seed):
        net = random_tree(25, seed=seed)
        import random

        rng = random.Random(seed)
        for _ in range(20):
            a, b, c = rng.sample(net.vertices, 3)
            j = net.median(a, b, c)
            assert j in net.path_vertices(a, b)
            assert j in net.path_vertices(a, c)
            assert j in net.path_vertices(b, c)


class TestLineNetwork:
    def test_make_line(self):
        line = make_line_network(2, 4)
        assert line.n_vertices == 5
        assert line.is_path_graph()
        assert line.network_id == 2

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            make_line_network(0, 0)


@st.composite
def tree_and_pair(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    net = TreeNetwork(0, random_tree_edges(n, seed=seed))
    u = draw(st.integers(min_value=0, max_value=n - 1))
    v = draw(st.integers(min_value=0, max_value=n - 1))
    return net, u, v


class TestPathProperties:
    @given(tree_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_path_symmetric(self, data):
        net, u, v = data
        assert net.path_vertices(u, v) == tuple(reversed(net.path_vertices(v, u)))

    @given(tree_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_path_endpoints_and_simplicity(self, data):
        net, u, v = data
        path = net.path_vertices(u, v)
        assert path[0] == u and path[-1] == v
        assert len(set(path)) == len(path)  # simple
        for a, b in zip(path, path[1:]):
            assert net.has_edge(a, b)

    @given(tree_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_distance_matches_path(self, data):
        net, u, v = data
        assert net.distance(u, v) == len(net.path_vertices(u, v)) - 1
