"""Tests for the baselines: exact B&B, tree DP, greedy, Panconesi-Sozio."""
import itertools

import pytest

from repro.baselines.exact import ExactSizeError, solve_exact
from repro.baselines.greedy import solve_greedy
from repro.baselines.panconesi_sozio import (
    solve_ps_arbitrary_lines,
    solve_ps_unit_lines,
)
from repro.baselines.tree_dp import TreeDPError, solve_tree_dp
from repro.core.solution import CapacityLedger, Solution
from repro.workloads import (
    figure1_problem,
    figure2_problem,
    random_line_problem,
    random_tree_problem,
)
from repro.workloads.trees import random_forest, random_tree


def brute_force_optimum(problem):
    """Reference optimum by enumerating all instance subsets."""
    instances = problem.instances
    best = 0.0
    for k in range(1, len(instances) + 1):
        for combo in itertools.combinations(instances, k):
            ledger = CapacityLedger()
            ok = True
            for d in combo:
                if not ledger.fits(d):
                    ok = False
                    break
                ledger.add(d)
            if ok:
                best = max(best, sum(d.profit for d in combo))
    return best


class TestExactBranchAndBound:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_trees(self, seed):
        problem = random_tree_problem(
            random_forest(10, 2, seed=seed), m=6, seed=seed + 13
        )
        assert solve_exact(problem).profit == pytest.approx(
            brute_force_optimum(problem)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force_heights(self, seed):
        problem = random_tree_problem(
            random_forest(10, 2, seed=seed + 5), m=6, seed=seed + 17,
            height_profile="uniform", hmin=0.2,
        )
        assert solve_exact(problem).profit == pytest.approx(
            brute_force_optimum(problem)
        )

    def test_solution_is_feasible(self):
        problem = random_tree_problem(random_forest(15, 2, seed=1), m=10, seed=2)
        solve_exact(problem).verify()

    def test_size_cap(self):
        problem = random_tree_problem(random_forest(10, 1, seed=1), m=8, seed=3)
        with pytest.raises(ExactSizeError):
            solve_exact(problem, max_demands=5)

    def test_figure_examples(self):
        assert solve_exact(figure1_problem()).profit == 2.0
        assert solve_exact(figure2_problem()).profit == 2.0
        assert solve_exact(figure2_problem(unit_height=True)).profit == 1.0


class TestTreeDP:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_branch_and_bound(self, seed):
        problem = random_tree_problem(
            {0: random_tree(18, seed=seed)}, m=10, seed=seed + 29
        )
        assert solve_tree_dp(problem) == pytest.approx(solve_exact(problem).profit)

    @pytest.mark.parametrize("shape", ["path", "star", "caterpillar", "binary"])
    def test_shapes(self, shape):
        problem = random_tree_problem(
            {0: random_tree(16, seed=3, shape=shape)}, m=9, seed=31
        )
        assert solve_tree_dp(problem) == pytest.approx(solve_exact(problem).profit)

    def test_two_demands_through_one_vertex(self):
        # A star where two demands can pair up through the center.
        from repro.core.demand import Demand
        from repro.core.problem import Problem
        from repro.trees.tree import TreeNetwork

        net = TreeNetwork(0, [(0, 1), (0, 2), (0, 3), (0, 4)])
        demands = [
            Demand(0, 1, 2, profit=3.0),
            Demand(1, 3, 4, profit=2.0),
            Demand(2, 1, 3, profit=4.0),
        ]
        problem = Problem(networks={0: net}, demands=demands)
        # Best: {0, 1} (profit 5) beats {2} (profit 4).
        assert solve_tree_dp(problem) == pytest.approx(5.0)

    def test_chain_blocking(self):
        # A long demand blocks a chain; DP must re-solve beneath it.
        from repro.core.demand import Demand
        from repro.core.problem import Problem
        from repro.trees.tree import make_line_network

        line = make_line_network(0, 6)
        demands = [
            Demand(0, 0, 6, profit=2.5),
            Demand(1, 0, 3, profit=1.5),
            Demand(2, 3, 6, profit=1.5),
        ]
        problem = Problem(networks={0: line}, demands=demands)
        assert solve_tree_dp(problem) == pytest.approx(3.0)

    def test_rejects_multiple_networks(self):
        problem = random_tree_problem(random_forest(10, 2, seed=1), m=4, seed=1)
        with pytest.raises(TreeDPError):
            solve_tree_dp(problem)

    def test_rejects_heights(self):
        problem = random_tree_problem(
            {0: random_tree(10, seed=2)}, m=4, seed=2,
            height_profile="narrow", hmin=0.3,
        )
        with pytest.raises(TreeDPError):
            solve_tree_dp(problem)


class TestGreedy:
    @pytest.mark.parametrize("key", ["profit", "density"])
    def test_feasible(self, key):
        problem = random_tree_problem(random_forest(20, 2, seed=4), m=15, seed=5)
        report = solve_greedy(problem, key=key)
        report.solution.verify()

    def test_profit_order_respected(self):
        problem = figure2_problem(unit_height=True)
        report = solve_greedy(problem)
        assert len(report.solution) == 1

    def test_unknown_key(self):
        with pytest.raises(ValueError):
            solve_greedy(figure1_problem(), key="vibes")

    def test_greedy_can_be_suboptimal(self):
        # A high-profit long demand blocks two demands worth more jointly.
        from repro.core.demand import Demand
        from repro.core.problem import Problem
        from repro.trees.tree import make_line_network

        line = make_line_network(0, 4)
        demands = [
            Demand(0, 0, 4, profit=3.0),
            Demand(1, 0, 2, profit=2.0),
            Demand(2, 2, 4, profit=2.0),
        ]
        problem = Problem(networks={0: line}, demands=demands)
        report = solve_greedy(problem, key="profit")
        assert report.profit == 3.0
        assert solve_exact(problem).profit == 4.0


class TestPanconesiSozio:
    @pytest.mark.parametrize("seed", range(4))
    def test_unit_guarantee(self, seed):
        problem = random_line_problem(30, 10, r=2, seed=seed + 43)
        report = solve_ps_unit_lines(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6
        # (Delta+1)/lambda = 4 * (5 + eps)
        assert report.guarantee <= 4 * 5.1 + 1e-9

    def test_slackness_is_one_over_5_eps(self):
        problem = random_line_problem(25, 8, r=2, seed=47)
        report = solve_ps_unit_lines(problem, epsilon=0.1, seed=0)
        assert report.result.slackness == pytest.approx(1 / 5.1)
        from repro.core.lp import check_scaled_dual_feasible

        check_scaled_dual_feasible(
            report.result.dual, problem.instances, report.result.slackness
        )

    def test_single_stage(self):
        problem = random_line_problem(25, 8, r=2, seed=48)
        report = solve_ps_unit_lines(problem, epsilon=0.1, seed=0)
        assert len(report.result.thresholds) == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_arbitrary_heights(self, seed):
        problem = random_line_problem(
            25, 9, r=2, seed=seed + 53, height_profile="bimodal", hmin=0.2
        )
        report = solve_ps_arbitrary_lines(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6

    def test_rejects_heights_in_unit_mode(self):
        problem = random_line_problem(20, 6, seed=57, height_profile="narrow")
        with pytest.raises(ValueError):
            solve_ps_unit_lines(problem)
