"""Picklability regression tests for the process backend's wire format.

``backend="process"`` ships :class:`EpochJob` bundles to worker
processes and gets :class:`EpochOutcome` / ``FirstPhaseArtifacts``
back; component mode additionally clones MIS oracles via a pickle
round-trip.  Anything in that closure losing picklability (a lambda
slipping into an oracle factory, an unpicklable field on a dataclass)
would break the process backend at a distance, so this module pins it
directly: every ``make_mis_oracle`` product, every plan-derived job
slice, and the full first-phase artifact bundle must round-trip through
``pickle`` -- and behave identically afterwards.
"""
import pickle

import pytest

from repro.algorithms.base import tree_layouts
from repro.algorithms.sequential import EarliestInSigmaOracle
from repro.core.dual import UnitRaise
from repro.core.engines import EpochJob, run_epoch_job
from repro.core.framework import (
    geometric_thresholds,
    run_first_phase,
    unit_xi,
)
from repro.core.plan import EpochPlan
from repro.distributed.mis import make_mis_oracle
from repro.workloads import build_workload

ORACLES = ("greedy", "luby", "hash")


def setup_case(size=30, seed=5):
    problem = build_workload("multi-tenant-forest", size, seed=seed)
    layout, _ = tree_layouts(problem, "ideal")
    thresholds = geometric_thresholds(
        unit_xi(max(layout.critical_set_size, 6)), 0.25
    )
    return problem, layout, tuple(thresholds)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestOraclePicklability:
    @pytest.mark.parametrize("mis", ORACLES)
    def test_factory_products_roundtrip_and_agree(self, mis):
        problem, layout, _ = setup_case()
        plan = EpochPlan.build(problem.instances, layout)
        original = make_mis_oracle(mis, 42)
        copy = roundtrip(original)
        for epoch, members in sorted(plan.members.items()):
            if not members:
                continue
            ctx = (epoch, 1, 1)
            assert original(members, plan.adjacency[epoch], ctx) == copy(
                members, plan.adjacency[epoch], ctx
            ), f"{mis} oracle diverged after pickling (epoch {epoch})"

    def test_luby_copy_does_not_share_rng_state(self):
        problem, layout, _ = setup_case()
        plan = EpochPlan.build(problem.instances, layout)
        epoch = next(k for k, m in sorted(plan.members.items()) if len(m) >= 2)
        members = plan.members[epoch]
        original = make_mis_oracle("luby", 7)
        copy = roundtrip(original)
        # Draining draws on the copy must not advance the original's
        # substream: both see the fresh epoch stream on first use.
        for _ in range(3):
            copy(members, plan.adjacency[epoch], (epoch, 1, 1))
        fresh = make_mis_oracle("luby", 7)
        assert original(members, plan.adjacency[epoch], (epoch, 1, 1)) == fresh(
            members, plan.adjacency[epoch], (epoch, 1, 1)
        )

    def test_sequential_oracle_roundtrips(self):
        rank = {1: (1, -2, 1), 2: (1, -1, 2), 3: (2, -3, 3)}
        problem, layout, _ = setup_case(size=8)
        oracle = roundtrip(EarliestInSigmaOracle(rank))
        assert oracle.rank == rank


class TestJobSlicePicklability:
    @pytest.mark.parametrize("granularity", ["epoch", "component"])
    @pytest.mark.parametrize("mis", ORACLES)
    def test_plan_job_slices_roundtrip(self, mis, granularity):
        """The exact wire form the process backend submits must pickle,
        and an unpickled job must compute the identical outcome."""
        problem, layout, thresholds = setup_case()
        plan = EpochPlan.build(
            problem.instances, layout, granularity=granularity
        )
        oracle = make_mis_oracle(mis, 3)
        rule = UnitRaise()
        jobs = []
        for epoch in sorted(plan.members):
            if not plan.members[epoch]:
                continue
            if granularity == "component":
                for c, (members, adjacency, index) in enumerate(
                    plan.component_slices(epoch)
                ):
                    jobs.append(EpochJob(
                        epoch, c, members, index, adjacency, layout,
                        rule, thresholds, roundtrip(oracle), {}, {},
                    ))
            else:
                jobs.append(EpochJob(
                    epoch, 0, plan.members[epoch], plan.index[epoch],
                    plan.adjacency[epoch], layout, rule, thresholds,
                    roundtrip(oracle), {}, {},
                ))
        assert jobs, "workload produced no jobs"
        for job in jobs:
            wire = job.sliced()
            copy = roundtrip(wire)
            # The slice carries exactly the member rows of the layout.
            assert set(copy.layout.pi) == {d.instance_id for d in job.members}
            local = run_epoch_job(roundtrip(wire))
            direct = run_epoch_job(wire)
            assert local.alpha_writes == direct.alpha_writes
            assert local.beta_writes == direct.beta_writes
            assert [
                (e.order, e.instance.instance_id, e.delta) for e in local.events
            ] == [
                (e.order, e.instance.instance_id, e.delta) for e in direct.events
            ]
            assert local.counters.semantic_tuple() == direct.counters.semantic_tuple()


class TestProcessWirePreparation:
    def test_prepare_gives_every_job_a_private_oracle(self):
        # The pool's feeder thread pickles submitted jobs concurrently
        # with the caller-runs chunk executing; a stateful oracle shared
        # across the wave's jobs could be mutated mid-pickle.  _prepare
        # must therefore seal each wire job with its own oracle clone.
        from repro.core.engines.backends import ProcessBackend

        problem, layout, thresholds = setup_case(size=16, seed=1)
        plan = EpochPlan.build(problem.instances, layout)
        shared = make_mis_oracle("luby", 5)
        jobs = [
            EpochJob(
                epoch, 0, plan.members[epoch], plan.index[epoch],
                plan.adjacency[epoch], layout, UnitRaise(), thresholds,
                shared, {}, {},
            )
            for epoch in sorted(plan.members)
            if plan.members[epoch]
        ]
        assert len(jobs) >= 2, "need multiple epochs to exercise sharing"
        prepared = ProcessBackend(2)._prepare(jobs)
        oracles = [job.mis_oracle for job in prepared]
        assert all(o is not shared for o in oracles)
        assert len({id(o) for o in oracles}) == len(oracles)


class TestArtifactsPicklability:
    @pytest.mark.parametrize("engine", ["incremental", "parallel"])
    def test_first_phase_artifacts_roundtrip(self, engine):
        problem, layout, thresholds = setup_case(size=24, seed=2)
        kwargs = {"workers": 2} if engine == "parallel" else {}
        dual, stack, events, counters = run_first_phase(
            problem.instances, layout, UnitRaise(), thresholds,
            make_mis_oracle("greedy", 0), engine=engine, **kwargs,
        )
        dual2, stack2, events2, counters2 = roundtrip(
            (dual, stack, events, counters)
        )
        assert dual2.alpha == dual.alpha and dual2.beta == dual.beta
        assert list(dual2.alpha) == list(dual.alpha)  # insertion order too
        assert [[d.instance_id for d in b] for b in stack2] == [
            [d.instance_id for d in b] for b in stack
        ]
        assert [
            (e.order, e.instance.instance_id, e.delta, e.critical_edges,
             e.step_tuple)
            for e in events2
        ] == [
            (e.order, e.instance.instance_id, e.delta, e.critical_edges,
             e.step_tuple)
            for e in events
        ]
        assert counters2 == counters
