"""Golden equivalence of the first-phase engines.

The incremental dirty-set engine, the parallel plan/execute/merge
engine and the vectorized columnar kernel must be *bit-identical* to
the reference Figure 7 loop -- not merely "as good": the same solution
ids, the same raise events in the same order with the same deltas, the
same stack shape and schedule counters, and the same final dual
assignment -- for every algorithm, every MIS oracle, the paper's
worked examples, and seeded random-suite workloads.  Any divergence
means the dirty-set propagation missed an affected instance (or
invented one, desynching a Luby RNG substream), that the epoch plan
let interacting epochs run out of order, or that the columnar kernel's
float schedule drifted from the dict engine's association order.

Every case in this suite runs all four engines: ``both_engines``
asserts the parallel engine (2 workers) and the vectorized kernel
against the incremental one inline and returns the (reference,
incremental) pair for the caller's own comparison.  The second-phase
admission engines ride the same sweep: every case also runs
``phase2_engine="sliced"`` and ``phase2_engine="vectorized"`` arms,
asserted bit-identical (admission work counters included) against the
reference pop, and ``TestPhase2EngineMatrix`` crosses the full
phase2-engine x first-phase-engine x oracle grid explicitly.
"""
import pytest

from repro.algorithms.arbitrary_lines import solve_arbitrary_lines, solve_narrow_lines
from repro.algorithms.arbitrary_trees import solve_arbitrary_trees
from repro.algorithms.narrow_trees import solve_narrow_trees
from repro.algorithms.sequential import solve_sequential
from repro.algorithms.unit_lines import solve_unit_lines
from repro.algorithms.unit_trees import solve_unit_trees
from repro.baselines.panconesi_sozio import (
    solve_ps_arbitrary_lines,
    solve_ps_unit_lines,
)
from repro.workloads import build_workload, random_tree_problem, scenario
from repro.workloads.trees import random_forest

ORACLES = ("greedy", "luby", "hash")


def assert_results_identical(ref, inc):
    """Field-by-field identity of two :class:`TwoPhaseResult` objects."""
    assert [d.instance_id for d in ref.solution.selected] == [
        d.instance_id for d in inc.solution.selected
    ]
    assert [
        (e.order, e.instance.instance_id, e.delta, e.critical_edges, e.step_tuple)
        for e in ref.events
    ] == [
        (e.order, e.instance.instance_id, e.delta, e.critical_edges, e.step_tuple)
        for e in inc.events
    ]
    assert [[d.instance_id for d in batch] for batch in ref.stack] == [
        [d.instance_id for d in batch] for batch in inc.stack
    ]
    rc, ic = ref.counters, inc.counters
    assert (rc.epochs, rc.stages, rc.steps, rc.raises) == (
        ic.epochs, ic.stages, ic.steps, ic.raises
    )
    assert rc.mis_rounds == ic.mis_rounds
    assert rc.max_steps_per_stage == ic.max_steps_per_stage
    # The admission work account (checks/admitted/rejected) is semantic
    # across phase2 engines too; the compat-guarded tuple keeps the
    # pre-seam golden digests stable while this suite still pins it.
    assert rc.semantic_tuple(include_admission=True) == ic.semantic_tuple(
        include_admission=True
    )
    assert ref.dual.alpha == inc.dual.alpha
    assert ref.dual.beta == inc.dual.beta
    assert ref.thresholds == inc.thresholds


def assert_reports_identical(ref, inc):
    """Identity of two :class:`AlgorithmReport` objects (recursing into
    the wide/narrow parts of composite algorithms)."""
    assert [d.instance_id for d in ref.solution.selected] == [
        d.instance_id for d in inc.solution.selected
    ]
    assert ref.guarantee == inc.guarantee
    assert ref.certified_upper_bound == inc.certified_upper_bound
    if ref.result is not None or inc.result is not None:
        assert_results_identical(ref.result, inc.result)
    assert set(ref.parts) == set(inc.parts)
    for key in ref.parts:
        assert_reports_identical(ref.parts[key], inc.parts[key])


def both_engines(solver, problem, **kwargs):
    """Run all engines; parallel and vectorized are asserted against
    incremental here, and both non-reference admission engines against
    the reference pop."""
    ref = solver(problem, engine="reference", **kwargs)
    inc = solver(problem, engine="incremental", **kwargs)
    par = solver(problem, engine="parallel", workers=2, **kwargs)
    vec = solver(problem, engine="vectorized", **kwargs)
    assert_reports_identical(inc, par)
    assert_reports_identical(inc, vec)
    sliced_pop = solver(
        problem, engine="incremental", phase2_engine="sliced", **kwargs
    )
    vector_pop = solver(
        problem, engine="incremental", phase2_engine="vectorized", **kwargs
    )
    assert_reports_identical(inc, sliced_pop)
    assert_reports_identical(inc, vector_pop)
    return ref, inc


class TestUnitTrees:
    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("name", ["figure2-unit", "figure6"])
    def test_scenarios(self, name, mis):
        ref, inc = both_engines(
            solve_unit_trees, scenario(name), epsilon=0.15, mis=mis, seed=7
        )
        assert_reports_identical(ref, inc)

    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("name", ["powerlaw-trees", "deep-trees"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_suite(self, name, mis, seed):
        problem = build_workload(name, 30, seed=seed)
        ref, inc = both_engines(
            solve_unit_trees, problem, epsilon=0.2, mis=mis, seed=seed
        )
        assert_reports_identical(ref, inc)

    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("seed", [0, 12, 60])
    def test_multi_tenant_forest(self, mis, seed):
        # The headline workload of the parallel engine: the only bundled
        # family whose epoch plans have multiple waves, so this is where
        # the wave-merge path (dual insertion order included) is really
        # exercised.
        problem = build_workload("multi-tenant-forest", 60, seed=seed)
        ref, inc = both_engines(
            solve_unit_trees, problem, epsilon=0.2, mis=mis, seed=seed
        )
        assert_reports_identical(ref, inc)

    @pytest.mark.parametrize("decomposition", ["balancing", "root_fixing"])
    def test_ablation_decompositions(self, decomposition):
        problem = build_workload("powerlaw-trees", 24, seed=5)
        ref, inc = both_engines(
            solve_unit_trees, problem, epsilon=0.2, mis="greedy", seed=5,
            decomposition=decomposition,
        )
        assert_reports_identical(ref, inc)


class TestUnitLines:
    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_wide_vod(self, mis, seed):
        # Wide instances run the unit-height algorithm verbatim
        # (edge-disjointness is the right relaxation, Section 6).
        problem = build_workload("wide-vod-lines", 20, seed=seed)
        ref, inc = both_engines(
            solve_unit_lines, problem, epsilon=0.2, mis=mis, seed=seed,
            allow_heights=True,
        )
        assert_reports_identical(ref, inc)


class TestNarrowAlgorithms:
    @pytest.mark.parametrize("mis", ORACLES)
    def test_narrow_trees(self, mis):
        problem = random_tree_problem(
            random_forest(20, 2, seed=3), m=14, seed=4,
            height_profile="narrow", hmin=0.2,
        )
        ref, inc = both_engines(
            solve_narrow_trees, problem, epsilon=0.25, mis=mis, seed=3
        )
        assert_reports_identical(ref, inc)

    @pytest.mark.parametrize("mis", ORACLES)
    def test_narrow_lines(self, mis):
        problem = build_workload("bursty-lines", 20, seed=2)
        ref, inc = both_engines(
            solve_narrow_lines, problem, epsilon=0.3, mis=mis, seed=2
        )
        assert_reports_identical(ref, inc)


class TestArbitraryHeights:
    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("name", ["figure2", "sparse-access-forest"])
    def test_trees(self, name, mis):
        problem = build_workload(name, 30, seed=6)
        ref, inc = both_engines(
            solve_arbitrary_trees, problem, epsilon=0.25, mis=mis, seed=6
        )
        assert_reports_identical(ref, inc)

    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize("name", ["figure1", "bursty-lines"])
    def test_lines(self, name, mis):
        problem = build_workload(name, 20, seed=8)
        ref, inc = both_engines(
            solve_arbitrary_lines, problem, epsilon=0.3, mis=mis, seed=8
        )
        assert_reports_identical(ref, inc)


class TestSequentialAndBaselines:
    @pytest.mark.parametrize("name", ["figure6", "powerlaw-trees"])
    def test_sequential(self, name):
        problem = build_workload(name, 24, seed=9)
        ref, inc = both_engines(solve_sequential, problem)
        assert_reports_identical(ref, inc)

    @pytest.mark.parametrize("mis", ORACLES)
    def test_ps_unit_lines(self, mis):
        problem = build_workload("wide-vod-lines", 16, seed=10)
        ref, inc = both_engines(
            solve_ps_unit_lines, problem, epsilon=0.1, mis=mis, seed=10,
            allow_heights=True,
        )
        assert_reports_identical(ref, inc)

    def test_ps_arbitrary_lines(self):
        problem = build_workload("bursty-lines", 18, seed=11)
        ref, inc = both_engines(
            solve_ps_arbitrary_lines, problem, epsilon=0.1, mis="greedy", seed=11
        )
        assert_reports_identical(ref, inc)


class TestPhase2EngineMatrix:
    """The full second-phase grid: every admission engine must be
    bit-identical to the reference pop under every first-phase engine
    and every oracle -- the acceptance matrix of the admission seam."""

    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize(
        "engine", ["reference", "incremental", "parallel", "vectorized"]
    )
    @pytest.mark.parametrize("phase2", ["sliced", "vectorized"])
    def test_forest_matrix(self, phase2, engine, mis):
        problem = build_workload("multi-tenant-forest", 60, seed=12)
        workers = {"workers": 2} if engine == "parallel" else {}
        base = solve_unit_trees(
            problem, epsilon=0.2, mis=mis, seed=12, engine=engine, **workers
        )
        alt = solve_unit_trees(
            problem, epsilon=0.2, mis=mis, seed=12, engine=engine,
            phase2_engine=phase2, **workers
        )
        assert_reports_identical(base, alt)

    @pytest.mark.parametrize("mis", ORACLES)
    @pytest.mark.parametrize(
        "engine", ["reference", "incremental", "parallel", "vectorized"]
    )
    @pytest.mark.parametrize("phase2", ["sliced", "vectorized"])
    def test_lines_matrix(self, phase2, engine, mis):
        problem = build_workload("bursty-lines", 20, seed=8)
        workers = {"workers": 2} if engine == "parallel" else {}
        base = solve_arbitrary_lines(
            problem, epsilon=0.3, mis=mis, seed=8, engine=engine, **workers
        )
        alt = solve_arbitrary_lines(
            problem, epsilon=0.3, mis=mis, seed=8, engine=engine,
            phase2_engine=phase2, **workers
        )
        assert_reports_identical(base, alt)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sliced_backends_identical(self, backend):
        # The sliced pop's substrate must never change the artifact;
        # the process backend additionally proves admission jobs pickle.
        problem = build_workload("multi-tenant-forest", 60, seed=3)
        base = solve_unit_trees(
            problem, epsilon=0.2, mis="greedy", seed=3, engine="incremental"
        )
        alt = solve_unit_trees(
            problem, epsilon=0.2, mis="greedy", seed=3, engine="incremental",
            phase2_engine="sliced", workers=2, backend=backend,
        )
        assert_reports_identical(base, alt)


class TestEngineValidation:
    def test_unknown_engine_rejected_early(self):
        problem = scenario("figure6")
        with pytest.raises(ValueError, match="unknown engine"):
            solve_unit_trees(problem, engine="warp")

    def test_unknown_phase2_engine_rejected_early(self):
        problem = scenario("figure6")
        with pytest.raises(ValueError, match="unknown phase2 engine"):
            solve_unit_trees(problem, phase2_engine="warp")

    def test_run_two_phase_rejects_unknown_engine(self):
        from repro.algorithms.base import tree_layouts
        from repro.core.dual import UnitRaise
        from repro.core.framework import run_two_phase

        problem = scenario("figure6")
        layout, _ = tree_layouts(problem, "ideal")
        with pytest.raises(ValueError, match="unknown engine"):
            run_two_phase(
                problem.instances, layout, UnitRaise(), [0.9], engine="turbo"
            )

    def test_validation_is_single_sourced(self):
        # algorithms.base delegates to the framework's validator, so the
        # two error sites must produce the very same message.
        from repro.algorithms.base import validate_engine as base_validate
        from repro.core.framework import validate_engine as fw_validate

        with pytest.raises(ValueError) as base_err:
            base_validate("warp")
        with pytest.raises(ValueError) as fw_err:
            fw_validate("warp")
        assert str(base_err.value) == str(fw_err.value)
        assert base_validate("parallel") == "parallel"

    def test_workers_rejected_for_serial_engines(self):
        problem = scenario("figure6")
        with pytest.raises(ValueError, match="workers"):
            solve_unit_trees(problem, engine="incremental", workers=2)


class TestWorkSavings:
    def test_incremental_does_strictly_fewer_checks_at_scale(self):
        problem = build_workload("bursty-lines", 40, seed=12)
        ref, inc = both_engines(
            solve_narrow_lines, problem, epsilon=0.3, mis="greedy", seed=12
        )
        assert_reports_identical(ref, inc)
        assert (
            inc.result.counters.satisfaction_checks
            < ref.result.counters.satisfaction_checks
        )
        assert ref.result.counters.satisfaction_checks > 0
        assert inc.result.counters.adjacency_touches > 0

    def test_parallel_sliced_state_touches_no_more_adjacency(self):
        # The plan hands each epoch only its group's conflict adjacency,
        # so the parallel engine can never touch more entries than the
        # incremental engine's global view -- and on workloads with
        # cross-epoch conflict mass it touches strictly fewer.
        problem = build_workload("powerlaw-trees", 60, seed=13)
        inc = solve_unit_trees(
            problem, epsilon=0.2, mis="greedy", seed=13, engine="incremental"
        )
        par = solve_unit_trees(
            problem, epsilon=0.2, mis="greedy", seed=13,
            engine="parallel", workers=2,
        )
        assert_reports_identical(inc, par)
        assert (
            par.result.counters.adjacency_touches
            <= inc.result.counters.adjacency_touches
        )
        assert (
            par.result.counters.satisfaction_checks
            == inc.result.counters.satisfaction_checks
        )
