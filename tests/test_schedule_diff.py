"""Schedule-diff egress: tables, deltas, the pusher/follower pair.

The contract under test: for *any* pair of schedule tables,
``apply_delta(old, diff_tables(old, new)) == new`` with every digest
check passing; any tampering -- wrong base, phantom removal, duplicate
addition, corrupted target -- raises :class:`DeltaSyncError` instead of
silently desynchronizing; and the :class:`SchedulePusher` /
:class:`ScheduleFollower` pair keeps a subscriber bit-identical to the
server's table across full syncs and delta pushes, including after a
JSON wire round-trip of every payload.
"""
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import solve_auto
from repro.service import (
    DeltaSyncError,
    ScheduleFollower,
    SchedulePusher,
    apply_delta,
    diff_tables,
    normalize_table,
    schedule_table,
    table_digest,
)
from repro.workloads import build_workload


def cell(i, demand=None, network=0, profit=1.5, height=0.25):
    return (i, demand if demand is not None else i, network, profit, height)


def cells_strategy():
    """Random tables: unique instance ids, JSON-representable floats."""
    return st.lists(
        st.builds(
            cell,
            i=st.integers(0, 40),
            demand=st.integers(0, 40),
            network=st.integers(0, 3),
            profit=st.floats(0, 100, allow_nan=False, width=32),
            height=st.floats(0, 1, allow_nan=False, width=32),
        ),
        max_size=25,
        unique_by=lambda c: c[0],
    )


def wire_trip(payload: dict) -> dict:
    """A payload as the far end of a JSON socket would see it."""
    return json.loads(json.dumps(payload))


class TestTables:
    def test_schedule_table_flattens_a_real_report(self):
        report = solve_auto(
            build_workload("bursty-lines", 14, seed=1),
            mis="greedy", epsilon=0.25, seed=1,
        )
        table = schedule_table(report)
        assert table, "a solved workload selects something"
        assert all(len(row) == 5 for row in table)
        ids = [row[0] for row in table]
        assert ids == sorted(ids)
        assert abs(sum(row[3] for row in table) - report.profit) < 1e-9

    def test_digest_survives_a_json_round_trip(self):
        table = [cell(3), cell(1), cell(2, profit=7.25)]
        assert table_digest(json.loads(json.dumps(table))) == table_digest(table)

    def test_normalize_rejects_malformed_rows(self):
        with pytest.raises(DeltaSyncError, match="5 fields"):
            normalize_table([[1, 2, 3]])


class TestDiffApply:
    def test_identical_tables_diff_to_nothing(self):
        table = [cell(i) for i in range(5)]
        delta = diff_tables(table, table)
        assert delta.cells_changed == 0
        assert delta.base_digest == delta.target_digest
        assert apply_delta(table, delta) == normalize_table(table)

    def test_disjoint_tables_diff_to_everything(self):
        old = [cell(i) for i in range(4)]
        new = [cell(i) for i in range(10, 13)]
        delta = diff_tables(old, new)
        assert len(delta.removed) == 4 and len(delta.added) == 3
        assert apply_delta(old, delta) == normalize_table(new)

    @settings(max_examples=50, deadline=None)
    @given(old=cells_strategy(), new=cells_strategy())
    def test_apply_diff_reproduces_new_for_any_pair(self, old, new):
        delta = diff_tables(old, new)
        assert apply_delta(old, delta) == normalize_table(new)
        # Egress is O(symmetric difference), never O(table).
        sym = len(set(normalize_table(old)) ^ set(normalize_table(new)))
        assert delta.cells_changed == sym

    def test_wrong_base_raises(self):
        delta = diff_tables([cell(1)], [cell(2)])
        with pytest.raises(DeltaSyncError, match="diverged"):
            apply_delta([cell(3)], delta)

    def test_tampered_delta_raises_not_corrupts(self):
        from repro.service import ScheduleDelta

        old, new = [cell(1), cell(2)], [cell(2), cell(3)]
        good = diff_tables(old, new)
        phantom = ScheduleDelta(
            base_digest=good.base_digest, target_digest=good.target_digest,
            added=good.added, removed=(cell(9),),
        )
        with pytest.raises(DeltaSyncError, match="absent"):
            apply_delta(old, phantom)
        duplicate = ScheduleDelta(
            base_digest=good.base_digest, target_digest=good.target_digest,
            added=(cell(2),), removed=(),
        )
        with pytest.raises(DeltaSyncError, match="already-present"):
            apply_delta(old, duplicate)
        corrupt = ScheduleDelta(
            base_digest=good.base_digest, target_digest="0" * 16,
            added=good.added, removed=good.removed,
        )
        with pytest.raises(DeltaSyncError, match="target-digest"):
            apply_delta(old, corrupt)


class TestPusherFollower:
    def test_full_then_delta_then_forced_full(self):
        pusher, follower = SchedulePusher(), ScheduleFollower()
        t1 = [cell(i) for i in range(6)]
        t2 = t1[:-1] + [cell(9)]
        first = wire_trip(pusher.push("sub", t1))
        assert first["mode"] == "full"
        assert follower.apply(first) == normalize_table(t1)
        second = wire_trip(pusher.push("sub", t2))
        assert second["mode"] == "delta"
        assert len(second["added"]) == 1 and len(second["removed"]) == 1
        assert follower.apply(second) == normalize_table(t2)
        forced = wire_trip(pusher.push("sub", t2, full_sync=True))
        assert forced["mode"] == "full"
        assert follower.apply(forced) == normalize_table(t2)
        stats = pusher.stats_snapshot()
        assert stats == {
            "subscriptions": 1, "full_syncs": 2, "delta_pushes": 1,
            "cells_pushed": len(t1) + 2 + len(t2), "verify_fallbacks": 0,
        }
        assert follower.deltas_applied == 1
        assert follower.full_syncs_seen == 2

    def test_forget_resets_to_full_sync(self):
        pusher = SchedulePusher()
        table = [cell(1)]
        assert pusher.push("s", table)["mode"] == "full"
        assert pusher.push("s", table)["mode"] == "delta"
        pusher.forget("s")
        assert pusher.push("s", table)["mode"] == "full"

    def test_subscriptions_are_independent(self):
        pusher = SchedulePusher()
        t1, t2 = [cell(1)], [cell(2)]
        pusher.push("a", t1)
        assert pusher.push("b", t2)["mode"] == "full", (
            "a new key must not inherit another subscription's base"
        )
        assert len(pusher) == 2

    def test_follower_refuses_delta_before_full(self):
        pusher, follower = SchedulePusher(), ScheduleFollower()
        pusher.push("s", [cell(1)])
        delta = pusher.push("s", [cell(2)])
        with pytest.raises(DeltaSyncError, match="before any full"):
            follower.apply(delta)

    def test_random_churn_stays_bit_identical(self):
        rng = random.Random(7)
        pusher, follower = SchedulePusher(), ScheduleFollower()
        table = {i: cell(i) for i in range(8)}
        for step in range(30):
            for _ in range(rng.randrange(3)):
                table.pop(rng.choice(list(table)), None)
            for _ in range(rng.randrange(3)):
                i = rng.randrange(100)
                table[i] = cell(i, profit=rng.random() * 10)
            payload = wire_trip(
                pusher.push("s", list(table.values()),
                            full_sync=(step % 11 == 10))
            )
            assert follower.apply(payload) == normalize_table(table.values())
        assert pusher.delta_pushes > 0 and pusher.verify_fallbacks == 0
