"""Tests for layered decompositions (Lemma 4.2/4.3 and Section 7)."""
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demand import Demand, WindowDemand
from repro.core.problem import Problem
from repro.lines.layered import layered_by_length
from repro.lines.line import instance_mid_slot, instance_slots
from repro.trees.balancing import build_balancing
from repro.trees.ideal import build_ideal
from repro.trees.layered import (
    LayeredDecompositionError,
    bending_point,
    layered_from_tree_decomposition,
    wings,
)
from repro.trees.root_fixing import build_root_fixing
from repro.trees.tree import make_line_network
from repro.workloads.scenarios import figure6_network
from repro.workloads.trees import random_tree


def tree_problem(net, pairs):
    demands = [Demand(i, u, v, profit=1.0) for i, (u, v) in enumerate(pairs)]
    return Problem(networks={net.network_id: net}, demands=demands)


def random_pairs(net, k, seed):
    rng = random.Random(seed)
    return [tuple(rng.sample(net.vertices, 2)) for _ in range(k)]


class TestWingsAndBending:
    def test_figure6_wings(self):
        """Figure 6: node 4 has one wing <4,2>; node 8 has <5,8>, <8,13>."""
        net = figure6_network()
        p = tree_problem(net, [(4, 13)])
        (d,) = p.instances
        assert set(wings(d, 4)) == {(0, 2, 4)}
        assert set(wings(d, 8)) == {(0, 5, 8), (0, 8, 13)}

    def test_figure6_bending_points(self):
        """Figure 6: bending points of <4,13> w.r.t. 3 and 9 are 2 and 5."""
        net = figure6_network()
        p = tree_problem(net, [(4, 13)])
        (d,) = p.instances
        assert bending_point(net, d, 3) == 2
        assert bending_point(net, d, 9) == 5

    def test_bending_point_on_path_is_itself(self):
        net = figure6_network()
        p = tree_problem(net, [(4, 13)])
        (d,) = p.instances
        assert bending_point(net, d, 5) == 5

    def test_wings_requires_on_path_vertex(self):
        net = figure6_network()
        p = tree_problem(net, [(4, 13)])
        (d,) = p.instances
        with pytest.raises(LayeredDecompositionError):
            wings(d, 7)

    def test_bending_point_is_closest_path_vertex(self):
        net = random_tree(30, seed=5)
        p = tree_problem(net, random_pairs(net, 5, seed=6))
        rng = random.Random(7)
        for d in p.instances:
            for _ in range(5):
                u = rng.choice(net.vertices)
                y = bending_point(net, d, u)
                dist_y = net.distance(u, y)
                assert all(
                    dist_y <= net.distance(u, x) for x in d.path_vertex_seq
                )


BUILDERS = {
    "root_fixing": build_root_fixing,
    "balancing": build_balancing,
    "ideal": build_ideal,
}


class TestLemma42Transform:
    @pytest.mark.parametrize("builder_name", list(BUILDERS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_layered_property_holds(self, builder_name, seed):
        net = random_tree(22, seed=seed)
        p = tree_problem(net, random_pairs(net, 18, seed=seed + 50))
        td = BUILDERS[builder_name](net)
        layered = layered_from_tree_decomposition(td, p.instances)
        layered.verify(p.instances)

    @pytest.mark.parametrize("builder_name", list(BUILDERS))
    def test_delta_bound_2_theta_plus_1(self, builder_name):
        net = random_tree(40, seed=9)
        p = tree_problem(net, random_pairs(net, 30, seed=10))
        td = BUILDERS[builder_name](net)
        layered = layered_from_tree_decomposition(td, p.instances)
        assert layered.critical_set_size <= 2 * (td.pivot_size + 1)

    def test_lemma_43_ideal_gives_delta_six_log_length(self):
        for seed in range(4):
            net = random_tree(60, seed=seed)
            p = tree_problem(net, random_pairs(net, 40, seed=seed + 90))
            td = build_ideal(net)
            layered = layered_from_tree_decomposition(td, p.instances)
            assert layered.critical_set_size <= 6
            assert layered.length <= 2 * math.ceil(math.log2(60)) + 1
            layered.verify(p.instances)

    def test_groups_reverse_capture_depth(self):
        net = figure6_network()
        p = tree_problem(net, [(4, 13), (9, 12)])
        td = build_root_fixing(net, root=1)
        layered = layered_from_tree_decomposition(td, p.instances)
        d_4_13, d_9_12 = p.instances
        # <9,12> is captured deeper than <4,13> => earlier group.
        assert layered.group_of[d_9_12.instance_id] < layered.group_of[d_4_13.instance_id]

    def test_rejects_foreign_instance(self):
        net = random_tree(10, seed=0)
        other = random_tree(10, seed=1, network_id=1)
        p = Problem(
            networks={0: net, 1: other},
            demands=[Demand(0, 0, 5, 1.0)],
            access={0: (1,)},
        )
        td = build_ideal(net)
        with pytest.raises(LayeredDecompositionError):
            layered_from_tree_decomposition(td, p.instances)

    def test_critical_edges_on_path(self):
        net = random_tree(30, seed=3)
        p = tree_problem(net, random_pairs(net, 20, seed=4))
        td = build_ideal(net)
        layered = layered_from_tree_decomposition(td, p.instances)
        for d in p.instances:
            assert set(layered.pi[d.instance_id]) <= d.path_edges


def line_problem(n_slots, jobs):
    demands = [
        WindowDemand(i, release=s, deadline=e, processing=e - s + 1, profit=1.0)
        for i, (s, e) in enumerate(jobs)
    ]
    return Problem(networks={0: make_line_network(0, n_slots)}, demands=demands)


class TestLineLayered:
    def test_delta_at_most_three(self):
        p = line_problem(60, [(0, 29), (5, 9), (10, 11), (30, 59), (3, 3)])
        layered = layered_by_length(0, p.instances)
        assert layered.critical_set_size <= 3
        layered.verify(p.instances)

    def test_groups_by_length_class(self):
        p = line_problem(64, [(0, 0), (0, 1), (0, 3), (0, 7), (0, 15)])
        layered = layered_by_length(0, p.instances)
        groups = [layered.group_of[d.instance_id] for d in p.instances]
        assert groups == [1, 2, 3, 4, 5]

    def test_same_length_same_group(self):
        p = line_problem(20, [(0, 4), (5, 9), (10, 14)])
        layered = layered_by_length(0, p.instances)
        gs = {layered.group_of[d.instance_id] for d in p.instances}
        assert gs == {1}

    def test_critical_edges_are_start_mid_end(self):
        p = line_problem(20, [(4, 11)])
        layered = layered_by_length(0, p.instances)
        (d,) = p.instances
        s, e = instance_slots(d)
        mid = instance_mid_slot(d)
        assert (s, e, mid) == (4, 11, 7)
        assert set(layered.pi[d.instance_id]) == {(0, 4, 5), (0, 7, 8), (0, 11, 12)}

    def test_unit_length_instance_single_critical(self):
        p = line_problem(10, [(3, 3)])
        layered = layered_by_length(0, p.instances)
        (d,) = p.instances
        assert layered.pi[d.instance_id] == ((0, 3, 4),)

    def test_empty_network(self):
        layered = layered_by_length(5, [])
        assert layered.length == 0 and layered.critical_set_size == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_layered_property_random(self, seed):
        rng = random.Random(seed)
        jobs = []
        for _ in range(25):
            s = rng.randrange(0, 50)
            e = min(49, s + rng.randrange(0, 25))
            jobs.append((s, e))
        p = line_problem(50, jobs)
        layered = layered_by_length(0, p.instances)
        layered.verify(p.instances)
        assert layered.critical_set_size <= 3


@st.composite
def line_jobs(draw):
    n_slots = draw(st.integers(min_value=4, max_value=80))
    k = draw(st.integers(min_value=1, max_value=20))
    jobs = []
    for _ in range(k):
        s = draw(st.integers(min_value=0, max_value=n_slots - 1))
        e = draw(st.integers(min_value=s, max_value=n_slots - 1))
        jobs.append((s, e))
    return n_slots, jobs


class TestLineLayeredProperties:
    @given(line_jobs())
    @settings(max_examples=50, deadline=None)
    def test_property_always_holds(self, data):
        n_slots, jobs = data
        p = line_problem(n_slots, jobs)
        layered = layered_by_length(0, p.instances)
        layered.verify(p.instances)
        assert layered.critical_set_size <= 3
