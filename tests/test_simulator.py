"""Tests for the synchronous message-passing simulator."""
import pytest

from repro.distributed.message import Message, payload_size
from repro.distributed.simulator import Node, SyncSimulator, TopologyViolation


class EchoNode(Node):
    """Sends one ping to each neighbor at round 0, echoes pongs back."""

    def __init__(self, node_id, neighbors):
        super().__init__(node_id)
        self.neighbors = neighbors
        self.received = []
        self._done = False

    def on_round(self, round_no, inbox):
        self.received.extend(inbox)
        if round_no == 0:
            return [Message(self.node_id, nb, "ping") for nb in self.neighbors]
        out = []
        for msg in inbox:
            if msg.kind == "ping":
                out.append(Message(self.node_id, msg.src, "pong"))
        if round_no >= 2:
            self._done = True
        return out

    @property
    def halted(self):
        return self._done


class RogueNode(Node):
    def __init__(self, node_id, target, forge_src=False):
        super().__init__(node_id)
        self.target = target
        self.forge_src = forge_src

    def on_round(self, round_no, inbox):
        src = self.node_id + 99 if self.forge_src else self.node_id
        return [Message(src, self.target, "attack")]


class IdleNode(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self._halted = False

    def on_round(self, round_no, inbox):
        self._halted = True
        return []

    @property
    def halted(self):
        return self._halted


class TestSimulator:
    def test_ping_pong_delivery(self):
        nodes = {0: EchoNode(0, [1]), 1: EchoNode(1, [0])}
        sim = SyncSimulator(nodes, [(0, 1)])
        metrics = sim.run(max_rounds=10)
        kinds0 = [m.kind for m in nodes[0].received]
        assert "ping" in kinds0 and "pong" in kinds0
        assert metrics.messages == 4  # 2 pings + 2 pongs
        assert metrics.rounds >= 3

    def test_one_round_latency(self):
        nodes = {0: EchoNode(0, [1]), 1: EchoNode(1, [0])}
        sim = SyncSimulator(nodes, [(0, 1)])
        sim.run(max_rounds=10)
        # Round 0 sends; nothing can have been received in round 0.
        assert all(m.kind == "ping" for m in nodes[0].received[:1])

    def test_topology_enforced(self):
        nodes = {0: RogueNode(0, target=2), 1: IdleNode(1), 2: IdleNode(2)}
        sim = SyncSimulator(nodes, [(0, 1)])
        with pytest.raises(TopologyViolation):
            sim.run(max_rounds=3)

    def test_src_forgery_rejected(self):
        nodes = {0: RogueNode(0, target=1, forge_src=True), 1: IdleNode(1)}
        sim = SyncSimulator(nodes, [(0, 1)])
        with pytest.raises(TopologyViolation):
            sim.run(max_rounds=3)

    def test_unknown_link_endpoint(self):
        with pytest.raises(KeyError):
            SyncSimulator({0: IdleNode(0)}, [(0, 7)])

    def test_halts_when_all_idle(self):
        nodes = {0: IdleNode(0), 1: IdleNode(1)}
        sim = SyncSimulator(nodes, [(0, 1)])
        metrics = sim.run(max_rounds=100)
        assert metrics.rounds == 1

    def test_round_budget_enforced(self):
        class Chatter(Node):
            def on_round(self, round_no, inbox):
                return [Message(self.node_id, 1 - self.node_id, "hi")]

        nodes = {0: Chatter(0), 1: Chatter(1)}
        sim = SyncSimulator(nodes, [(0, 1)])
        with pytest.raises(RuntimeError):
            sim.run(max_rounds=5)

    def test_neighbors_accessor(self):
        nodes = {0: IdleNode(0), 1: IdleNode(1), 2: IdleNode(2)}
        sim = SyncSimulator(nodes, [(0, 1), (1, 2)])
        assert sim.neighbors(1) == frozenset({0, 2})


class TestPayloadSize:
    def test_scalars(self):
        assert payload_size(None) == 0
        assert payload_size(3) == 1
        assert payload_size("abc") == 1

    def test_nested(self):
        assert payload_size(((1, 2), (3, 4))) == 4
        assert payload_size({"a": 1, "b": (2, 3)}) == 5
