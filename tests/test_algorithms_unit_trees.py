"""Tests for Theorem 5.3 (unit heights, trees)."""
import pytest

from repro.algorithms.unit_trees import solve_unit_trees
from repro.baselines.exact import solve_exact
from repro.baselines.tree_dp import solve_tree_dp
from repro.core.interference import check_interference
from repro.core.lp import check_scaled_dual_feasible
from repro.workloads import figure2_problem, figure6_problem, random_tree_problem
from repro.workloads.trees import random_forest, random_tree


class TestBasics:
    def test_rejects_heights_by_default(self):
        problem = figure2_problem()  # heights < 1
        with pytest.raises(ValueError):
            solve_unit_trees(problem)

    def test_allows_heights_when_asked(self):
        problem = figure2_problem()
        report = solve_unit_trees(problem, allow_heights=True)
        report.solution.verify()

    def test_unknown_decomposition(self):
        with pytest.raises(ValueError):
            solve_unit_trees(figure2_problem(unit_height=True), decomposition="magic")

    def test_figure2_selects_exactly_one(self):
        problem = figure2_problem(unit_height=True)
        report = solve_unit_trees(problem, epsilon=0.05, mis="greedy")
        # All three demands share edge <4,5>: only one can be scheduled.
        assert len(report.solution) == 1
        assert report.profit == 1.0

    def test_figure6_problem(self):
        problem = figure6_problem()
        report = solve_unit_trees(problem, epsilon=0.05, mis="greedy")
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert report.profit >= opt / report.guarantee - 1e-9


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(6))
    def test_ratio_within_7_eps(self, seed):
        problem = random_tree_problem(
            random_forest(22, 2, seed=seed), m=13, seed=seed + 31
        )
        report = solve_unit_trees(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6
        assert report.guarantee <= 7.0 / (1 - 0.1) + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_certificate_bounds_opt(self, seed):
        problem = random_tree_problem(
            random_forest(20, 2, seed=seed + 100), m=12, seed=seed
        )
        report = solve_unit_trees(problem, epsilon=0.1, seed=seed)
        opt = solve_exact(problem).profit
        assert report.certified_upper_bound >= opt - 1e-6

    def test_single_tree_against_dp(self):
        problem = random_tree_problem({0: random_tree(30, seed=8)}, m=16, seed=9)
        report = solve_unit_trees(problem, epsilon=0.05, seed=1)
        opt = solve_tree_dp(problem)
        assert report.profit <= opt + 1e-6
        assert opt <= report.guarantee * report.profit + 1e-6

    @pytest.mark.parametrize("decomposition", ["ideal", "balancing", "root_fixing"])
    def test_all_decompositions_sound(self, decomposition):
        problem = random_tree_problem(
            random_forest(18, 2, seed=5), m=10, seed=6
        )
        report = solve_unit_trees(
            problem, epsilon=0.1, seed=2, decomposition=decomposition
        )
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6


class TestRunInternals:
    def test_interference_and_slackness(self):
        problem = random_tree_problem(
            random_forest(20, 2, seed=17), m=12, seed=18
        )
        report = solve_unit_trees(problem, epsilon=0.1, seed=3)
        result = report.result
        check_interference(result.events)
        check_scaled_dual_feasible(result.dual, problem.instances, result.slackness)
        assert result.slackness >= 0.9

    def test_delta_at_most_six(self):
        problem = random_tree_problem(
            random_forest(40, 2, seed=21), m=20, seed=22
        )
        report = solve_unit_trees(problem, epsilon=0.2, seed=4)
        assert report.result.layout.critical_set_size <= 6

    @pytest.mark.parametrize("mis", ["luby", "greedy", "hash"])
    def test_mis_oracles_interchangeable(self, mis):
        problem = random_tree_problem(
            random_forest(16, 2, seed=23), m=10, seed=24
        )
        report = solve_unit_trees(problem, epsilon=0.2, seed=5, mis=mis)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6

    def test_epsilon_tightens_slackness(self):
        problem = random_tree_problem(
            random_forest(16, 2, seed=25), m=8, seed=26
        )
        loose = solve_unit_trees(problem, epsilon=0.5, seed=6)
        tight = solve_unit_trees(problem, epsilon=0.02, seed=6)
        assert tight.result.slackness > loose.result.slackness
        assert tight.guarantee < loose.guarantee

    def test_accessibility_respected(self):
        problem = random_tree_problem(
            random_forest(20, 3, seed=27), m=12, seed=28, access_size=1
        )
        report = solve_unit_trees(problem, epsilon=0.2, seed=7)
        for d in report.solution.selected:
            assert d.network_id in problem.access[d.demand_id]
