"""Tests for dual state and the raise rules."""
import pytest

from repro.core.dual import DualState, HeightRaise, UnitRaise
from repro.core.types import EPS
from tests.test_demand import make_instance


class TestDualState:
    def test_initially_zero(self):
        d = make_instance(0, 0, 0, [0, 1, 2], profit=3.0)
        dual = DualState()
        assert dual.lhs(d) == 0.0
        assert dual.slack(d) == 3.0
        assert not dual.is_satisfied(d, 0.5)

    def test_lhs_unit(self):
        d = make_instance(0, 0, 0, [0, 1, 2], profit=3.0)
        dual = DualState()
        dual.alpha[0] = 0.5
        dual.beta[(0, 0, 1)] = 1.0
        dual.beta[(0, 1, 2)] = 0.25
        dual.beta[(0, 5, 6)] = 9.0  # off-path, ignored
        assert dual.lhs(d) == pytest.approx(1.75)

    def test_lhs_height_rule(self):
        d = make_instance(0, 0, 0, [0, 1, 2], profit=3.0, height=0.25)
        dual = DualState(use_height_rule=True)
        dual.alpha[0] = 0.5
        dual.beta[(0, 0, 1)] = 2.0
        assert dual.lhs(d) == pytest.approx(0.5 + 0.25 * 2.0)

    def test_tau_satisfaction(self):
        d = make_instance(0, 0, 0, [0, 1], profit=2.0)
        dual = DualState()
        dual.alpha[0] = 1.0
        assert dual.is_satisfied(d, 0.5)
        assert not dual.is_satisfied(d, 0.6)

    def test_value(self):
        dual = DualState()
        dual.alpha[0] = 1.0
        dual.beta[(0, 0, 1)] = 2.5
        assert dual.value() == pytest.approx(3.5)

    def test_scaled_value_validates(self):
        dual = DualState()
        with pytest.raises(ValueError):
            dual.scaled_value(0.0)
        with pytest.raises(ValueError):
            dual.scaled_value(1.5)


class TestUnitRaise:
    def test_raise_makes_tight(self):
        d = make_instance(0, 0, 0, [0, 1, 2, 3], profit=4.0)
        dual = DualState()
        rule = UnitRaise()
        critical = ((0, 0, 1), (0, 2, 3))
        delta = rule.apply(dual, d, critical)
        assert delta == pytest.approx(4.0 / 3)
        assert dual.lhs(d) == pytest.approx(4.0)
        assert dual.slack(d) == pytest.approx(0.0, abs=1e-12)

    def test_second_raise_is_noop(self):
        d = make_instance(0, 0, 0, [0, 1], profit=1.0)
        dual = DualState()
        rule = UnitRaise()
        rule.apply(dual, d, ((0, 0, 1),))
        assert rule.apply(dual, d, ((0, 0, 1),)) == 0.0

    def test_no_alpha_variant(self):
        d = make_instance(0, 0, 0, [0, 1, 2], profit=2.0)
        dual = DualState()
        rule = UnitRaise(use_alpha=False)
        delta = rule.apply(dual, d, ((0, 0, 1), (0, 1, 2)))
        assert delta == pytest.approx(1.0)
        assert 0 not in dual.alpha
        assert dual.lhs(d) == pytest.approx(2.0)

    def test_no_alpha_requires_critical_edges(self):
        d = make_instance(0, 0, 0, [0, 1], profit=1.0)
        rule = UnitRaise(use_alpha=False)
        with pytest.raises(ValueError):
            rule.apply(DualState(), d, ())

    def test_objective_increase_factor(self):
        assert UnitRaise().objective_increase_factor(6) == 7
        assert UnitRaise(use_alpha=False).objective_increase_factor(2) == 2

    def test_partial_progress_then_tight(self):
        d = make_instance(0, 0, 0, [0, 1, 2], profit=2.0)
        dual = DualState()
        dual.beta[(0, 0, 1)] = 0.5  # someone else contributed
        rule = UnitRaise()
        rule.apply(dual, d, ((0, 1, 2),))
        assert dual.lhs(d) == pytest.approx(2.0)


class TestHeightRaise:
    @pytest.mark.parametrize("height", [0.1, 0.25, 0.5])
    @pytest.mark.parametrize("n_critical", [1, 3, 6])
    def test_raise_makes_tight(self, height, n_critical):
        verts = list(range(n_critical + 2))
        d = make_instance(0, 0, 0, verts, profit=5.0, height=height)
        dual = DualState(use_height_rule=True)
        rule = HeightRaise()
        critical = tuple(sorted(d.path_edges))[:n_critical]
        delta = rule.apply(dual, d, critical)
        assert delta == pytest.approx(5.0 / (1 + 2 * height * n_critical**2))
        assert dual.lhs(d) == pytest.approx(5.0)

    def test_beta_increment_is_2pi_delta(self):
        rule = HeightRaise()
        assert rule.beta_increment(0.5, 3) == pytest.approx(3.0)

    def test_objective_increase_factor(self):
        # alpha: delta; each of 6 betas: 12*delta -> 73*delta total.
        assert HeightRaise().objective_increase_factor(6) == pytest.approx(73.0)

    def test_raise_amount_recorded_in_value(self):
        d = make_instance(0, 0, 0, [0, 1, 2], profit=1.0, height=0.5)
        dual = DualState(use_height_rule=True)
        rule = HeightRaise()
        critical = tuple(sorted(d.path_edges))
        delta = rule.apply(dual, d, critical)
        expected = delta * rule.objective_increase_factor(len(critical))
        assert dual.value() == pytest.approx(expected)
