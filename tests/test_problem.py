"""Tests for the Problem model and instance expansion."""
import pytest

from repro.core.demand import Demand, WindowDemand
from repro.core.problem import Problem, ProblemError
from repro.trees.tree import TreeNetwork, make_line_network
from repro.workloads.trees import random_forest


@pytest.fixture
def two_trees():
    t0 = TreeNetwork(0, [(0, 1), (1, 2), (2, 3)])
    t1 = TreeNetwork(1, [(0, 2), (2, 1), (1, 3)])
    return {0: t0, 1: t1}


class TestValidation:
    def test_requires_networks(self):
        with pytest.raises(ProblemError):
            Problem(networks={}, demands=[Demand(0, 0, 1, 1.0)])

    def test_requires_demands(self, two_trees):
        with pytest.raises(ProblemError):
            Problem(networks=two_trees, demands=[])

    def test_unique_demand_ids(self, two_trees):
        with pytest.raises(ProblemError):
            Problem(
                networks=two_trees,
                demands=[Demand(0, 0, 1, 1.0), Demand(0, 1, 2, 1.0)],
            )

    def test_network_key_mismatch(self):
        with pytest.raises(ProblemError):
            Problem(
                networks={5: TreeNetwork(0, [(0, 1)])},
                demands=[Demand(0, 0, 1, 1.0)],
            )

    def test_unknown_access_network(self, two_trees):
        with pytest.raises(ProblemError):
            Problem(
                networks=two_trees,
                demands=[Demand(0, 0, 1, 1.0)],
                access={0: (9,)},
            )

    def test_empty_access(self, two_trees):
        with pytest.raises(ProblemError):
            Problem(
                networks=two_trees,
                demands=[Demand(0, 0, 1, 1.0)],
                access={0: ()},
            )

    def test_missing_endpoint_raises_at_expansion(self, two_trees):
        p = Problem(networks=two_trees, demands=[Demand(0, 0, 9, 1.0)])
        with pytest.raises(ProblemError):
            _ = p.instances


class TestExpansion:
    def test_default_access_is_everything(self, two_trees):
        p = Problem(networks=two_trees, demands=[Demand(0, 0, 3, 1.0)])
        assert p.access[0] == (0, 1)
        assert len(p.instances) == 2

    def test_point_to_point_paths_differ_by_network(self, two_trees):
        p = Problem(networks=two_trees, demands=[Demand(0, 0, 3, 1.0)])
        d0, d1 = p.instances
        assert d0.network_id == 0 and d1.network_id == 1
        assert d0.path_vertex_seq == (0, 1, 2, 3)
        assert d1.path_vertex_seq == (0, 2, 1, 3)

    def test_window_expansion_counts(self):
        line = make_line_network(0, 10)
        w = WindowDemand(0, release=2, deadline=7, processing=3, profit=1.0)
        p = Problem(networks={0: line}, demands=[w])
        # start slots 2..5 -> four instances
        assert len(p.instances) == 4
        assert [d.u for d in p.instances] == [2, 3, 4, 5]
        assert all(d.length == 3 for d in p.instances)

    def test_window_requires_line(self, two_trees):
        tree = TreeNetwork(0, [(0, 1), (0, 2), (0, 3)])
        w = WindowDemand(0, release=0, deadline=2, processing=1, profit=1.0)
        p = Problem(networks={0: tree}, demands=[w])
        with pytest.raises(ProblemError):
            _ = p.instances

    def test_window_clipped_by_timeline(self):
        line = make_line_network(0, 5)
        w = WindowDemand(0, release=3, deadline=4, processing=2, profit=1.0)
        p = Problem(networks={0: line}, demands=[w])
        assert len(p.instances) == 1  # only start 3 fits on 5 slots

    def test_instances_by_network(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[Demand(0, 0, 3, 1.0), Demand(1, 1, 2, 1.0)],
            access={0: (0,), 1: (0, 1)},
        )
        assert len(p.instances_by_network[0]) == 2
        assert len(p.instances_by_network[1]) == 1

    def test_instance_ids_unique_and_ordered(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[Demand(i, 0, 3, 1.0) for i in range(4)],
        )
        ids = [d.instance_id for d in p.instances]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestDerived:
    def test_profit_extremes(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[Demand(0, 0, 1, 4.0), Demand(1, 1, 2, 0.5)],
        )
        assert p.pmax == 4.0 and p.pmin == 0.5

    def test_hmin_and_unit(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[Demand(0, 0, 1, 1.0, height=0.3), Demand(1, 1, 2, 1.0)],
        )
        assert p.hmin == 0.3
        assert not p.is_unit_height

    def test_all_edges(self, two_trees):
        p = Problem(networks=two_trees, demands=[Demand(0, 0, 1, 1.0)])
        assert len(p.all_edges) == 6

    def test_demand_by_id(self, two_trees):
        p = Problem(networks=two_trees, demands=[Demand(7, 0, 1, 1.0)])
        assert p.demand_by_id(7).u == 0


class TestCommunication:
    def test_shared_resource_means_edge(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[Demand(0, 0, 1, 1.0), Demand(1, 1, 2, 1.0), Demand(2, 2, 3, 1.0)],
            access={0: (0,), 1: (0, 1), 2: (1,)},
        )
        assert p.communication_edges == ((0, 1), (1, 2))

    def test_disconnected_processors(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[Demand(0, 0, 1, 1.0), Demand(1, 1, 2, 1.0)],
            access={0: (0,), 1: (1,)},
        )
        assert p.communication_edges == ()

    def test_complete_when_shared(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[Demand(i, 0, 1, 1.0) for i in range(4)],
        )
        assert len(p.communication_edges) == 6


class TestSplitByWidth:
    def test_split(self, two_trees):
        p = Problem(
            networks=two_trees,
            demands=[
                Demand(0, 0, 1, 1.0, height=0.9),
                Demand(1, 1, 2, 1.0, height=0.2),
            ],
        )
        wide, narrow = p.split_by_width()
        assert [a.demand_id for a in wide.demands] == [0]
        assert [a.demand_id for a in narrow.demands] == [1]

    def test_split_requires_both(self, two_trees):
        p = Problem(networks=two_trees, demands=[Demand(0, 0, 1, 1.0, height=0.9)])
        assert p.has_wide and not p.has_narrow
        with pytest.raises(ProblemError):
            p.split_by_width()

    def test_restricted_to(self, two_trees):
        demands = [Demand(i, 0, 1, 1.0) for i in range(3)]
        p = Problem(networks=two_trees, demands=demands)
        sub = p.restricted_to(demands[:2])
        assert len(sub.demands) == 2
        assert sub.access[0] == p.access[0]


class TestForestGenerator:
    def test_forest_networks_share_vertices(self):
        forest = random_forest(12, 3, seed=0)
        assert set(forest) == {0, 1, 2}
        for nid, net in forest.items():
            assert net.network_id == nid
            assert net.n_vertices == 12
