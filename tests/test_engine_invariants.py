"""Property-based invariants of the first-phase engines.

On arbitrary seeded workloads, both engines must uphold the structural
facts the paper's proofs rest on: every stack batch is an independent
set of the conflict graph, the second-phase solution is
capacity-feasible, weak duality certifies ``certified_ratio >= 1``, and
every raise leaves the raised instance's dual constraint *tight* (the
property Lemma 3.1's charging argument needs).  A regression test pins
the progress guard: a non-progressing MIS oracle must abort with an
error naming the stalled (epoch, stage) after at most ``len(members)``
steps, not silently loop.
"""
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import line_layouts, tree_layouts
from repro.core.dual import DualState, HeightRaise, UnitRaise
from repro.core.framework import (
    ENGINES,
    InstanceLayout,
    geometric_thresholds,
    narrow_xi,
    run_first_phase,
    run_two_phase,
    unit_xi,
)
from repro.distributed.conflict import build_conflict_graph, is_independent
from repro.workloads import build_workload, scenario, workload_names

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Scale workloads paired with the raise rule / xi their heights allow.
TREE_UNIT = ("powerlaw-trees", "deep-trees")
LINE_NARROW = ("bursty-lines",)


def run_workload(name, size, seed, engine):
    """Run the two-phase framework on a registry workload."""
    problem = build_workload(name, size, seed=seed)
    if name in TREE_UNIT:
        layout, _ = tree_layouts(problem, "ideal")
        rule = UnitRaise()
        xi = unit_xi(max(layout.critical_set_size, 6))
    else:
        layout = line_layouts(problem)
        rule = HeightRaise()
        xi = narrow_xi(max(layout.critical_set_size, 3), problem.hmin)
    thresholds = geometric_thresholds(xi, 0.3)
    result = run_two_phase(
        problem.instances, layout, rule, thresholds,
        mis="greedy", seed=seed, engine=engine,
    )
    return problem, rule, result


workload_cases = st.tuples(
    st.sampled_from(TREE_UNIT + LINE_NARROW),
    st.integers(min_value=6, max_value=30),
    st.integers(min_value=0, max_value=2_000),
)


class TestStackAndSolution:
    @given(workload_cases)
    @settings(**COMMON)
    def test_stack_batches_are_independent_sets(self, case):
        name, size, seed = case
        problem, _, result = run_workload(name, size, seed, "incremental")
        adj = build_conflict_graph(problem.instances)
        for batch in result.stack:
            assert is_independent([d.instance_id for d in batch], adj)

    @given(workload_cases)
    @settings(**COMMON)
    def test_solution_capacity_feasible(self, case):
        name, size, seed = case
        _, _, result = run_workload(name, size, seed, "incremental")
        result.solution.verify()

    @given(workload_cases)
    @settings(**COMMON)
    def test_certified_ratio_at_least_one(self, case):
        name, size, seed = case
        _, _, result = run_workload(name, size, seed, "incremental")
        # Weak duality: val/lambda >= p(Opt) >= p(S), so the per-run
        # certificate can never claim better-than-optimal.
        assert result.certified_ratio >= 1.0 - 1e-9


class TestRaisesAreTight:
    @given(workload_cases)
    @settings(**COMMON)
    def test_each_raise_leaves_constraint_tight(self, case):
        name, size, seed = case
        _, rule, result = run_workload(name, size, seed, "incremental")
        replay = DualState(use_height_rule=rule.use_height_rule)
        for ev in result.events:
            d = ev.instance
            if rule.use_alpha:
                replay.alpha[d.demand_id] = (
                    replay.alpha.get(d.demand_id, 0.0) + ev.delta
                )
            inc = rule.beta_increment(ev.delta, len(ev.critical_edges))
            for e in ev.critical_edges:
                replay.beta[e] = replay.beta.get(e, 0.0) + inc
            assert abs(replay.slack(d)) <= 1e-6 * max(1.0, d.profit), (
                f"raise {ev.order} left instance {d.instance_id} non-tight"
            )
        # The replayed assignment is the run's final dual state.
        assert replay.alpha == pytest.approx(result.dual.alpha)
        assert replay.beta == pytest.approx(result.dual.beta)


def _stalling_oracle(candidates, adjacency, context=None):
    """A broken MIS oracle that never selects anything."""
    return set(), 0


class TestProgressGuard:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_stall_aborts_with_epoch_and_stage(self, engine):
        problem = scenario("figure2-unit")
        instances = problem.instances
        layout = InstanceLayout(
            group_of={d.instance_id: 1 for d in instances},
            pi={d.instance_id: () for d in instances},
            n_epochs=1,
        )
        with pytest.raises(RuntimeError) as excinfo:
            run_first_phase(
                instances, layout, UnitRaise(), [0.9], _stalling_oracle,
                engine=engine,
            )
        message = str(excinfo.value)
        assert "epoch 1" in message
        assert "stage 1" in message
        # The guard fires at len(members), not one step late.
        assert f"exceeded {len(instances)} steps" in message

    @pytest.mark.parametrize("engine", ENGINES)
    def test_guard_does_not_fire_on_healthy_runs(self, engine):
        # A real oracle satisfies >= 1 member per step, so even the
        # worst case (sequential: one raise per step) stays within the
        # guard.  max_steps_per_stage must respect the bound the guard
        # enforces.
        for name in workload_names(scale=True):
            size = 12
            problem = build_workload(name, size, seed=1)
            if name in TREE_UNIT:
                layout, _ = tree_layouts(problem, "ideal")
            elif name in LINE_NARROW:
                layout = line_layouts(problem)
            else:
                continue
            groups = {}
            for d in problem.instances:
                groups.setdefault(layout.group_of[d.instance_id], []).append(d)
            rule = UnitRaise() if name in TREE_UNIT else HeightRaise()
            result = run_two_phase(
                problem.instances, layout, rule,
                geometric_thresholds(0.9, 0.3),
                mis="greedy", seed=1, engine=engine,
            )
            largest_group = max(len(v) for v in groups.values())
            assert result.counters.max_steps_per_stage <= largest_group
