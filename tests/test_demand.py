"""Tests for demands, window demands, and demand instances."""
import pytest

from repro.core.demand import Demand, DemandInstance, WindowDemand
from repro.core.types import edge_key


class TestDemand:
    def test_valid(self):
        a = Demand(0, 1, 5, profit=2.0, height=0.5)
        assert a.is_narrow and not a.is_wide

    def test_wide_boundary(self):
        assert Demand(0, 1, 2, 1.0, height=0.5).is_narrow
        assert Demand(0, 1, 2, 1.0, height=0.51).is_wide
        assert Demand(0, 1, 2, 1.0, height=1.0).is_wide

    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            Demand(0, 3, 3, profit=1.0)

    @pytest.mark.parametrize("profit", [0.0, -1.0])
    def test_rejects_nonpositive_profit(self, profit):
        with pytest.raises(ValueError):
            Demand(0, 1, 2, profit=profit)

    @pytest.mark.parametrize("height", [0.0, -0.1, 1.5])
    def test_rejects_bad_height(self, height):
        with pytest.raises(ValueError):
            Demand(0, 1, 2, profit=1.0, height=height)


class TestWindowDemand:
    def test_start_slots(self):
        w = WindowDemand(0, release=2, deadline=7, processing=3, profit=1.0)
        assert list(w.start_slots) == [2, 3, 4, 5]

    def test_rigid_window_single_start(self):
        w = WindowDemand(0, release=4, deadline=6, processing=3, profit=1.0)
        assert list(w.start_slots) == [4]

    def test_rejects_window_too_small(self):
        with pytest.raises(ValueError):
            WindowDemand(0, release=3, deadline=4, processing=3, profit=1.0)

    def test_rejects_zero_processing(self):
        with pytest.raises(ValueError):
            WindowDemand(0, release=0, deadline=5, processing=0, profit=1.0)

    def test_rejects_negative_release(self):
        with pytest.raises(ValueError):
            WindowDemand(0, release=-1, deadline=5, processing=2, profit=1.0)

    def test_width_classification(self):
        assert WindowDemand(0, 0, 5, 2, 1.0, height=0.5).is_narrow
        assert WindowDemand(0, 0, 5, 2, 1.0, height=0.9).is_wide


def make_instance(iid, demand_id, network_id, verts, height=1.0, profit=1.0):
    edges = frozenset(
        edge_key(network_id, a, b) for a, b in zip(verts, verts[1:])
    )
    return DemandInstance(
        instance_id=iid,
        demand_id=demand_id,
        network_id=network_id,
        u=verts[0],
        v=verts[-1],
        profit=profit,
        height=height,
        path_vertex_seq=tuple(verts),
        path_edges=edges,
    )


class TestDemandInstance:
    def test_length(self):
        d = make_instance(0, 0, 0, [1, 2, 3, 4])
        assert d.length == 3

    def test_rejects_trivial_path(self):
        with pytest.raises(ValueError):
            make_instance(0, 0, 0, [1])

    def test_rejects_inconsistent_edges(self):
        with pytest.raises(ValueError):
            DemandInstance(
                instance_id=0,
                demand_id=0,
                network_id=0,
                u=0,
                v=2,
                profit=1.0,
                height=1.0,
                path_vertex_seq=(0, 1, 2),
                path_edges=frozenset({edge_key(0, 0, 1)}),
            )

    def test_is_active_on(self):
        d = make_instance(0, 0, 0, [1, 2, 3])
        assert d.is_active_on(edge_key(0, 2, 1))
        assert not d.is_active_on(edge_key(0, 3, 4))

    def test_overlaps_same_network(self):
        d1 = make_instance(0, 0, 0, [1, 2, 3])
        d2 = make_instance(1, 1, 0, [2, 3, 4])
        d3 = make_instance(2, 2, 0, [3, 4, 5])
        assert d1.overlaps(d2)
        assert not d1.overlaps(d3)

    def test_no_overlap_across_networks(self):
        d1 = make_instance(0, 0, 0, [1, 2, 3])
        d2 = make_instance(1, 1, 1, [1, 2, 3])
        assert not d1.overlaps(d2)

    def test_conflicts_same_demand(self):
        d1 = make_instance(0, 7, 0, [1, 2])
        d2 = make_instance(1, 7, 1, [5, 6])
        assert d1.conflicts_with(d2)  # same demand, disjoint paths

    def test_conflicts_via_overlap(self):
        d1 = make_instance(0, 0, 0, [1, 2, 3])
        d2 = make_instance(1, 1, 0, [2, 3])
        assert d1.conflicts_with(d2)

    def test_independent_pair(self):
        d1 = make_instance(0, 0, 0, [1, 2])
        d2 = make_instance(1, 1, 0, [3, 4])
        assert not d1.conflicts_with(d2)

    def test_shared_vertex_only_is_not_overlap(self):
        d1 = make_instance(0, 0, 0, [1, 2])
        d2 = make_instance(1, 1, 0, [2, 3])
        assert not d1.overlaps(d2)  # edge-disjoint, meet at vertex 2
