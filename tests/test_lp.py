"""Tests for the LP machinery (Sections 3.1, 6.1)."""
import pytest

from repro.baselines.exact import solve_exact
from repro.core.dual import DualState
from repro.core.lp import check_scaled_dual_feasible, lp_upper_bound
from repro.workloads import (
    figure1_problem,
    figure2_problem,
    random_line_problem,
    random_tree_problem,
)
from repro.workloads.trees import random_forest


class TestLPUpperBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_bounds_exact_optimum_trees(self, seed):
        problem = random_tree_problem(
            random_forest(18, 2, seed=seed), m=10, seed=seed + 20
        )
        lp = lp_upper_bound(problem)
        opt = solve_exact(problem).profit
        assert lp >= opt - 1e-6
        assert lp <= sum(a.profit for a in problem.demands) + 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_bounds_exact_optimum_lines(self, seed):
        problem = random_line_problem(25, 9, r=2, seed=seed)
        lp = lp_upper_bound(problem)
        opt = solve_exact(problem).profit
        assert lp >= opt - 1e-6

    def test_heights_reflected(self):
        # Fractional LP can pack by height; with heights 0.5 both demands
        # on one edge fit integrally too.
        problem = figure2_problem()  # heights 0.4 / 0.7 / 0.3
        lp = lp_upper_bound(problem)
        assert lp >= 2.0 - 1e-9  # demands 0 and 2 coexist

    def test_figure1_lp(self):
        lp = lp_upper_bound(figure1_problem())
        assert lp >= 2.0 - 1e-9
        assert lp <= 3.0 + 1e-9

    def test_lp_can_beat_integral(self):
        # Three pairwise-overlapping unit demands on one edge: integral
        # optimum is 1, fractional is 1 as well (each x <= 1 on the same
        # edge) -- but two demands sharing only the middle edge give LP
        # 1.0 vs selecting one of them.  Use a triangle-free check:
        problem = figure2_problem(unit_height=True)
        lp = lp_upper_bound(problem)
        assert lp >= solve_exact(problem).profit - 1e-9


class TestDualFeasibility:
    def test_accepts_satisfied_assignment(self):
        problem = figure2_problem(unit_height=True)
        dual = DualState()
        for a in problem.demands:
            dual.alpha[a.demand_id] = a.profit
        check_scaled_dual_feasible(dual, problem.instances, 1.0)

    def test_rejects_unsatisfied_assignment(self):
        problem = figure2_problem(unit_height=True)
        dual = DualState()
        with pytest.raises(AssertionError):
            check_scaled_dual_feasible(dual, problem.instances, 0.5)

    def test_height_rule_dual(self):
        problem = figure2_problem()
        dual = DualState(use_height_rule=True)
        # beta on the shared edge <4,5> large enough for every demand:
        # the smallest height is 0.3, largest profit 1.0.
        dual.beta[(0, 4, 5)] = 1.0 / 0.3 + 1.0
        check_scaled_dual_feasible(dual, problem.instances, 1.0)
