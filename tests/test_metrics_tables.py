"""Tests for the analysis helpers."""
import math

import pytest

from repro.algorithms.unit_trees import solve_unit_trees
from repro.analysis.metrics import RatioReport, measure, theoretical_round_bound
from repro.analysis.tables import format_cell, format_table
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest


class TestMeasure:
    def test_with_exact(self):
        problem = random_tree_problem(random_forest(16, 2, seed=1), m=9, seed=2)
        report = solve_unit_trees(problem, epsilon=0.2, seed=0)
        ratios = measure(problem, report)
        assert ratios.exact_opt is not None
        assert ratios.ratio_vs_exact >= 1.0 - 1e-9
        assert ratios.lp_bound >= ratios.exact_opt - 1e-6
        assert ratios.certified_ratio >= ratios.ratio_vs_exact - 1e-6
        assert ratios.ratio_vs_lp >= ratios.ratio_vs_exact - 1e-6

    def test_without_exact(self):
        problem = random_tree_problem(random_forest(16, 2, seed=3), m=25, seed=4)
        report = solve_unit_trees(problem, epsilon=0.2, seed=0)
        ratios = measure(problem, report, exact_cap=10)
        assert ratios.exact_opt is None
        assert ratios.ratio_vs_exact is None
        assert ratios.ratio_vs_lp >= 1.0 - 1e-6

    def test_zero_profit_edge_case(self):
        r = RatioReport(
            profit=0.0, exact_opt=1.0, lp_bound=1.0, certified_bound=1.0, guarantee=7.0
        )
        assert r.ratio_vs_exact == math.inf
        assert r.ratio_vs_lp == math.inf
        assert r.certified_ratio == math.inf


class TestRoundBound:
    def test_monotone_in_n(self):
        small = theoretical_round_bound(8, 0.1, 10, time_mis=10)
        large = theoretical_round_bound(1024, 0.1, 10, time_mis=10)
        assert large > small

    def test_floors_at_one(self):
        assert theoretical_round_bound(1, 0.9, 1.0, time_mis=1) == 1.0


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(1.23456789) == "1.235"
        assert format_cell(float("inf")) == "inf"
        assert format_cell("x") == "x"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_format_table_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out
