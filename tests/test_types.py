"""Tests for repro.core.types."""
import pytest

from repro.core.types import EPS, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(3, 5, 2) == (3, 2, 5)

    def test_preserves_ordered_endpoints(self):
        assert edge_key(0, 1, 9) == (0, 1, 9)

    def test_same_edge_both_directions(self):
        assert edge_key(1, 4, 7) == edge_key(1, 7, 4)

    def test_distinct_networks_distinct_keys(self):
        assert edge_key(0, 1, 2) != edge_key(1, 1, 2)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            edge_key(0, 3, 3)

    def test_eps_is_small_positive(self):
        assert 0 < EPS < 1e-6
