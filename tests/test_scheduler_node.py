"""Unit and failure-injection tests for the processor protocol."""
import pytest

from repro.core.dual import UnitRaise
from repro.distributed.message import Message
from repro.distributed.runner import build_layout_and_thresholds
from repro.distributed.scheduler_node import (
    LubyBudgetExceeded,
    ProcessorNode,
    Schedule,
    default_schedule,
)
from repro.distributed.simulator import SyncSimulator
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest


def build_nodes(problem, schedule, ops=None):
    layout, thresholds, rule = build_layout_and_thresholds(
        problem, "unit-trees", 0.4
    )
    by_owner = {a.demand_id: [] for a in problem.demands}
    for d in problem.instances:
        by_owner[d.demand_id].append(d)
    neighbor_sets = {a.demand_id: set() for a in problem.demands}
    for p, q in problem.communication_edges:
        neighbor_sets[p].add(q)
        neighbor_sets[q].add(p)
    nodes = {}
    for a in problem.demands:
        node_layout = {
            d.instance_id: (layout.group_of[d.instance_id], layout.pi[d.instance_id])
            for d in by_owner[a.demand_id]
        }
        nodes[a.demand_id] = ProcessorNode(
            node_id=a.demand_id,
            instances=by_owner[a.demand_id],
            layout=node_layout,
            raise_rule=rule,
            schedule=schedule,
            neighbors=frozenset(neighbor_sets[a.demand_id]),
            ops=ops if ops is not None else schedule.build_ops(),
        )
    return nodes


def make_problem(seed=1, m=6):
    return random_tree_problem(
        random_forest(10, 2, seed=seed), m=m, seed=seed + 1, pmax_over_pmin=2.0
    )


def make_schedule(problem, epsilon=0.4, luby_iterations=None, steps=None):
    layout, thresholds, _ = build_layout_and_thresholds(problem, "unit-trees", epsilon)
    sched = default_schedule(
        thresholds, layout.n_epochs, problem.pmax / problem.pmin,
        len(problem.instances), seed=0,
    )
    if luby_iterations is not None or steps is not None:
        sched = Schedule(
            thresholds=sched.thresholds,
            n_epochs=sched.n_epochs,
            steps_per_stage=steps or sched.steps_per_stage,
            luby_iterations=luby_iterations or sched.luby_iterations,
            seed=sched.seed,
        )
    return sched


class TestProtocolFailureInjection:
    def test_luby_budget_guard_fires_on_leftover_actives(self):
        # The raise round must refuse to proceed while any instance is
        # still active (i.e. the MIS sub-protocol did not complete).
        problem = make_problem(seed=2, m=4)
        schedule = make_schedule(problem, luby_iterations=1)
        nodes = build_nodes(problem, schedule)
        node = next(iter(nodes.values()))
        node._active = {node.instances[0].instance_id}
        with pytest.raises(LubyBudgetExceeded):
            node._round_raise(("raise", 1, 1, 1), [])

    def test_insufficient_steps_detected_at_finish(self):
        # Zero slack steps: if a stage genuinely needs more steps than
        # scheduled, phase-1 completeness fails at the finish round.
        problem = make_problem(seed=3, m=10)
        schedule = make_schedule(problem, steps=1)
        nodes = build_nodes(problem, schedule)
        sim = SyncSimulator(nodes, problem.communication_edges)
        try:
            sim.run(max_rounds=200_000)
        except RuntimeError:
            return  # under-provisioned schedule correctly detected
        # With only 1 step/stage some instances may still satisfy by luck;
        # in that case every node must have completed phase 1.
        for node in nodes.values():
            node._assert_phase1_complete()

    def test_node_rejects_foreign_instances(self):
        problem = make_problem()
        schedule = make_schedule(problem)
        layout, _, rule = build_layout_and_thresholds(problem, "unit-trees", 0.4)
        foreign = [d for d in problem.instances if d.demand_id != 0]
        with pytest.raises(ValueError):
            ProcessorNode(
                node_id=0,
                instances=foreign[:1],
                layout={},
                raise_rule=rule,
                schedule=schedule,
                neighbors=frozenset(),
            )


class TestProtocolUnits:
    def test_hello_builds_conflict_map(self):
        problem = make_problem(seed=5, m=4)
        schedule = make_schedule(problem)
        nodes = build_nodes(problem, schedule)
        # Deliver a hello from a conflicting neighbor by hand.
        target = None
        src_node = None
        for a in problem.demands:
            for b in problem.demands:
                if a.demand_id >= b.demand_id:
                    continue
                da = [d for d in problem.instances if d.demand_id == a.demand_id]
                db = [d for d in problem.instances if d.demand_id == b.demand_id]
                if any(x.overlaps(y) for x in da for y in db):
                    target, src_node = nodes[a.demand_id], nodes[b.demand_id]
                    break
            if target:
                break
        if target is None:
            pytest.skip("random instance had no cross-processor overlap")
        outbox = src_node.on_round(0, [])
        hello = [m for m in outbox if m.dst == target.node_id]
        assert hello, "hello must go to all neighbors"
        target._process_inbox(hello)
        assert target._conflicts, "conflict map not built from hello"

    def test_node_halts_after_finish(self):
        problem = make_problem(seed=6, m=4)
        schedule = make_schedule(problem)
        nodes = build_nodes(problem, schedule)
        sim = SyncSimulator(nodes, problem.communication_edges)
        sim.run(max_rounds=200_000)
        assert all(node.halted for node in nodes.values())

    def test_rounds_beyond_script_are_noops(self):
        problem = make_problem(seed=7, m=3)
        schedule = make_schedule(problem)
        nodes = build_nodes(problem, schedule)
        node = next(iter(nodes.values()))
        assert node.on_round(10_000_000, []) == []

    def test_selected_instances_belong_to_owner(self):
        problem = make_problem(seed=8, m=6)
        schedule = make_schedule(problem)
        nodes = build_nodes(problem, schedule)
        sim = SyncSimulator(nodes, problem.communication_edges)
        sim.run(max_rounds=200_000)
        for nid, node in nodes.items():
            assert all(d.demand_id == nid for d in node.selected)
            assert len(node.selected) <= 1  # one instance per demand
