"""Tests for the two-phase framework engine (Section 3.2, Figure 7).

Beyond unit behaviour, these tests re-derive the proof obligations of
Lemma 3.1 on real runs: the interference property, the predecessor
bound, the dual-objective inequality, and final lambda-satisfaction.
"""
import math

import pytest

from repro.algorithms.base import line_layouts, tree_layouts
from repro.core.dual import HeightRaise, UnitRaise
from repro.core.framework import (
    InstanceLayout,
    geometric_thresholds,
    narrow_xi,
    run_two_phase,
    unit_xi,
)
from repro.core.interference import (
    check_dual_objective_bound,
    check_interference,
    check_predecessor_bound,
)
from repro.core.lp import check_scaled_dual_feasible
from repro.workloads import random_line_problem, random_tree_problem
from repro.workloads.trees import random_forest


class TestThresholds:
    def test_geometric_thresholds_reach_one_minus_eps(self):
        taus = geometric_thresholds(14 / 15, 0.1)
        assert taus[-1] >= 0.9
        assert all(t2 > t1 for t1, t2 in zip(taus, taus[1:]))

    def test_single_stage_when_eps_large(self):
        taus = geometric_thresholds(0.5, 0.5)
        assert taus == [0.5]

    @pytest.mark.parametrize("xi", [0.0, 1.0, -0.5, 2.0])
    def test_xi_validation(self, xi):
        with pytest.raises(ValueError):
            geometric_thresholds(xi, 0.1)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.1])
    def test_eps_validation(self, eps):
        with pytest.raises(ValueError):
            geometric_thresholds(0.9, eps)

    def test_unit_xi_constants(self):
        # The paper's constants hold *exactly* (the formulas are exact
        # rational arithmetic in floats): 14/15 for trees (Delta = 6,
        # Section 5) and 8/9 for lines (Delta = 3, Section 7).
        assert unit_xi(6) == 14 / 15
        assert unit_xi(3) == 8 / 9

    def test_thresholds_lie_in_unit_interval(self):
        for xi, eps in [(14 / 15, 0.05), (8 / 9, 0.3), (0.99, 0.5)]:
            taus = geometric_thresholds(xi, eps)
            assert all(0.0 < t < 1.0 for t in taus)
            assert taus == sorted(taus)
            assert taus[-1] >= 1.0 - eps - 1e-12

    @pytest.mark.parametrize("xi", [1e-9, 0.999])
    def test_xi_open_interval_boundaries_accepted(self, xi):
        # (0, 1) is open: values inside, even near the edges, must work.
        # (xi -> 1 makes the schedule length ~log(eps)/log(xi) blow up,
        # so "near" stays within a few thousand stages.)
        taus = geometric_thresholds(xi, 0.5)
        assert taus and all(0.0 < t < 1.0 for t in taus)

    def test_eps_message_names_bounds(self):
        with pytest.raises(ValueError, match=r"epsilon must lie in \(0, 1\)"):
            geometric_thresholds(0.9, 1.5)
        with pytest.raises(ValueError, match=r"xi must lie in \(0, 1\)"):
            geometric_thresholds(-0.1, 0.5)

    def test_narrow_xi_monotone_in_hmin(self):
        assert narrow_xi(6, 0.5) < narrow_xi(6, 0.1)

    def test_narrow_xi_validation(self):
        with pytest.raises(ValueError):
            narrow_xi(6, 0.6)
        with pytest.raises(ValueError):
            narrow_xi(6, 0.0)

    @pytest.mark.parametrize("hmin", [-0.1, 0.5 + 1e-9, 2.0])
    def test_narrow_xi_rejects_out_of_range_hmin(self, hmin):
        with pytest.raises(ValueError, match=r"hmin must lie in \(0, 1/2\]"):
            narrow_xi(6, hmin)

    def test_narrow_xi_accepts_half_closed_boundary(self):
        # (0, 1/2] is closed on the right: exactly 1/2 is legal and
        # still yields a usable stage ratio in (0, 1).
        xi = narrow_xi(6, 0.5)
        assert 0.0 < xi < 1.0
        assert geometric_thresholds(xi, 0.3)


def run_unit_tree_case(seed, mis="greedy", epsilon=0.2, m=14, n=24, r=2):
    problem = random_tree_problem(
        random_forest(n, r, seed=seed), m=m, seed=seed + 1
    )
    layout, _ = tree_layouts(problem, "ideal")
    thresholds = geometric_thresholds(unit_xi(6), epsilon)
    result = run_two_phase(
        problem.instances, layout, UnitRaise(), thresholds, mis=mis, seed=seed
    )
    return problem, result


class TestFirstPhaseInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_instances_lambda_satisfied(self, seed):
        problem, result = run_unit_tree_case(seed)
        check_scaled_dual_feasible(result.dual, problem.instances, result.slackness)

    @pytest.mark.parametrize("seed", range(4))
    def test_interference_property(self, seed):
        _, result = run_unit_tree_case(seed)
        check_interference(result.events)

    @pytest.mark.parametrize("seed", range(4))
    def test_predecessor_bound(self, seed):
        _, result = run_unit_tree_case(seed)
        check_predecessor_bound(result.events)

    @pytest.mark.parametrize("seed", range(4))
    def test_dual_objective_bound(self, seed):
        _, result = run_unit_tree_case(seed)
        check_dual_objective_bound(result.dual, result.events, UnitRaise())

    def test_each_instance_raised_at_most_once(self):
        _, result = run_unit_tree_case(9)
        raised = [ev.instance.instance_id for ev in result.events]
        assert len(raised) == len(set(raised))

    def test_raises_within_step_are_independent(self):
        _, result = run_unit_tree_case(10)
        from collections import defaultdict

        by_step = defaultdict(list)
        for ev in result.events:
            by_step[ev.step_tuple].append(ev.instance)
        for batch in by_step.values():
            for i, a in enumerate(batch):
                for b in batch[i + 1 :]:
                    assert not a.conflicts_with(b)

    def test_epoch_order_follows_groups(self):
        _, result = run_unit_tree_case(11)
        last_epoch = 0
        for ev in result.events:
            assert ev.step_tuple[0] >= last_epoch
            last_epoch = ev.step_tuple[0]


class TestLemma31Inequality:
    """val(alpha, beta) <= (Delta + 1) * p(S) -- the heart of Lemma 3.1."""

    @pytest.mark.parametrize("seed", range(6))
    def test_unit_case(self, seed):
        _, result = run_unit_tree_case(seed)
        delta = result.layout.critical_set_size
        assert result.dual.value() <= (delta + 1) * result.profit + 1e-6

    @pytest.mark.parametrize("seed", range(4))
    def test_certified_ratio_at_most_guarantee(self, seed):
        _, result = run_unit_tree_case(seed)
        delta = result.layout.critical_set_size
        assert result.certified_ratio <= (delta + 1) / result.slackness + 1e-6


class TestSecondPhase:
    @pytest.mark.parametrize("seed", range(4))
    def test_solution_feasible(self, seed):
        _, result = run_unit_tree_case(seed)
        result.solution.verify()

    def test_solution_maximal_against_stack(self):
        # Every stacked instance is either selected or conflicts with a
        # selected one (the "successor" argument of Lemma 3.1).
        _, result = run_unit_tree_case(12)
        selected = list(result.solution.selected)
        chosen_ids = {d.instance_id for d in selected}
        for batch in result.stack:
            for d in batch:
                if d.instance_id in chosen_ids:
                    continue
                assert any(d.conflicts_with(s) for s in selected)


class TestHeightFramework:
    @pytest.mark.parametrize("seed", range(3))
    def test_narrow_invariants(self, seed):
        problem = random_tree_problem(
            random_forest(20, 2, seed=seed),
            m=12,
            seed=seed + 5,
            height_profile="narrow",
            hmin=0.2,
        )
        layout, _ = tree_layouts(problem, "ideal")
        thresholds = geometric_thresholds(narrow_xi(6, problem.hmin), 0.2)
        result = run_two_phase(
            problem.instances, layout, HeightRaise(), thresholds, mis="greedy", seed=seed
        )
        result.solution.verify()
        check_scaled_dual_feasible(result.dual, problem.instances, result.slackness)
        check_interference(result.events)
        check_dual_objective_bound(result.dual, result.events, HeightRaise())
        # Lemma 6.1: val <= (2 Delta^2 + 1) p(S).
        delta = layout.critical_set_size
        assert result.dual.value() <= (2 * delta * delta + 1) * result.profit + 1e-6


class TestCounters:
    def test_counters_consistent(self):
        _, result = run_unit_tree_case(13)
        c = result.counters
        assert c.raises == len(result.events)
        assert c.steps == len(result.stack)
        assert c.phase2_rounds == len(result.stack)
        assert c.communication_rounds >= c.steps

    def test_lemma_51_step_bound(self):
        # Steps per stage obey 1 + log2(pmax/pmin) (kill factor 2).
        problem = random_tree_problem(
            random_forest(24, 2, seed=3), m=16, seed=4, pmax_over_pmin=8.0
        )
        layout, _ = tree_layouts(problem, "ideal")
        thresholds = geometric_thresholds(unit_xi(6), 0.2)
        result = run_two_phase(
            problem.instances, layout, UnitRaise(), thresholds, mis="greedy", seed=0
        )
        bound = 1 + math.ceil(math.log2(problem.pmax / problem.pmin)) + 1
        assert result.counters.max_steps_per_stage <= bound

    def test_requires_thresholds(self):
        problem, _ = run_unit_tree_case(1)
        layout, _ = tree_layouts(problem, "ideal")
        with pytest.raises(ValueError):
            run_two_phase(problem.instances, layout, UnitRaise(), [], mis="greedy")


class TestLayoutMerge:
    def test_from_layered_merges_epochs(self):
        problem = random_line_problem(30, 8, r=2, seed=5)
        layout = line_layouts(problem)
        assert layout.n_epochs >= 1
        assert set(layout.group_of) == {d.instance_id for d in problem.instances}

    def test_critical_set_size(self):
        problem = random_line_problem(30, 8, r=2, seed=6)
        layout = line_layouts(problem)
        assert 1 <= layout.critical_set_size <= 3

    def test_empty_layout(self):
        layout = InstanceLayout(group_of={}, pi={}, n_epochs=0)
        assert layout.critical_set_size == 0
