"""The second-phase admission engine seam (property-based).

Contracts under test, per :mod:`repro.core.engines.admission`:

* **Feasibility** -- every engine's selection keeps each edge's load at
  or under ``1 + EPS`` and admits at most one instance per demand.
* **Bit-identity** -- ``reference``, ``sliced`` and ``vectorized`` make
  literally the same selections (same instances, same check counts) on
  adversarial synthetic stacks *and* on real solver stacks, including
  synthetic batches that are not independent sets (which drive the
  vectorized engine's exact scalar fallback).
* **Partition** -- :func:`stack_components` is a genuine
  capacity-disjoint partition: components cover every instance, share
  no path edge and no demand id, and are keyed by smallest member id.
* **Journal replay** -- a component whose admission signature matches
  its ancestor's replays to exactly what a cold re-pop would produce;
  a perturbed component re-pops while its untouched siblings replay.

Plus service-level checks: digest identity across ``phase2_engine``
knobs through :class:`SchedulingService`, delta-solve surfacing the
admission replay counters, and the :class:`PhaseCounters` compat guard
(the default semantic tuple is unchanged by the new admission fields).
"""
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import solve_auto
from repro.core.engines.admission import (
    _pop_reference,
    _pop_sliced,
    _pop_vectorized,
    run_second_phase,
    stack_components,
)
from repro.core.engines.artifacts import PhaseCounters
from repro.core.engines.journal import FirstPhaseJournal, journal_context
from repro.core.demand import DemandInstance
from repro.core.solution import Solution
from repro.core.types import EPS, edge_key
from repro.service import (
    SchedulingService,
    SolveKnobs,
    SolveRequest,
    report_semantic_digest,
)
from repro.workloads import build_trajectory, build_workload

COMMON = dict(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Heights that sum interestingly around the unit capacity, plus exact
#: binary fractions so feasibility boundaries are reproducible.
HEIGHTS = (1.0, 0.75, 0.5, 0.375, 0.25, 0.125)


@st.composite
def stacks(draw):
    """A synthetic MIS stack on one shared line network.

    Deliberately *not* restricted to independent sets: batches may
    share edges and demand ids internally, which the real first phase
    never emits -- that is exactly the regime where the vectorized
    engine must take its exact scalar fallback, and where the
    union-find has non-trivial merging to do.
    """
    stack, next_id = [], 0
    for _ in range(draw(st.integers(1, 5))):
        batch = []
        for _ in range(draw(st.integers(0, 6))):
            a = draw(st.integers(0, 12))
            b = a + draw(st.integers(1, 4))
            batch.append(DemandInstance(
                instance_id=next_id,
                demand_id=draw(st.integers(0, 9)),
                network_id=0,
                u=a, v=b,
                profit=float(draw(st.integers(1, 50))),
                height=draw(st.sampled_from(HEIGHTS)),
                path_vertex_seq=tuple(range(a, b + 1)),
                path_edges=frozenset(
                    edge_key(0, i, i + 1) for i in range(a, b)
                ),
            ))
            next_id += 1
        stack.append(batch)
    return stack


def members(stack):
    return [d for batch in stack for d in batch]


class TestSyntheticStacks:
    @given(stack=stacks())
    @settings(**COMMON)
    def test_engines_bit_identical(self, stack):
        ref_sel, ref_checks = _pop_reference(stack)
        vec_sel, vec_checks = _pop_vectorized(stack)
        sliced_sel, sliced_checks = _pop_sliced(
            stack, stack_components(stack), workers=1, backend="serial"
        )
        assert Solution.from_instances(vec_sel) == Solution.from_instances(ref_sel)
        assert Solution.from_instances(sliced_sel) == Solution.from_instances(ref_sel)
        assert vec_checks == ref_checks == sliced_checks == len(members(stack))

    @given(stack=stacks(), engine=st.sampled_from(("reference", "vectorized")))
    @settings(**COMMON)
    def test_selection_is_feasible(self, stack, engine):
        solution = run_second_phase(stack, engine=engine)
        load = {}
        demands = set()
        for d in solution.selected:
            assert d.demand_id not in demands, "two instances of one demand"
            demands.add(d.demand_id)
            for e in d.path_edges:
                load[e] = load.get(e, 0.0) + d.height
        assert all(total <= 1.0 + EPS for total in load.values())

    @given(stack=stacks())
    @settings(**COMMON)
    def test_components_partition_capacity_disjointly(self, stack):
        components = stack_components(stack)
        seen_ids, seen_edges, seen_demands = set(), set(), set()
        for comp in components:
            ids = {d.instance_id for d in members(comp.batches)}
            edges = {e for d in members(comp.batches) for e in d.path_edges}
            demands = {d.demand_id for d in members(comp.batches)}
            assert comp.key == min(ids)
            assert not ids & seen_ids
            assert not edges & seen_edges, "components share a capacity edge"
            assert not demands & seen_demands, "components share a demand"
            seen_ids |= ids
            seen_edges |= edges
            seen_demands |= demands
            assert all(comp.batches), "empty batch kept in a component slice"
        assert seen_ids == {d.instance_id for d in members(stack)}
        assert [c.ordinal for c in components] == list(range(len(components)))
        assert [c.key for c in components] == sorted(c.key for c in components)

    @given(stack=stacks())
    @settings(**COMMON)
    def test_journal_replay_matches_rerun(self, stack):
        cold = FirstPhaseJournal()
        with journal_context(cold):
            first = run_second_phase(stack)
        n = len(stack_components(stack))
        assert cold.admission_components == n
        assert cold.admission_rerun == n and cold.admission_replayed == 0

        warm = FirstPhaseJournal(ancestor=cold.journal)
        with journal_context(warm):
            second = run_second_phase(stack)
        assert second == first
        assert warm.admission_replayed == n and warm.admission_rerun == 0
        # The warm journal re-records every component, so a *chain* of
        # deltas keeps replaying without consulting the original.
        chained = FirstPhaseJournal(ancestor=warm.journal)
        with journal_context(chained):
            third = run_second_phase(stack)
        assert third == first and chained.admission_replayed == n

    @given(stack=stacks())
    @settings(**COMMON)
    def test_journal_perturbed_component_reruns_to_cold_answer(self, stack):
        from dataclasses import replace

        if not members(stack):
            return
        cold = FirstPhaseJournal()
        with journal_context(cold):
            run_second_phase(stack)
        # Perturb one instance's profit: its component's signature must
        # miss (profit is signed content) while every other component
        # still replays, and the merged answer must equal a cold pop of
        # the mutated stack.
        victim = members(stack)[0].instance_id
        mutated = [
            [
                replace(d, profit=d.profit + 1.0)
                if d.instance_id == victim else d
                for d in batch
            ]
            for batch in stack
        ]
        warm = FirstPhaseJournal(ancestor=cold.journal)
        with journal_context(warm):
            delta = run_second_phase(mutated)
        assert delta == run_second_phase(mutated)
        assert warm.admission_rerun >= 1
        assert (
            warm.admission_replayed
            == len(stack_components(mutated)) - warm.admission_rerun
        )


class TestSolverStacks:
    """Bit-identity on stacks the first phase actually emits."""

    def solver_stack(self, name, size, seed):
        report = solve_auto(
            build_workload(name, size, seed=seed),
            epsilon=0.25, mis="greedy", seed=seed, engine="incremental",
        )
        return report.result.stack, report.solution

    def test_registry_stacks_pop_identically(self):
        for name, size, seed in (
            ("multi-tenant-forest", 40, 3),
            ("bursty-lines", 18, 5),
        ):
            stack, solution = self.solver_stack(name, size, seed)
            for engine in ("reference", "sliced", "vectorized"):
                assert run_second_phase(
                    stack, engine=engine, backend="serial"
                ) == solution, f"{engine} diverged on {name}"

    def test_counters_account_for_real_admission_work(self):
        stack, solution = self.solver_stack("bursty-lines", 16, 2)
        counters = PhaseCounters()
        run_second_phase(stack, counters=counters)
        assert counters.phase2_rounds == sum(1 for b in stack if b)
        assert counters.admission_checks == len(members(stack))
        assert counters.admitted == len(solution)
        assert counters.rejected == counters.admission_checks - counters.admitted
        # Compat guard: the default semantic tuple is blind to the new
        # admission fields (old goldens stay valid); opting in extends it.
        base = counters.semantic_tuple()
        assert len(base) == len(PhaseCounters.SEMANTIC_FIELDS)
        assert counters.semantic_tuple(include_admission=True) == base + (
            counters.admission_checks, counters.admitted, counters.rejected,
        )


class TestServicePhase2:
    KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)

    def test_digest_identical_across_phase2_knobs(self):
        svc = SchedulingService(workers=2, disk_dir=None)
        problem = build_workload("multi-tenant-forest", 40, seed=7)
        digests, statuses = set(), []
        for phase2 in ("reference", "sliced", "vectorized"):
            result = svc.solve(SolveRequest(
                problem=problem,
                knobs=SolveKnobs(**self.KNOBS, phase2_engine=phase2),
            ))
            digests.add(report_semantic_digest(result.report))
            statuses.append(result.status)
        assert len(digests) == 1
        # Distinct engines never alias a cache entry: three misses.
        assert statuses == ["miss", "miss", "miss"]

    def test_delta_solve_replays_admission_components(self):
        svc = SchedulingService(
            workers=2, disk_dir=None, keep_artifacts=True
        )
        for step in build_trajectory("tenant-churn", 48, seed=4, steps=4):
            req = SolveRequest(
                problem=step.problem, knobs=SolveKnobs(**self.KNOBS)
            )
            result = svc.solve(req) if step.index == 0 else svc.solve_delta(req)
            cold = solve_auto(step.problem, seed=0, **self.KNOBS)
            assert report_semantic_digest(result.report) == (
                report_semantic_digest(cold)
            ), f"step {step.index} diverged from the cold solve"
        totals = svc.stats["delta_totals"]
        assert totals["admission_components"] > 0
        assert totals["admission_replayed"] > 0
        assert (
            totals["admission_replayed"] + totals["admission_rerun"]
            == totals["admission_components"]
        )
