"""Integration tests: message-passing run == logical executor (Section 5,
"Distributed Implementation")."""
import pytest

from repro.baselines.exact import solve_exact
from repro.core.framework import run_two_phase
from repro.distributed.runner import (
    KINDS,
    build_layout_and_thresholds,
    run_distributed,
)
from repro.distributed.scheduler_node import Schedule, default_schedule
from repro.workloads import random_line_problem, random_tree_problem
from repro.workloads.trees import random_forest


def small_tree_problem(seed, pmax_over_pmin=4.0, heights="unit"):
    return random_tree_problem(
        random_forest(14, 2, seed=seed),
        m=9,
        seed=seed + 1,
        pmax_over_pmin=pmax_over_pmin,
        height_profile=heights,
        hmin=0.2,
    )


def assert_matches_logical(problem, kind, epsilon, seed):
    report = run_distributed(problem, kind=kind, epsilon=epsilon, seed=seed)
    layout, thresholds, rule = build_layout_and_thresholds(problem, kind, epsilon)
    logical = run_two_phase(
        problem.instances, layout, rule, thresholds, mis="hash", seed=seed
    )
    assert [d.instance_id for d in report.solution.selected] == [
        d.instance_id for d in logical.solution.selected
    ]
    assert report.dual_value == pytest.approx(logical.dual.value(), abs=1e-9)
    assert report.certified_upper_bound == pytest.approx(
        logical.certified_upper_bound, abs=1e-6
    )
    return report


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_unit_trees(self, seed):
        problem = small_tree_problem(seed)
        assert_matches_logical(problem, "unit-trees", 0.3, seed)

    @pytest.mark.parametrize("seed", range(2))
    def test_unit_lines(self, seed):
        problem = random_line_problem(
            24, 8, r=2, seed=seed + 7, pmax_over_pmin=4.0, window_slack=2
        )
        assert_matches_logical(problem, "unit-lines", 0.3, seed)

    def test_narrow_trees(self):
        problem = small_tree_problem(11, heights="narrow")
        assert_matches_logical(problem, "narrow-trees", 0.4, 3)

    def test_narrow_lines(self):
        problem = random_line_problem(
            20, 7, r=2, seed=19, pmax_over_pmin=4.0,
            height_profile="narrow", hmin=0.25, window_slack=2,
        )
        assert_matches_logical(problem, "narrow-lines", 0.4, 4)


class TestRunReport:
    def test_solution_feasible_and_certified(self):
        problem = small_tree_problem(21)
        report = run_distributed(problem, kind="unit-trees", epsilon=0.3, seed=0)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert report.certified_upper_bound >= opt - 1e-6

    def test_rounds_match_schedule_script(self):
        problem = small_tree_problem(22)
        report = run_distributed(problem, kind="unit-trees", epsilon=0.4, seed=1)
        script_len = len(report.schedule.build_ops())
        # +1: one final round in which the last messages are consumed.
        assert script_len <= report.metrics.rounds <= script_len + 1

    def test_messages_counted(self):
        problem = small_tree_problem(23)
        report = run_distributed(problem, kind="unit-trees", epsilon=0.4, seed=2)
        assert report.metrics.messages > 0
        assert report.metrics.volume > 0

    def test_unknown_kind(self):
        problem = small_tree_problem(24)
        with pytest.raises(ValueError):
            run_distributed(problem, kind="unit-rings")

    def test_narrow_kind_rejects_wide(self):
        problem = small_tree_problem(25, heights="bimodal")
        with pytest.raises(ValueError):
            run_distributed(problem, kind="narrow-trees")

    def test_isolated_processors_still_work(self):
        # Two processors on disjoint resources never exchange messages.
        problem = random_tree_problem(
            random_forest(10, 2, seed=26), m=2, seed=27, access_size=1
        )
        if problem.communication_edges:
            pytest.skip("random accessibility happened to overlap")
        report = run_distributed(problem, kind="unit-trees", epsilon=0.4, seed=0)
        report.solution.verify()
        assert len(report.solution) == 2  # no interaction, both scheduled


class TestArbitraryHeightsDistributed:
    def test_mixed_heights_on_trees(self):
        from repro.distributed.runner import run_distributed_arbitrary

        problem = small_tree_problem(31, heights="bimodal")
        report = run_distributed_arbitrary(problem, networks="trees",
                                           epsilon=0.4, seed=5)
        report.solution.verify()
        assert report.wide is not None and report.narrow is not None
        assert report.total_rounds == (
            report.wide.metrics.rounds + report.narrow.metrics.rounds
        )
        opt = solve_exact(problem).profit
        assert report.certified_upper_bound >= opt - 1e-6
        ids = [d.demand_id for d in report.solution.selected]
        assert len(ids) == len(set(ids))

    def test_mixed_heights_on_lines(self):
        from repro.distributed.runner import run_distributed_arbitrary

        problem = random_line_problem(
            18, 6, r=2, seed=33, pmax_over_pmin=4.0,
            height_profile="bimodal", hmin=0.25, window_slack=2,
        )
        report = run_distributed_arbitrary(problem, networks="lines",
                                           epsilon=0.4, seed=6)
        report.solution.verify()
        assert solve_exact(problem).profit <= report.certified_upper_bound + 1e-6

    def test_all_narrow_path(self):
        from repro.distributed.runner import run_distributed_arbitrary

        problem = small_tree_problem(35, heights="narrow")
        report = run_distributed_arbitrary(problem, networks="trees",
                                           epsilon=0.4, seed=7)
        assert report.wide is None and report.narrow is not None
        report.solution.verify()

    def test_all_unit_path(self):
        from repro.distributed.runner import run_distributed_arbitrary

        problem = small_tree_problem(36)  # unit heights are wide
        report = run_distributed_arbitrary(problem, networks="trees",
                                           epsilon=0.4, seed=8)
        assert report.narrow is None and report.wide is not None

    def test_unknown_networks_kind(self):
        from repro.distributed.runner import run_distributed_arbitrary

        with pytest.raises(ValueError):
            run_distributed_arbitrary(small_tree_problem(37), networks="rings")


class TestSchedule:
    def test_build_ops_structure(self):
        sched = Schedule(
            thresholds=(0.5, 0.9),
            n_epochs=2,
            steps_per_stage=2,
            luby_iterations=3,
            seed=0,
        )
        ops = sched.build_ops()
        assert ops[0] == ("hello",)
        assert ops[-1] == ("finish",)
        n_steps = 2 * 2 * 2
        assert sum(1 for op in ops if op[0] == "raise") == n_steps
        assert sum(1 for op in ops if op[0] == "decide") == n_steps
        assert sum(1 for op in ops if op[0] == "prio") == n_steps * 3
        # Decide tuples come in reverse order of raise tuples.
        raises = [op[1:] for op in ops if op[0] == "raise"]
        decides = [op[1:] for op in ops if op[0] == "decide"]
        assert decides == list(reversed(raises))

    def test_default_schedule_bounds(self):
        sched = default_schedule([0.9], 4, pmax_over_pmin=8.0, n_instances=32, seed=1)
        assert sched.steps_per_stage == 2 + 3
        assert sched.luby_iterations == 2 * 5 + 6
