"""Property suite for the relaxed component-split planner mode.

``plan_granularity="component"`` splits each epoch's disconnected
conflict components into separate jobs, waiving strict counter equality
with the serial engines.  What it must NOT waive -- on arbitrary seeded
workloads, any backend -- are the structural facts the paper's proofs
rest on:

* the second-phase solution stays capacity-feasible,
* weak duality still certifies ``certified_ratio >= 1``,
* event counts are conserved internally (``len(events) == raises ==
  sum of stack batch sizes``), and
* for the order-independent oracles (``greedy``, ``hash``) the *multiset*
  of raise events ``(instance, delta, step coordinate)`` -- and hence
  the final dual assignment -- matches the strict incremental engine
  exactly, because components evolve independently and the bundled MIS
  computations factorize over disconnected unions.

A planner-level suite pins the component decomposition itself: the
components partition each epoch, no conflict edge crosses components,
and the slices cover the epoch's members in input order.
"""
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import tree_layouts
from repro.core.dual import UnitRaise
from repro.core.framework import geometric_thresholds, run_two_phase, unit_xi
from repro.core.plan import EpochPlan, validate_granularity
from repro.workloads import build_workload

COMMON = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Unit-height tree families (the component split targets forests with
#: many disconnected tenants, but any conflict graph may disconnect).
WORKLOADS = ("multi-tenant-forest", "powerlaw-trees")

component_cases = st.tuples(
    st.sampled_from(WORKLOADS),
    st.integers(min_value=8, max_value=36),
    st.integers(min_value=0, max_value=1_000),
    st.sampled_from(("thread", "process", "serial")),
)


def run_pair(name, size, seed, backend, mis):
    """(component-mode result, strict incremental result) for one case."""
    problem = build_workload(name, size, seed=seed)
    layout, _ = tree_layouts(problem, "ideal")
    thresholds = geometric_thresholds(
        unit_xi(max(layout.critical_set_size, 6)), 0.25
    )
    workers = 1 if backend == "serial" else 2
    comp = run_two_phase(
        problem.instances, layout, UnitRaise(), thresholds,
        mis=mis, seed=seed, engine="parallel", workers=workers,
        backend=backend, plan_granularity="component",
    )
    inc = run_two_phase(
        problem.instances, layout, UnitRaise(), thresholds,
        mis=mis, seed=seed, engine="incremental",
    )
    return comp, inc


class TestComponentModeInvariants:
    @given(component_cases)
    @settings(**COMMON)
    def test_feasible_certified_and_conserving(self, case):
        name, size, seed, backend = case
        comp, inc = run_pair(name, size, seed, backend, "greedy")
        comp.solution.verify()
        assert comp.certified_ratio >= 1.0 - 1e-9
        # Event-count conservation, internal: every raise is logged once
        # and sits in exactly one stack batch.
        assert len(comp.events) == comp.counters.raises
        assert len(comp.events) == sum(len(batch) for batch in comp.stack)

    @given(component_cases, st.sampled_from(("greedy", "hash")))
    @settings(**COMMON)
    def test_event_multiset_conserved_for_order_independent_oracles(self, case, mis):
        # Components share no demand and no path edge, so their dual
        # trajectories are independent, and greedy/hash MIS factorizes
        # over disconnected unions: the same raises happen at the same
        # (epoch, stage, step) coordinates with the same deltas -- only
        # their interleaving (and the per-component loop accounting)
        # differs from the strict engines.
        name, size, seed, backend = case
        comp, inc = run_pair(name, size, seed, backend, mis)
        key = lambda e: (e.instance.instance_id, e.delta, e.step_tuple)
        assert sorted(map(key, comp.events)) == sorted(map(key, inc.events))
        # Per-key raise orders coincide too, so the final duals agree
        # bit-for-bit (as unordered dicts; insertion order may differ).
        assert comp.dual.alpha == inc.dual.alpha
        assert comp.dual.beta == inc.dual.beta

    @given(component_cases)
    @settings(**COMMON)
    def test_luby_component_mode_is_deterministic(self, case):
        # Luby draws resequence under the split (each component clone
        # starts the epoch substream fresh), so equality with the strict
        # engines is out -- but the mode must still be reproducible and
        # backend-independent: same case, same artifacts, every time.
        name, size, seed, backend = case
        a, _ = run_pair(name, size, seed, backend, "luby")
        b, _ = run_pair(name, size, seed, "serial", "luby")
        assert a.semantic_tuple() == b.semantic_tuple()


class TestComponentPlanner:
    @given(
        st.sampled_from(WORKLOADS),
        st.integers(min_value=8, max_value=48),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(**COMMON)
    def test_components_partition_epochs(self, name, size, seed):
        problem = build_workload(name, size, seed=seed)
        layout, _ = tree_layouts(problem, "ideal")
        plan = EpochPlan.build(
            problem.instances, layout, granularity="component"
        )
        plan.verify()
        for epoch, members in plan.members.items():
            comps = plan.epoch_components(epoch)
            ids = sorted(i for comp in comps for i in comp)
            assert ids == sorted(d.instance_id for d in members), (
                f"epoch {epoch}: components must partition the members"
            )
            where = {i: c for c, comp in enumerate(comps) for i in comp}
            for i, nbrs in plan.adjacency[epoch].items():
                for j in nbrs:
                    assert where[i] == where[j], (
                        f"conflict edge {i}-{j} crosses components"
                    )
            slices = plan.component_slices(epoch)
            assert len(slices) == len(comps)
            for comp, (mine, adj, index) in zip(comps, slices):
                assert [d.instance_id for d in mine] == sorted(comp)
                assert set(adj) == set(comp)
                covered = set()
                for bucket in index.by_demand.values():
                    covered |= bucket
                assert covered == set(comp)

    def test_granularity_validation(self):
        with pytest.raises(ValueError, match="unknown plan granularity"):
            validate_granularity("edge")
        assert validate_granularity("component") == "component"
        problem = build_workload("multi-tenant-forest", 10, seed=0)
        layout, _ = tree_layouts(problem, "ideal")
        with pytest.raises(ValueError, match="unknown plan granularity"):
            EpochPlan.build(problem.instances, layout, granularity="edge")

    def test_component_split_beats_epoch_width(self):
        # The point of the mode: on a one-network workload the epoch
        # plan has width 1 per wave, but conflict components still
        # expose intra-epoch parallelism.
        problem = build_workload("powerlaw-trees", 40, seed=7)
        layout, _ = tree_layouts(problem, "ideal")
        plan = EpochPlan.build(
            problem.instances, layout, granularity="component"
        )
        max_components = max(
            len(plan.epoch_components(epoch)) for epoch in plan.members
        )
        assert max_components >= 2, (
            "expected at least one epoch to split into multiple components"
        )


class TestAutoGranularity:
    """The ``"auto"`` heuristic: split only when the plan predicts a win."""

    def build_plan(self, name, size, seed=5):
        problem = build_workload(name, size, seed=seed)
        layout, _ = tree_layouts(problem, "ideal")
        return problem, layout, EpochPlan.build(
            problem.instances, layout, granularity="auto"
        )

    def test_auto_is_a_valid_granularity(self):
        assert validate_granularity("auto") == "auto"

    def test_gain_and_mean_size_bounds(self):
        for name in ("multi-tenant-forest", "powerlaw-trees"):
            _, _, plan = self.build_plan(name, 60)
            assert 0.0 <= plan.component_split_gain() < 1.0
            assert plan.mean_component_size() >= 1.0

    def test_singleton_shatter_stays_strict(self):
        # multi-tenant epochs shatter into near-singleton components:
        # huge gain, nothing per job to amortize the toll -> no split.
        _, _, plan = self.build_plan("multi-tenant-forest", 120)
        assert plan.component_split_gain() >= 0.5
        assert plan.mean_component_size() < 4
        assert not plan.recommend_split()

    def test_dominant_component_stays_strict(self):
        # powerlaw-trees epochs are one dominant component: no gain.
        _, _, plan = self.build_plan("powerlaw-trees", 120)
        assert plan.component_split_gain() < 0.25
        assert not plan.recommend_split()

    def test_balanced_components_split(self):
        # sparse-access-forest: several mid-sized components per epoch.
        _, _, plan = self.build_plan("sparse-access-forest", 200)
        assert plan.recommend_split()

    def test_auto_no_split_is_bit_identical(self):
        problem = build_workload("powerlaw-trees", 40, seed=9)
        layout, _ = tree_layouts(problem, "ideal")
        thresholds = geometric_thresholds(
            unit_xi(max(layout.critical_set_size, 6)), 0.25
        )
        base = run_two_phase(
            problem.instances, layout, UnitRaise(), thresholds,
            mis="greedy", engine="incremental",
        )
        auto = run_two_phase(
            problem.instances, layout, UnitRaise(), thresholds,
            mis="greedy", engine="parallel", workers=2,
            plan_granularity="auto",
        )
        assert base.semantic_tuple() == auto.semantic_tuple()

    def test_auto_split_matches_component_mode(self):
        from repro.algorithms import solve_arbitrary_trees

        problem = build_workload("sparse-access-forest", 80, seed=9)
        auto = solve_arbitrary_trees(
            problem, epsilon=0.25, mis="greedy", engine="parallel",
            workers=2, plan_granularity="auto",
        )
        comp = solve_arbitrary_trees(
            problem, epsilon=0.25, mis="greedy", engine="parallel",
            workers=2, plan_granularity="component",
        )
        for part in auto.parts or {"": auto}:
            a = (auto.parts or {"": auto})[part]
            c = (comp.parts or {"": comp})[part]
            assert a.solution.profit == c.solution.profit
        auto.solution.verify()
        assert auto.certified_ratio >= 1.0

    def test_auto_rejected_for_serial_engines(self):
        problem = build_workload("multi-tenant-forest", 10, seed=0)
        layout, _ = tree_layouts(problem, "ideal")
        with pytest.raises(ValueError, match="plan_granularity= applies only"):
            run_two_phase(
                problem.instances, layout, UnitRaise(), [0.9],
                mis="greedy", engine="incremental", plan_granularity="auto",
            )
