"""Tests for the line-network algorithms (Section 7)."""
import pytest

from repro.algorithms.arbitrary_lines import solve_arbitrary_lines, solve_narrow_lines
from repro.algorithms.unit_lines import solve_unit_lines
from repro.baselines.exact import solve_exact
from repro.core.interference import check_interference
from repro.core.lp import check_scaled_dual_feasible
from repro.workloads import figure1_problem, random_line_problem
from repro.workloads.trees import random_tree


class TestUnitLines:
    def test_rejects_tree_networks(self):
        from repro.core.demand import Demand
        from repro.core.problem import Problem

        star = random_tree(6, seed=0, shape="star")
        problem = Problem(networks={0: star}, demands=[Demand(0, 1, 2, 1.0)])
        with pytest.raises(ValueError):
            solve_unit_lines(problem)

    def test_rejects_heights_by_default(self):
        problem = figure1_problem()
        with pytest.raises(ValueError):
            solve_unit_lines(problem)

    @pytest.mark.parametrize("seed", range(6))
    def test_theorem_71_guarantee(self, seed):
        problem = random_line_problem(30, 10, r=2, seed=seed, window_slack=3)
        report = solve_unit_lines(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6
        assert report.guarantee <= 4.0 / 0.9 + 1e-9

    def test_delta_at_most_three(self):
        problem = random_line_problem(50, 15, r=2, seed=11)
        report = solve_unit_lines(problem, epsilon=0.2, seed=0)
        assert report.result.layout.critical_set_size <= 3

    def test_window_respected(self):
        problem = random_line_problem(40, 12, r=2, seed=12, window_slack=5)
        report = solve_unit_lines(problem, epsilon=0.2, seed=1)
        for d in report.solution.selected:
            demand = problem.demand_by_id(d.demand_id)
            start = min(d.u, d.v)
            end = max(d.u, d.v) - 1
            assert demand.release <= start
            assert end <= demand.deadline
            assert d.length == demand.processing

    def test_at_most_one_placement_per_demand(self):
        problem = random_line_problem(40, 15, r=3, seed=13, window_slack=6)
        report = solve_unit_lines(problem, epsilon=0.2, seed=2)
        ids = [d.demand_id for d in report.solution.selected]
        assert len(ids) == len(set(ids))

    def test_interference_and_slackness(self):
        problem = random_line_problem(30, 10, r=2, seed=14)
        report = solve_unit_lines(problem, epsilon=0.1, seed=3)
        check_interference(report.result.events)
        check_scaled_dual_feasible(
            report.result.dual, problem.instances, report.result.slackness
        )


class TestNarrowLines:
    @pytest.mark.parametrize("seed", range(3))
    def test_guarantee(self, seed):
        problem = random_line_problem(
            25, 9, r=2, seed=seed + 60, height_profile="narrow", hmin=0.2
        )
        report = solve_narrow_lines(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6
        # Lemma 6.1 with Delta = 3: (2*9+1)/(1-eps) = 19 + eps.
        assert report.guarantee <= 19.0 / 0.9 + 1e-9

    def test_rejects_wide(self):
        problem = random_line_problem(20, 6, seed=70, height_profile="bimodal")
        with pytest.raises(ValueError):
            solve_narrow_lines(problem)

    def test_identical_narrow_jobs_respect_guarantee(self):
        from repro.core.demand import WindowDemand
        from repro.core.problem import Problem
        from repro.trees.tree import make_line_network

        problem = Problem(
            networks={0: make_line_network(0, 10)},
            demands=[
                WindowDemand(i, 0, 9, 10, profit=1.0, height=0.2)
                for i in range(5)
            ],
        )
        report = solve_narrow_lines(problem, epsilon=0.05, mis="greedy")
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt == pytest.approx(5.0)  # 5 * 0.2 = 1.0 exactly
        assert opt <= report.guarantee * report.profit + 1e-6


class TestArbitraryLines:
    def test_figure1(self):
        """Figure 1: optimum schedules {A, C} or {B, C} (profit 2)."""
        problem = figure1_problem()
        report = solve_arbitrary_lines(problem, epsilon=0.05, seed=0)
        report.solution.verify()
        assert solve_exact(problem).profit == 2.0
        assert report.profit >= 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_theorem_72_guarantee(self, seed):
        problem = random_line_problem(
            25, 10, r=2, seed=seed + 80, height_profile="bimodal", hmin=0.15
        )
        report = solve_arbitrary_lines(problem, epsilon=0.1, seed=seed)
        report.solution.verify()
        opt = solve_exact(problem).profit
        assert opt <= report.guarantee * report.profit + 1e-6
        assert report.certified_upper_bound >= opt - 1e-6

    def test_parts_when_mixed(self):
        problem = random_line_problem(
            25, 10, r=2, seed=90, height_profile="bimodal", hmin=0.2
        )
        report = solve_arbitrary_lines(problem, epsilon=0.1, seed=1)
        assert set(report.parts) == {"wide", "narrow"}

    def test_all_unit_heights(self):
        problem = random_line_problem(25, 8, r=2, seed=91)
        report = solve_arbitrary_lines(problem, epsilon=0.1, seed=2)
        assert report.name == "unit-lines"
