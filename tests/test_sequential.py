"""Tests for the Appendix A sequential algorithm."""
import pytest

from repro.algorithms.sequential import solve_sequential
from repro.baselines.exact import solve_exact
from repro.baselines.tree_dp import solve_tree_dp
from repro.core.interference import check_interference, check_predecessor_bound
from repro.core.lp import check_scaled_dual_feasible
from repro.workloads import figure2_problem, random_tree_problem
from repro.workloads.trees import random_forest, random_tree


class TestBasics:
    def test_rejects_heights(self):
        problem = figure2_problem()  # heights < 1
        with pytest.raises(ValueError):
            solve_sequential(problem)

    def test_figure2_unit(self):
        problem = figure2_problem(unit_height=True)
        report = solve_sequential(problem)
        assert report.profit == 1.0

    def test_delta_at_most_two(self):
        problem = random_tree_problem(random_forest(25, 2, seed=1), m=15, seed=2)
        report = solve_sequential(problem)
        assert report.result.raised_delta <= 2

    def test_lambda_is_one(self):
        problem = random_tree_problem(random_forest(20, 2, seed=3), m=10, seed=4)
        report = solve_sequential(problem)
        assert report.result.slackness == 1.0
        check_scaled_dual_feasible(report.result.dual, problem.instances, 1.0)

    def test_one_raise_per_step(self):
        problem = random_tree_problem(random_forest(20, 2, seed=5), m=10, seed=6)
        report = solve_sequential(problem)
        for batch in report.result.stack:
            assert len(batch) == 1


class TestApproximation:
    @pytest.mark.parametrize("seed", range(6))
    def test_three_approx_multi_tree(self, seed):
        problem = random_tree_problem(
            random_forest(20, 3, seed=seed), m=12, seed=seed + 11
        )
        report = solve_sequential(problem)
        report.solution.verify()
        assert report.guarantee == 3.0
        opt = solve_exact(problem).profit
        assert opt <= 3.0 * report.profit + 1e-6

    @pytest.mark.parametrize("seed", range(6))
    def test_two_approx_single_tree(self, seed):
        problem = random_tree_problem(
            {0: random_tree(25, seed=seed)}, m=14, seed=seed + 21
        )
        report = solve_sequential(problem)
        report.solution.verify()
        assert report.guarantee == 2.0
        assert report.name == "sequential-single-tree"
        opt = solve_tree_dp(problem)
        assert opt <= 2.0 * report.profit + 1e-6

    def test_alpha_forced_on_single_tree(self):
        problem = random_tree_problem({0: random_tree(15, seed=7)}, m=8, seed=8)
        report = solve_sequential(problem, use_alpha=True)
        assert report.guarantee == 3.0

    def test_certificate(self):
        problem = random_tree_problem(random_forest(18, 2, seed=9), m=10, seed=10)
        report = solve_sequential(problem)
        opt = solve_exact(problem).profit
        assert report.certified_upper_bound >= opt - 1e-6


class TestObservationA1:
    """Raise order satisfies the interference property with wing edges."""

    @pytest.mark.parametrize("seed", range(5))
    def test_interference(self, seed):
        problem = random_tree_problem(
            random_forest(22, 2, seed=seed + 30), m=14, seed=seed + 31
        )
        report = solve_sequential(problem)
        check_interference(report.result.events)
        check_predecessor_bound(report.result.events)

    def test_descending_capture_depth_within_network(self):
        problem = random_tree_problem({0: random_tree(25, seed=41)}, m=12, seed=42)
        report = solve_sequential(problem)
        from repro.trees.root_fixing import build_root_fixing

        td = build_root_fixing(problem.networks[0])
        depths = [td.depth[td.capture_node(ev.instance)] for ev in report.result.events]
        assert depths == sorted(depths, reverse=True)
