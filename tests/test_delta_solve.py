"""Delta-solve correctness under churn.

The contract under test: whatever a churn trajectory does to a
problem, ``solve_delta`` answers **bit-identically** to a cold solve
of the same snapshot -- warm replays, every fallback arm, debounced
storms and wire requests included.  A hypothesis-driven trajectory
driver sweeps mutation streams across the engine matrix; targeted
tests pin each decision arm (ancestor-miss, sketch collision caught as
network-change, too-dirty, exact-hit revert); fault-injection tests
kill a process-pool worker mid-wave, expire the ancestor mid-coalesce,
and sever a wire connection mid-batch.

No ``pytest-asyncio``: each async test drives its own loop with
``asyncio.run`` (the repo convention, see ``test_async_front.py``).
"""
import asyncio
import json
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import solve_auto
from repro.core.engines import backends
from repro.core.problem import Problem
from repro.service import (
    DELTA_OUTCOMES,
    AsyncSchedulingService,
    SchedulingService,
    ServiceError,
    SolveKnobs,
    SolveRequest,
    delta_key,
    diff_problems,
    problem_sketch,
    report_semantic_digest,
)
from repro.trees.tree import TreeNetwork
from repro.workloads import build_trajectory, build_workload, trajectory_names

KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)
#: The engine/backend matrix: only the incremental engine can warm-start
#: (the others report ``engine-fallback``), but digest identity must
#: hold everywhere.
ENGINE_BACKENDS = [
    ("incremental", None),
    ("reference", None),
    ("parallel", "thread"),
    ("parallel", "process"),
]
COMMON = dict(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def service(**kw):
    kw.setdefault("keep_artifacts", True)
    kw.setdefault("disk_dir", None)
    kw.setdefault("workers", 2)
    return SchedulingService(**kw)


def request(problem, knobs=None, label=None):
    return SolveRequest(
        problem=problem,
        knobs=knobs if knobs is not None else SolveKnobs(**KNOBS),
        label=label,
    )


def cold_digest(problem, knobs):
    """Digest of a direct (service-free) solve under *knobs*."""
    report = solve_auto(
        problem,
        epsilon=knobs.epsilon,
        mis=knobs.mis,
        seed=knobs.seed,
        decomposition=knobs.decomposition,
        engine=knobs.engine,
        workers=knobs.workers,
        backend=knobs.backend,
        plan_granularity=knobs.plan_granularity,
    )
    return report_semantic_digest(report)


def replay(svc, trajectory, knobs):
    """Run a trajectory through *svc*, asserting digest identity on
    every snapshot; returns the non-hit delta outcomes in order."""
    outcomes = []
    for step in trajectory:
        req = request(step.problem, knobs, label=f"step+{step.index}")
        if step.index == 0:
            result = svc.solve(req)
        else:
            result = svc.solve_delta(req)
            if result.delta is None:
                # Churn walked back to an already-served snapshot: an
                # exact fingerprint hit, by design not a replay.
                assert result.status == "hit"
            else:
                assert result.delta.outcome in DELTA_OUTCOMES
                outcomes.append(result.delta.outcome)
        assert report_semantic_digest(result.report) == cold_digest(
            step.problem, knobs
        ), f"step {step.index} ({step.kind}) diverged from the cold solve"
    return outcomes


class TestTrajectoryDriver:
    """The hypothesis sweep: any registered trajectory, any seed, any
    engine -- delta answers must be bitwise the cold answers."""

    @settings(**COMMON)
    @given(
        name=st.sampled_from(sorted(trajectory_names())),
        size=st.sampled_from([12, 16]),
        seed=st.integers(min_value=0, max_value=4),
        steps=st.integers(min_value=3, max_value=5),
        engine_backend=st.sampled_from(ENGINE_BACKENDS[:3]),
    )
    def test_delta_equals_cold_along_any_trajectory(
        self, name, size, seed, steps, engine_backend
    ):
        engine, backend = engine_backend
        knobs = SolveKnobs(
            engine=engine, backend=backend, mis="greedy",
            epsilon=0.25, seed=seed,
        )
        outcomes = replay(
            service(), build_trajectory(name, size, seed=seed, steps=steps),
            knobs,
        )
        if engine != "incremental":
            assert set(outcomes) <= {"engine-fallback"}

    @pytest.mark.parametrize("engine,backend", ENGINE_BACKENDS)
    def test_engine_backend_matrix(self, engine, backend):
        # The full matrix deterministically, process backend included
        # (kept out of the hypothesis sweep: pool spawn is seconds).
        knobs = SolveKnobs(
            engine=engine, backend=backend, mis="greedy",
            epsilon=0.25, seed=3,
        )
        outcomes = replay(
            service(), build_trajectory("tenant-churn", 16, seed=3, steps=4),
            knobs,
        )
        if engine == "incremental":
            assert "warm" in outcomes, (
                "an id-stable churn stream must warm-start on the "
                "incremental engine"
            )
        else:
            assert outcomes and set(outcomes) == {"engine-fallback"}

    def test_warm_replay_reruns_only_dirty_epochs(self):
        svc = service()
        knobs = SolveKnobs(**KNOBS)
        trajectory = build_trajectory("tenant-churn", 32, seed=1, steps=6)
        svc.solve(request(trajectory[0].problem, knobs))
        warm = []
        for step in trajectory[1:]:
            result = svc.solve_delta(request(step.problem, knobs))
            if result.delta is not None and result.delta.outcome == "warm":
                warm.append(result.delta)
                assert result.status == "delta"
        assert warm, "expected warm replays along an id-stable stream"
        assert any(s.epochs_replayed > 0 for s in warm), (
            "warm solves must certify-replay clean epochs, not re-run "
            "everything"
        )
        assert all(
            s.epochs_replayed + s.epochs_rerun > 0 and s.ancestor for s in warm
        )

    def test_line_layout_cache_reused_on_warm_replay(self):
        # line_layouts consults the journal's content-keyed layout cache
        # exactly like tree_layouts: demand churn local to one
        # line-network must not rebuild the layered decomposition of the
        # other.  (The registry line workloads give every demand access
        # to every network, so a hand-rolled access split is needed to
        # leave one network untouched.)
        from repro.core.demand import WindowDemand
        from repro.trees.tree import make_line_network

        demands = [
            WindowDemand(i, 0, 7, 3, profit=1.0 + i, height=0.5)
            for i in range(8)
        ]
        problem = Problem(
            networks={0: make_line_network(0, 8), 1: make_line_network(1, 8)},
            demands=demands,
            access={i: (i % 2,) for i in range(8)},
        )
        svc = service()
        knobs = SolveKnobs(**KNOBS)
        svc.solve(request(problem, knobs))
        mutated = Problem(
            networks=problem.networks,
            demands=[replace(demands[0], profit=99.5)] + demands[1:],
            access=dict(problem.access),
        )
        result = svc.solve_delta(request(mutated, knobs))
        assert result.delta is not None and result.delta.outcome == "warm"
        assert result.delta.layouts_reused > 0, (
            "the untouched line-network's layered decomposition must "
            "come from the journal layout cache"
        )
        assert report_semantic_digest(result.report) == cold_digest(
            mutated, knobs
        )


class TestDecisionArms:
    def test_exact_resubmission_is_a_hit_not_a_replay(self):
        svc = service()
        problem = build_workload("multi-tenant-forest", 16, seed=2)
        cold = svc.solve(request(problem))
        again = svc.solve_delta(request(problem))
        assert again.status == "hit" and again.delta is None
        assert report_semantic_digest(again.report) == report_semantic_digest(
            cold.report
        )

    def test_ancestor_miss_on_fresh_service(self):
        svc = service()
        problem = build_workload("multi-tenant-forest", 16, seed=2)
        result = svc.solve_delta(request(problem))
        assert result.status == "miss"
        assert result.delta.outcome == "ancestor-miss"
        # The fallback itself seeded the ancestor index: a perturbation
        # of the same problem now warm-starts.
        mutated = Problem(
            networks=problem.networks,
            demands=[replace(problem.demands[0], profit=99.5)]
            + list(problem.demands[1:]),
            access=dict(problem.access),
        )
        warm = svc.solve_delta(request(mutated))
        assert warm.delta.outcome == "warm"
        assert report_semantic_digest(warm.report) == cold_digest(
            mutated, SolveKnobs(**KNOBS)
        )

    def test_keep_artifacts_false_always_falls_back(self):
        svc = service(keep_artifacts=False)
        problem = build_workload("multi-tenant-forest", 16, seed=2)
        svc.solve_delta(request(problem))
        mutated = Problem(
            networks=problem.networks,
            demands=[replace(problem.demands[0], profit=99.5)]
            + list(problem.demands[1:]),
            access=dict(problem.access),
        )
        result = svc.solve_delta(request(mutated))
        assert result.delta.outcome == "ancestor-miss"
        assert report_semantic_digest(result.report) == cold_digest(
            mutated, SolveKnobs(**KNOBS)
        )

    @staticmethod
    def _two_shape_problem(swap: bool) -> Problem:
        """Two different-shaped networks; *swap* exchanges their ids."""
        path = [(0, 1), (1, 2), (2, 3)]
        star = [(0, 1), (0, 2), (0, 3)]
        a, b = (star, path) if swap else (path, star)
        networks = {0: TreeNetwork(0, a), 1: TreeNetwork(1, b)}
        demands = [
            replace(d, profit=float(3 + d.demand_id))
            for d in (
                build_workload("multi-tenant-forest", 8, seed=0).demands[:4]
            )
        ]
        demands = [replace(d, u=0, v=1) for d in demands]
        # Access only network 0: the id-swap then *moves the demands
        # onto a different shape* -- a semantically different problem
        # (no relabeling makes it the original), yet sketch-identical.
        return Problem(
            networks=networks,
            demands=demands,
            access={d.demand_id: (0,) for d in demands},
        )

    def test_sketch_collision_caught_as_network_change(self):
        original = self._two_shape_problem(swap=False)
        swapped = self._two_shape_problem(swap=True)
        # The id-swap is invisible to the sketch (id-free payloads) --
        # the two problems share a delta bucket...
        assert problem_sketch(original) == problem_sketch(swapped)
        knobs = SolveKnobs(**KNOBS)
        assert delta_key(original, knobs) == delta_key(swapped, knobs)
        # ...but the per-id diff refuses the warm start.
        assert diff_problems(original, swapped).networks_changed
        svc = service()
        svc.solve(request(original))
        result = svc.solve_delta(request(swapped))
        assert result.delta.outcome == "network-change"
        assert report_semantic_digest(result.report) == cold_digest(
            swapped, knobs
        )

    def test_too_dirty_bails_to_cold(self):
        problem = build_workload("multi-tenant-forest", 16, seed=2)
        mutated = Problem(
            networks=problem.networks,
            demands=[
                replace(d, profit=d.profit * 1.5) for d in problem.demands
            ],
            access=dict(problem.access),
        )
        assert (
            diff_problems(problem, mutated).dirty_fraction(mutated) > 0.5
        )
        svc = service()
        svc.solve(request(problem))
        result = svc.solve_delta(request(mutated))
        assert result.delta.outcome == "too-dirty"
        assert result.delta.touched_demands == len(problem.demands)
        assert report_semantic_digest(result.report) == cold_digest(
            mutated, SolveKnobs(**KNOBS)
        )


class TestDebounce:
    @staticmethod
    def storm(delta_debounce=0.05, ttl=None, clock=None, storm_size=4):
        """Fire *storm_size* rapid solve_delta calls (one trajectory's
        consecutive snapshots) at a debounced front door."""
        kw = {}
        if ttl is not None:
            kw.update(ttl=ttl, clock=clock)
        svc = service(**kw)
        # capacity-steps mutations (resize / capacity-step) are all
        # sketch-preserving: the whole storm shares one delta bucket,
        # so it must coalesce into exactly one flush.
        trajectory = build_trajectory(
            "capacity-steps", 16, seed=1, steps=storm_size + 1
        )

        async def run():
            front = AsyncSchedulingService(
                service=svc, delta_debounce=delta_debounce
            )
            await front.solve(request(trajectory[0].problem))
            tasks = [
                asyncio.ensure_future(
                    front.solve_delta(request(step.problem))
                )
                for step in trajectory[1:]
            ]
            if clock is not None:
                # Expire the ancestor *while* the storm is parked in
                # the debouncer, before its quiet period elapses.
                while not len(front._debouncer):
                    await asyncio.sleep(0.001)
                clock.advance(clock.expire_after)
            results = await asyncio.gather(*tasks)
            stats = front.stats
            await front.drain()
            return results, stats

        return trajectory, *asyncio.run(run())

    def test_storm_coalesces_to_latest_snapshot(self):
        trajectory, results, stats = self.storm()
        latest = cold_digest(trajectory[-1].problem, SolveKnobs(**KNOBS))
        assert all(
            report_semantic_digest(r.report) == latest for r in results
        ), "every waiter gets the storm's latest snapshot"
        assert [r.superseded for r in results] == [True] * (len(results) - 1) + [
            False
        ]
        assert stats["debouncer"]["flushes"] == 1
        assert stats["debouncer"]["storms_coalesced"] == len(results) - 1
        # One ancestor solve + one coalesced delta solve.
        assert stats["service"]["solves"] == 2

    def test_drain_flushes_pending_storm(self):
        svc = service()
        trajectory = build_trajectory("tenant-churn", 16, seed=1, steps=2)

        async def run():
            # A debounce window far longer than the test: only the
            # drain's force-flush can resolve the waiter.
            front = AsyncSchedulingService(service=svc, delta_debounce=60.0)
            await front.solve(request(trajectory[0].problem))
            task = asyncio.ensure_future(
                front.solve_delta(request(trajectory[1].problem))
            )
            while not len(front._debouncer):
                await asyncio.sleep(0.005)
            await front.drain()
            return await asyncio.wait_for(task, timeout=5)

        result = asyncio.run(run())
        assert result.delta is not None and result.delta.outcome == "warm"

    def test_debounce_zero_dispatches_immediately(self):
        svc = service()
        trajectory = build_trajectory("tenant-churn", 16, seed=1, steps=2)

        async def run():
            front = AsyncSchedulingService(service=svc)
            await front.solve(request(trajectory[0].problem))
            result = await front.solve_delta(request(trajectory[1].problem))
            await front.drain()
            return result, front.stats

        result, stats = asyncio.run(run())
        assert result.delta.outcome == "warm" and not result.superseded
        assert stats["debouncer"] is None


class FakeClock:
    """Injectable monotonic clock; ``expire_after`` is how far a test
    must advance to blow every TTL it configured."""

    def __init__(self, expire_after):
        self.now = 100.0
        self.expire_after = expire_after

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestFaultInjection:
    def test_process_worker_death_mid_wave_fails_attributably(self):
        """A process-pool worker dying mid-wave during a delta re-solve
        must fail the request attributably, evict the poisoned pool,
        and leave the service able to serve the retry bit-identically.
        """
        from concurrent.futures.process import BrokenProcessPool

        class StubBrokenPool:
            def __init__(self):
                self.shutdown_calls = []

            def submit(self, fn, *args):
                raise BrokenProcessPool("worker died mid-wave")

            def shutdown(self, wait=True, cancel_futures=False):
                self.shutdown_calls.append((wait, cancel_futures))

        workers = 3
        knobs = SolveKnobs(
            engine="parallel", backend="process", workers=workers,
            mis="greedy", epsilon=0.25,
        )
        # Forest workload: its epoch waves hold multiple component
        # jobs, so the wave genuinely fans out to the pool (a 1-job
        # wave would run inline and never touch the dying worker).
        problem = build_workload("multi-tenant-forest", 16, seed=1)
        svc = service()
        stub = StubBrokenPool()
        saved = backends._PROCESS_POOLS.pop(workers, None)
        backends._PROCESS_POOLS[workers] = stub
        try:
            with pytest.raises(ServiceError, match="mid-wave"):
                svc.solve_delta(request(problem, knobs, label="doomed"))
            assert stub.shutdown_calls, "poisoned pool must be shut down"
            assert backends._PROCESS_POOLS.get(workers) is not stub, (
                "poisoned pool must leave the warm registry"
            )
            # The retry re-warms a real pool and serves correctly.
            result = svc.solve_delta(request(problem, knobs, label="retry"))
            assert result.delta.outcome == "engine-fallback"
            assert report_semantic_digest(result.report) == cold_digest(
                problem, knobs
            )
        finally:
            pool = backends._PROCESS_POOLS.pop(workers, None)
            if pool is not None:
                pool.shutdown(wait=True)
            if saved is not None:
                backends._PROCESS_POOLS[workers] = saved

    def test_ancestor_expiry_mid_coalesce_degrades_to_cold(self):
        """The ancestor's cache entry expiring while a storm is parked
        in the debouncer: the flush finds no live ancestor and must
        degrade to an attributed cold solve, never serve stale bits --
        and the fallback re-seeds the bucket for the next delta."""
        clock = FakeClock(expire_after=50.0)
        trajectory, results, stats = TestDebounce.storm(
            ttl=10.0, clock=clock, storm_size=3
        )
        final = results[-1]
        assert final.delta is not None
        assert final.delta.outcome == "ancestor-miss", (
            "an expired ancestor must be pruned, not replayed"
        )
        assert report_semantic_digest(final.report) == cold_digest(
            trajectory[-1].problem, SolveKnobs(**KNOBS)
        )

    def test_wire_severed_mid_batch_leaves_service_healthy(self):
        """A client vanishing with delta requests in flight: the server
        finishes the work, survives the dead socket, and keeps serving
        new connections."""
        lines = [
            {"id": i, "op": "solve_delta", "workload": "multi-tenant-forest",
             "size": 16, "seed": i, "knobs": KNOBS}
            for i in range(3)
        ]

        async def run():
            front = AsyncSchedulingService(service=service())
            host, port = await front.serve()
            _, writer = await asyncio.open_connection(host, port)
            for line in lines:
                writer.write(json.dumps(line).encode() + b"\n")
            await writer.drain()
            writer.transport.abort()  # sever without goodbye
            # The same front door must still answer a fresh connection.
            reader2, writer2 = await asyncio.open_connection(host, port)
            writer2.write(json.dumps(lines[0]).encode() + b"\n")
            await writer2.drain()
            response = json.loads(await reader2.readline())
            writer2.close()
            await writer2.wait_closed()
            await front.drain()
            return response, front.stats

        response, stats = asyncio.run(run())
        assert response["ok"]
        assert response["status"] in ("miss", "hit", "delta")
        assert "delta" in response and "superseded" in response
        assert stats["served"] >= 1
        assert stats["service"]["requests"] >= 1


class TestWireOp:
    def test_solve_delta_op_roundtrip_and_unknown_op(self):
        wire = {
            "id": 1, "op": "solve_delta", "workload": "multi-tenant-forest",
            "size": 16, "seed": 2, "knobs": KNOBS,
        }

        async def run():
            front = AsyncSchedulingService(service=service())
            host, port = await front.serve()
            reader, writer = await asyncio.open_connection(host, port)
            responses = []
            # Strictly sequential (request 2 only after response 1), so
            # the resubmission is a cache hit rather than a coalesce.
            for line in (wire, {**wire, "id": 2}, {"id": 3, "op": "bogus"}):
                writer.write(json.dumps(line).encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return {r.get("id"): r for r in responses}

        by_id = asyncio.run(run())
        first = by_id[1]
        assert first["ok"] and first["status"] == "miss"
        assert first["delta"]["outcome"] == "ancestor-miss"
        assert first["superseded"] is False
        # An identical resubmission is an exact hit: delta rides null.
        second = by_id[2]
        assert second["ok"] and second["status"] == "hit"
        assert second["delta"] is None
        assert not by_id[3]["ok"] and "bogus" in by_id[3]["error"]
        expected = cold_digest(
            build_workload("multi-tenant-forest", 16, seed=2),
            SolveKnobs(**KNOBS, seed=2),
        )
        assert first["semantic_digest"] == expected

    def test_stats_op_surfaces_delta_totals(self):
        """``{"op": "stats"}`` must carry the accumulated DeltaStats
        counters, so replay effectiveness is readable off the wire."""
        problem = build_workload("multi-tenant-forest", 16, seed=2)
        mutated = Problem(
            networks=problem.networks,
            demands=[replace(problem.demands[0], profit=99.5)]
            + list(problem.demands[1:]),
            access=dict(problem.access),
        )

        async def run():
            front = AsyncSchedulingService(service=service())
            host, port = await front.serve()
            await front.solve_delta(request(problem))  # seeds the index
            warm = await front.solve_delta(request(mutated))
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"id": 9, "op": "stats"}).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await front.drain()
            return warm, response

        warm, response = asyncio.run(run())
        assert warm.delta is not None and warm.delta.outcome == "warm"
        svc_stats = response["stats"]["service"]
        totals = svc_stats["delta_totals"]
        snapshot = warm.delta.snapshot()
        for key in (
            "phases", "epochs_replayed", "epochs_rerun", "predicted_dirty",
            "prediction_misses", "layouts_reused", "touched_demands",
            "touched_edges",
        ):
            assert totals[key] >= snapshot[key], key
        assert totals["phases"] >= 1, "the warm replay must be counted"
        assert svc_stats["delta_outcomes"]["warm"] >= 1

    def test_totals_accumulate_counters_added_after_construction(
        self, monkeypatch
    ):
        """Regression: ``_delta_totals`` is seeded from a snapshot taken
        at construction, but the accumulation must iterate the *live*
        snapshot -- a numeric counter that ``DeltaStats.snapshot`` grows
        later (a newer field, a plugin) must show up in
        ``stats["delta_totals"]``, not be silently dropped because the
        seeded dict never had its key."""
        from repro.service import DeltaStats

        svc = service()  # totals seeded from the pristine snapshot
        original = DeltaStats.snapshot

        def snapshot_with_future_counter(stats):
            snap = original(stats)
            snap["future_counter"] = 3
            snap["future_label"] = "not-a-number"  # must be ignored
            return snap

        monkeypatch.setattr(
            DeltaStats, "snapshot", snapshot_with_future_counter
        )
        svc.solve_delta(
            request(build_workload("multi-tenant-forest", 16, seed=2))
        )
        totals = svc.stats["delta_totals"]
        assert totals.get("future_counter", 0) >= 3, (
            "a counter unknown at construction must still accumulate"
        )
        assert "future_label" not in totals
