"""The sharded service tier: ring, router, failover, fan-out, egress.

The contract under test: routing through N shards is invisible in the
served bits -- every response digest equals a direct
:func:`solve_auto` -- while identical requests always land on the same
shard (consistent hashing on the solve fingerprint), ``stats`` and
``invalidate`` fan out across the cluster, a SIGKILLed shard only
re-homes the keys it owned (and the retried requests still serve
bit-identical results), and a ``"sub"``-scribed client tracks the
schedule through delta pushes that digest-verify on both ends.

No ``pytest-asyncio``: each test drives its own loop with
``asyncio.run``; the shard cluster itself is process-based and shared
module-wide to amortize the forks.
"""
import asyncio
import json

import pytest

from repro.algorithms import solve_auto
from repro.service import (
    HashRing,
    ScheduleFollower,
    ShardCluster,
    ShardRouter,
    ShardUnavailable,
    report_semantic_digest,
    schedule_table,
    table_digest,
)
from repro.workloads import build_trajectory, build_workload

KNOBS = dict(engine="incremental", mis="greedy", epsilon=0.25)


def wire(name="bursty-lines", size=14, seed=1, **extra):
    return {"workload": name, "size": size, "seed": seed,
            "knobs": KNOBS, **extra}


def direct_digest(name="bursty-lines", size=14, seed=1):
    report = solve_auto(
        build_workload(name, size, seed=seed), **{**KNOBS, "seed": seed}
    )
    return report_semantic_digest(report)


class TestHashRing:
    def test_deterministic_and_total(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s0", "s1", "s2"])
        keys = [f"key-{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]
        assert set(a.owner(k) for k in keys) == {"s0", "s1", "s2"}, (
            "200 keys over 3 shards must touch every shard"
        )

    def test_removal_moves_only_the_dead_shards_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("s2")
        for k in keys:
            if before[k] != "s2":
                assert ring.owner(k) == before[k], (
                    "a surviving shard's keys must not re-home"
                )
            else:
                assert ring.owner(k) != "s2"

    def test_empty_ring_raises(self):
        ring = HashRing(["s0"])
        ring.remove("s0")
        with pytest.raises(ShardUnavailable, match="empty"):
            ring.owner("k")

    def test_validation(self):
        with pytest.raises(ValueError, match="already"):
            HashRing(["s0", "s0"])
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(["s0"], vnodes=0)
        ring = HashRing(["s0"])
        ring.remove("ghost")  # absent removal is a no-op
        assert len(ring) == 1


@pytest.fixture(scope="module")
def cluster():
    with ShardCluster(shards=2, capacity=32, workers=2) as c:
        yield c


async def rpc(reader, writer, message: dict) -> dict:
    writer.write(json.dumps(message).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def with_router(cluster, body):
    """Run *body(reader, writer)* against a fresh router over *cluster*."""
    router = ShardRouter(cluster.addresses)
    host, port = await router.serve()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await body(reader, writer)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
        await router.aclose()


class TestRoutedServing:
    def test_routed_digests_match_direct_and_replays_hit(self, cluster):
        async def body(reader, writer):
            first = await rpc(reader, writer, wire(id=1))
            again = await rpc(reader, writer, wire(id=2))
            other = await rpc(reader, writer, wire(seed=2, id=3))
            return first, again, other

        first, again, other = asyncio.run(with_router(cluster, body))
        assert first["ok"] and again["ok"] and other["ok"]
        assert first["semantic_digest"] == direct_digest()
        assert again["semantic_digest"] == direct_digest()
        assert again["status"] == "hit", (
            "identical requests route to the same shard, so the replay "
            "must find that shard's cache warm"
        )
        assert other["semantic_digest"] == direct_digest(seed=2)

    def test_stats_aggregates_across_shards(self, cluster):
        async def body(reader, writer):
            for i in range(4):
                await rpc(reader, writer, wire(size=14 + i, id=i))
            return await rpc(reader, writer, {"op": "stats", "id": 99})

        response = asyncio.run(with_router(cluster, body))
        assert response["ok"] and response["id"] == 99
        stats = response["stats"]
        assert stats["router"]["routed"] >= 4
        assert len(stats["shards"]) == 2
        per_shard = sum(s["service"]["requests"] for s in stats["shards"])
        assert stats["aggregate"]["service"]["requests"] == per_shard
        assert "delta_totals" in stats["aggregate"]["service"]

    def test_invalidate_fans_out_and_recolds_every_shard(self, cluster):
        async def body(reader, writer):
            # Spread keys across both shards, then sweep generation 0.
            for i in range(4):
                await rpc(reader, writer, wire(size=20 + i, id=i))
            swept = await rpc(
                reader, writer,
                {"op": "invalidate", "epoch_below": 1, "id": 5},
            )
            after = await rpc(reader, writer, wire(size=20, id=6))
            return swept, after

        swept, after = asyncio.run(with_router(cluster, body))
        assert swept["ok"] and swept["dropped"] >= 4, (
            "the broadcast must sum drops over every shard"
        )
        assert after["ok"] and after["status"] == "miss", (
            "a swept entry must re-solve, not serve stale"
        )

    def test_subscription_tracks_schedule_through_deltas(self, cluster):
        steps = build_trajectory("churn-lines", 16, seed=3, steps=3)

        async def body(reader, writer):
            responses = []
            for k in range(3):
                responses.append(await rpc(reader, writer, {
                    "trajectory": "churn-lines", "size": 16, "seed": 3,
                    "step": k, "knobs": KNOBS, "sub": "watch", "id": k,
                }))
            return responses

        responses = asyncio.run(with_router(cluster, body))
        follower = ScheduleFollower()
        assert all(r["ok"] for r in responses)
        assert responses[0]["push"]["mode"] == "full"
        for k, r in enumerate(responses):
            table = follower.apply(r["push"])
            expected = solve_auto(
                steps[k].problem, **{**KNOBS, "seed": 3}
            )
            assert table_digest(table) == table_digest(
                schedule_table(expected)
            ), f"step {k}: follower table must match a direct solve"
        assert any(r["push"]["mode"] == "delta" for r in responses[1:]), (
            "churn steps share most cells, so some push must be a delta"
        )

    def test_full_sync_escape_hatch(self, cluster):
        async def body(reader, writer):
            first = await rpc(reader, writer, wire(sub="s", id=1))
            forced = await rpc(
                reader, writer, wire(sub="s", full_sync=True, id=2)
            )
            return first, forced

        first, forced = asyncio.run(with_router(cluster, body))
        assert first["push"]["mode"] == "full"
        assert forced["push"]["mode"] == "full", (
            "full_sync: true must override the delta path"
        )
        assert "table" not in first, (
            "the routed table rides the push payload unless the client "
            "asked for it with table: true"
        )


class TestShardDeath:
    def test_kill_rehomes_only_owned_keys_with_identical_digests(self):
        sizes = range(14, 19)

        async def run():
            with ShardCluster(shards=3, capacity=32, workers=2) as cluster:
                router = ShardRouter(cluster.addresses)
                host, port = await router.serve()
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    before = {}
                    for i, size in enumerate(sizes):
                        before[size] = await rpc(
                            reader, writer, wire(size=size, id=i)
                        )
                    cluster.kill(0)
                    after = {}
                    for i, size in enumerate(sizes):
                        after[size] = await rpc(
                            reader, writer, wire(size=size, id=100 + i)
                        )
                    stats = await rpc(
                        reader, writer, {"op": "stats", "id": 999}
                    )
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except Exception:
                        pass
                    await router.aclose()
                return before, after, stats

        before, after, stats = asyncio.run(run())
        assert all(r["ok"] for r in before.values())
        for size in sizes:
            assert after[size]["ok"], f"size {size} must survive the kill"
            assert (
                after[size]["semantic_digest"]
                == before[size]["semantic_digest"]
            ), "a re-homed key must serve the bit-identical artifact"
        assert stats["stats"]["router"]["shards_dead"] == ["shard-0"]
        assert len(stats["stats"]["shards"]) == 2
        # Keys owned by survivors stayed warm: at least one post-kill
        # replay is a hit, and re-homed keys re-solved as misses.
        statuses = {after[s]["status"] for s in sizes}
        assert "hit" in statuses


class TestReprobe:
    def test_restarted_shard_rejoins_without_router_restart(self):
        sizes = range(14, 18)

        async def run():
            with ShardCluster(shards=2, capacity=32, workers=2) as cluster:
                router = ShardRouter(cluster.addresses)
                host, port = await router.serve()
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    before = {}
                    for i, size in enumerate(sizes):
                        before[size] = await rpc(
                            reader, writer, wire(size=size, id=i)
                        )
                    cluster.kill(0)
                    # Traffic against the dead shard makes the router
                    # notice and remove it from the ring.
                    for i, size in enumerate(sizes):
                        await rpc(reader, writer, wire(size=size, id=50 + i))
                    mid = await rpc(reader, writer, {"op": "stats", "id": 98})
                    cluster.restart(0)
                    probe = await rpc(
                        reader, writer, {"op": "reprobe", "id": 99}
                    )
                    after_stats = await rpc(
                        reader, writer, {"op": "stats", "id": 100}
                    )
                    served = {}
                    for i, size in enumerate(sizes):
                        served[size] = await rpc(
                            reader, writer, wire(size=size, id=200 + i)
                        )
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except Exception:
                        pass
                    await router.aclose()
                return before, mid, probe, after_stats, served

        before, mid, probe, after_stats, served = asyncio.run(run())
        assert mid["stats"]["router"]["shards_dead"] == ["shard-0"]
        assert probe["ok"] and probe["rejoined"] == ["shard-0"], (
            "a restarted shard at its old address must rejoin on reprobe"
        )
        router_stats = after_stats["stats"]["router"]
        assert router_stats["shards_dead"] == []
        assert router_stats["shards_live"] == 2
        assert router_stats["ring_rejoins"] == 1
        assert len(after_stats["stats"]["shards"]) == 2
        for size in sizes:
            assert served[size]["ok"]
            assert (
                served[size]["semantic_digest"]
                == before[size]["semantic_digest"]
            ), "a rejoined shard must serve the bit-identical artifact"

    def test_periodic_reprobe_task_rejoins_automatically(self):
        async def run():
            with ShardCluster(shards=2, capacity=32, workers=2) as cluster:
                router = ShardRouter(
                    cluster.addresses, reprobe_interval=0.05
                )
                host, port = await router.serve()
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    for i, size in enumerate(range(14, 18)):
                        await rpc(reader, writer, wire(size=size, id=i))
                    cluster.kill(0)
                    for i, size in enumerate(range(14, 18)):
                        await rpc(reader, writer, wire(size=size, id=50 + i))
                    cluster.restart(0)
                    # The periodic task should rejoin the shard without
                    # any explicit reprobe call; poll stats briefly.
                    for _ in range(100):
                        stats = await rpc(
                            reader, writer, {"op": "stats", "id": 99}
                        )
                        if not stats["stats"]["router"]["shards_dead"]:
                            return stats
                        await asyncio.sleep(0.05)
                    return stats
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except Exception:
                        pass
                    await router.aclose()

        stats = asyncio.run(run())
        router_stats = stats["stats"]["router"]
        assert router_stats["shards_dead"] == []
        assert router_stats["ring_rejoins"] == 1


class TestClusterMetrics:
    def test_metrics_op_merges_shard_histograms_bucket_wise(self):
        async def run():
            with ShardCluster(
                shards=2, capacity=32, workers=2, metrics=True
            ) as cluster:
                router = ShardRouter(cluster.addresses)
                host, port = await router.serve()
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    for i in range(12):
                        await rpc(reader, writer, wire(size=14 + i, id=i))
                    return await rpc(
                        reader, writer, {"op": "metrics", "id": 99}
                    )
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except Exception:
                        pass
                    await router.aclose()

        response = asyncio.run(run())
        assert response["ok"] and response["id"] == 99
        name = "repro_service_request_seconds"

        def request_count(snapshot):
            return sum(
                h["count"]
                for key, h in snapshot["histograms"].items()
                if key.startswith(name)
            )

        shards = response["shards"]
        assert len(shards) == 2
        per_shard = [request_count(s["metrics"]) for s in shards]
        assert sum(per_shard) >= 12
        assert all(c > 0 for c in per_shard), (
            "12 distinct keys over 2 shards must exercise both"
        )
        assert request_count(response["cluster"]) == sum(per_shard), (
            "the cluster view must be the bucket-wise sum of the shards"
        )
        assert f"# TYPE {name} histogram" in response["text"]
        assert response["router"]["shards_live"] == 2
