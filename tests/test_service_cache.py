"""Unit suite for the two-tier result cache.

Covers the LRU discipline (recency promotion, bounded eviction), the
disk tier (round trips, restart survival, overflow reload), digest
verification (corrupted and stale entries degrade to misses -- or
raise, naming the fingerprint, under ``strict=True``), and the
report-level semantic digest the default configuration verifies with.
"""
import pickle

import pytest

from repro.algorithms import solve_auto
from repro.core.canonical import stable_digest
from repro.service.cache import (
    CacheEntry,
    CacheIntegrityError,
    ResultCache,
    report_semantic_digest,
)
from repro.service.fingerprint import Fingerprint
from repro.workloads import build_workload


def fp(tag: str) -> Fingerprint:
    return Fingerprint(stable_digest(tag))


def value_cache(**kwargs) -> ResultCache:
    """A cache for plain picklable values (tuples etc.)."""
    return ResultCache(digest_fn=stable_digest, **kwargs)


class TestMemoryTier:
    def test_round_trip_and_stats(self):
        cache = value_cache(capacity=4)
        assert cache.get(fp("a")) is None
        cache.put(fp("a"), ("payload", 1))
        assert cache.get(fp("a")) == ("payload", 1)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_evicts_least_recently_used(self):
        cache = value_cache(capacity=2)
        cache.put(fp("a"), "A")
        cache.put(fp("b"), "B")
        assert cache.get(fp("a")) == "A"  # refresh a; b is now LRU
        cache.put(fp("c"), "C")
        assert cache.stats.evictions == 1
        assert fp("b") not in cache
        assert cache.get(fp("a")) == "A"
        assert cache.get(fp("c")) == "C"
        assert cache.get(fp("b")) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            value_cache(capacity=0)

    def test_overwrite_same_key(self):
        cache = value_cache(capacity=2)
        cache.put(fp("a"), "old")
        cache.put(fp("a"), "new")
        assert len(cache) == 1
        assert cache.get(fp("a")) == "new"


class TestDiskTier:
    def test_survives_restart(self, tmp_path):
        first = value_cache(capacity=4, disk_dir=str(tmp_path))
        first.put(fp("a"), ("big", "result"))
        second = value_cache(capacity=4, disk_dir=str(tmp_path))
        assert second.get(fp("a")) == ("big", "result")
        assert second.stats.disk_hits == 1
        # Re-admitted to memory: the next lookup is a tier-1 hit.
        assert second.get(fp("a")) == ("big", "result")
        assert second.stats.hits == 1

    def test_eviction_overflow_reloads_from_disk(self, tmp_path):
        cache = value_cache(capacity=1, disk_dir=str(tmp_path))
        cache.put(fp("a"), "A")
        cache.put(fp("b"), "B")  # evicts a from memory, not from disk
        assert cache.stats.evictions == 1
        assert cache.get(fp("a")) == "A"
        assert cache.stats.disk_hits == 1

    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        cache = value_cache(capacity=2, disk_dir=str(tmp_path))
        cache.put(fp("a"), "A")
        path = cache._path(fp("a").digest)
        path.write_bytes(b"\x80garbage")
        fresh = value_cache(capacity=2, disk_dir=str(tmp_path))
        assert fresh.get(fp("a")) is None
        assert fresh.stats.verify_failures == 1
        assert not path.exists(), "a rejected entry must be removed"

    def test_tampered_value_fails_verification(self, tmp_path):
        cache = value_cache(capacity=2, disk_dir=str(tmp_path))
        cache.put(fp("a"), ("honest", "value"))
        path = cache._path(fp("a").digest)
        entry = pickle.loads(path.read_bytes())
        tampered = CacheEntry(
            fingerprint=entry.fingerprint,
            digest=entry.digest,
            value=("tampered", "value"),
        )
        path.write_bytes(pickle.dumps(tampered))
        fresh = value_cache(capacity=2, disk_dir=str(tmp_path))
        assert fresh.get(fp("a")) is None
        assert fresh.stats.verify_failures == 1

    def test_strict_mode_names_the_fingerprint(self, tmp_path):
        cache = value_cache(capacity=2, disk_dir=str(tmp_path))
        cache.put(fp("a"), "A")
        cache._path(fp("a").digest).write_bytes(b"junk")
        strict = value_cache(capacity=2, disk_dir=str(tmp_path), strict=True)
        with pytest.raises(CacheIntegrityError, match=fp("a").short):
            strict.get(fp("a"))

    def test_no_disk_dir_means_no_tier_two(self, tmp_path):
        cache = value_cache(capacity=1)
        cache.put(fp("a"), "A")
        cache.put(fp("b"), "B")
        assert cache.get(fp("a")) is None
        assert cache.stats.disk_hits == 0

    def test_unwritable_disk_degrades_to_memory_only(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("occupies the disk-dir path")
        cache = value_cache(capacity=2, disk_dir=str(blocked))
        cache.put(fp("a"), "A")  # write fails silently, memory admits
        assert cache.stats.disk_write_failures == 1
        assert cache.stats.stores == 1
        assert cache.get(fp("a")) == "A"


class TestReportDigest:
    def test_identical_solves_digest_equal(self):
        problem = build_workload("multi-tenant-forest", 14, seed=2)
        a = solve_auto(problem, mis="greedy", engine="incremental")
        b = solve_auto(
            build_workload("multi-tenant-forest", 14, seed=2),
            mis="greedy", engine="incremental",
        )
        assert report_semantic_digest(a) == report_semantic_digest(b)

    def test_different_problems_digest_differ(self):
        a = solve_auto(
            build_workload("multi-tenant-forest", 14, seed=2),
            mis="greedy", engine="incremental",
        )
        b = solve_auto(
            build_workload("multi-tenant-forest", 14, seed=3),
            mis="greedy", engine="incremental",
        )
        assert report_semantic_digest(a) != report_semantic_digest(b)

    def test_composite_reports_cover_their_parts(self):
        # sparse-access-forest mixes heights, so the arbitrary-trees
        # path produces a wide/narrow composite with result=None on top.
        problem = build_workload("sparse-access-forest", 16, seed=3)
        report = solve_auto(problem, mis="greedy", engine="incremental")
        assert report.parts, "expected a composite report"
        digest = report_semantic_digest(report)
        again = solve_auto(
            build_workload("sparse-access-forest", 16, seed=3),
            mis="greedy", engine="incremental",
        )
        assert report_semantic_digest(again) == digest

    def test_tampered_merged_solution_fails_verification(self, tmp_path):
        # Composite reports carry the served solution outside their
        # parts' semantic tuples; the digest must cover it, or a stale
        # entry with intact parts but a diverged merged solution would
        # pass verification and serve a wrong profit.
        from repro.core.solution import Solution

        problem = build_workload("sparse-access-forest", 16, seed=3)
        report = solve_auto(problem, mis="greedy", engine="incremental")
        assert report.parts and report.result is None
        cache = ResultCache(capacity=2, disk_dir=str(tmp_path))
        cache.put(fp("r"), report)
        path = cache._path(fp("r").digest)
        entry = pickle.loads(path.read_bytes())
        entry.value.solution = Solution(report.solution.selected[:-1])
        path.write_bytes(pickle.dumps(entry))
        fresh = ResultCache(capacity=2, disk_dir=str(tmp_path))
        assert fresh.get(fp("r")) is None
        assert fresh.stats.verify_failures == 1

    def test_report_round_trips_through_pickle(self, tmp_path):
        problem = build_workload("bursty-lines", 12, seed=1)
        report = solve_auto(problem, mis="greedy", engine="incremental")
        cache = ResultCache(capacity=2, disk_dir=str(tmp_path))
        cache.put(fp("r"), report)
        fresh = ResultCache(capacity=2, disk_dir=str(tmp_path))
        loaded = fresh.get(fp("r"))
        assert fresh.stats.verify_failures == 0
        assert report_semantic_digest(loaded) == report_semantic_digest(report)
        assert loaded.result.semantic_tuple() == report.result.semantic_tuple()


class TestKeepArtifacts:
    def test_artifacts_retained_in_memory_when_opted_in(self):
        cache = value_cache(capacity=4, keep_artifacts=True)
        cache.put(fp("a"), "A", artifacts={"journal": "warm-start"})
        entry = cache.peek_entry(fp("a"))
        assert entry.artifacts == {"journal": "warm-start"}
        # Artifacts are a warm-start accelerant, never part of the
        # cached answer: the digest ignores them.
        assert entry.digest == stable_digest("A")

    def test_artifacts_dropped_by_default(self):
        cache = value_cache(capacity=4)
        cache.put(fp("a"), "A", artifacts={"journal": "warm-start"})
        assert cache.peek_entry(fp("a")).artifacts is None

    def test_artifacts_stripped_from_disk_pickle(self, tmp_path):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("journals must never be pickled")

        cache = value_cache(
            capacity=4, disk_dir=str(tmp_path), keep_artifacts=True
        )
        # An unpicklable artifact proves stripping happens before the
        # dump, not that the payload merely round-tripped by luck.
        cache.put(fp("a"), "A", artifacts=Unpicklable())
        assert cache.stats.disk_write_failures == 0
        persisted = pickle.loads(cache._path(fp("a").digest).read_bytes())
        assert persisted.artifacts is None
        assert cache.peek_entry(fp("a")).artifacts is not None

    def test_eviction_to_disk_loses_artifacts(self, tmp_path):
        cache = value_cache(
            capacity=1, disk_dir=str(tmp_path), keep_artifacts=True
        )
        cache.put(fp("a"), "A", artifacts=("warm",))
        cache.put(fp("b"), "B")  # evicts a's memory entry
        assert cache.stats.evictions == 1
        # The disk reload serves the value but has no warm-start to
        # offer -- exactly what the delta path's ancestor screening
        # (peek_fresh + artifacts check) must tolerate.
        assert cache.get(fp("a")) == "A"
        assert cache.peek_entry(fp("a")).artifacts is None

    def test_overwrite_replaces_artifacts(self):
        cache = value_cache(capacity=4, keep_artifacts=True)
        cache.put(fp("a"), "A", artifacts=("old",))
        cache.put(fp("a"), "A", artifacts=("new",))
        assert cache.peek_entry(fp("a")).artifacts == ("new",)


class TestConcurrentDiskWriters:
    def test_interleaved_writers_never_leave_a_corrupt_file(self, tmp_path):
        # Two processes (here: threads, same race surface) persisting
        # the same fingerprint concurrently.  With a fixed ".tmp" name
        # both writers stream into one temp file and a rename can
        # publish the interleaved garble; with pid/thread-unique temp
        # names every rename publishes a file one writer wrote whole,
        # so the survivor always digest-verifies.
        import threading

        from repro.core.canonical import stable_digest

        key = fp("contended")
        caches = [
            ResultCache(digest_fn=stable_digest, disk_dir=str(tmp_path))
            for _ in range(2)
        ]
        rounds = 60
        barrier = threading.Barrier(2)

        def writer(cache, tag):
            for i in range(rounds):
                barrier.wait()
                # Distinct sizable payloads so interleaving is visible.
                entry = cache.make_entry(key, (tag, i, "x" * 4096))
                assert cache.write_disk(entry)

        threads = [
            threading.Thread(target=writer, args=(cache, tag))
            for tag, cache in enumerate(caches)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for cache in caches:
            assert cache.stats.disk_write_failures == 0
        reader = ResultCache(digest_fn=stable_digest, disk_dir=str(tmp_path))
        survivor = reader.load_disk(key)
        assert survivor is not None, "the surviving file must verify"
        assert reader.stats.verify_failures == 0
        assert survivor.value[0] in (0, 1) and survivor.value[1] == rounds - 1
        assert not list(tmp_path.glob("*.tmp")), "no temp files left behind"
