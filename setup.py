"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so
PEP 660 editable installs (which build a wheel) are unavailable.  With
this shim and build isolation disabled, ``pip install -e .`` falls back
to the classic ``setup.py develop`` path, which needs neither.
"""
from setuptools import setup

setup()
