"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so
PEP 660 editable installs (which build a wheel) are unavailable.  With
this shim and build isolation disabled, ``pip install -e .`` falls back
to the classic ``setup.py develop`` path, which needs neither.

The dependency floors here are the single source of truth; CI installs
against the same floors.  ``numpy`` became a hard runtime dependency
with the vectorized first-phase kernel
(:mod:`repro.core.engines.columnar`); the floor covers every array API
the kernel uses (``np.lexsort``, ``np.unique`` with
``return_index``/``return_inverse``, ``ufunc.reduceat``).
"""
from setuptools import find_packages, setup

setup(
    name="repro-line-tree-scheduling",
    version="0.7.0",
    description=(
        "Reproduction of 'Distributed algorithms for scheduling on "
        "line and tree networks' (PODC 2012) with production engines"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
