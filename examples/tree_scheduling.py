"""Tree-network scheduling: the Figure 2 / Figure 6 worked examples.

Reproduces the paper's tree illustrations: the Figure 2 instance where
three demands contend for edge <4,5> (unit heights admit one; heights
0.4/0.7/0.3 admit two), and the Figure 6 tree whose decomposition facts
(capture nodes, wings, bending points) Section 4 walks through.

Run:  python examples/tree_scheduling.py
"""
from repro import build_ideal, build_root_fixing, solve_arbitrary_trees, solve_exact, solve_unit_trees
from repro.trees.layered import bending_point, wings
from repro.workloads import figure2_problem, figure6_network, figure6_problem


def figure2_demo() -> None:
    print("=== Figure 2: three demands through edge <4,5> ===")
    unit = figure2_problem(unit_height=True)
    report = solve_unit_trees(unit, epsilon=0.05, mis="greedy")
    print(f"unit heights: scheduled {len(report.solution)} demand(s) "
          f"(optimum {solve_exact(unit).profit:.0f}) -- they all share <4,5>")

    heights = figure2_problem()
    report_h = solve_arbitrary_trees(heights, epsilon=0.05, mis="greedy", seed=1)
    print(f"heights 0.4/0.7/0.3: profit {report_h.profit:.1f} "
          f"(optimum {solve_exact(heights).profit:.0f}: first and third coexist)")


def figure6_demo() -> None:
    print("\n=== Figure 6: decomposition anatomy of demand <4,13> ===")
    net = figure6_network()
    problem = figure6_problem()
    inst = problem.instances[0]  # the <4,13> demand
    print(f"path(4,13) = {inst.path_vertex_seq}")

    td = build_root_fixing(net, root=1)
    mu = td.capture_node(inst)
    print(f"root-fixing at 1: captured at mu = {mu}, wings {wings(inst, mu)}")
    print(f"bending point w.r.t. 3: {bending_point(net, inst, 3)}")
    print(f"bending point w.r.t. 9: {bending_point(net, inst, 9)}")

    ideal = build_ideal(net)
    print(f"ideal decomposition: depth {ideal.max_depth}, "
          f"pivot size {ideal.pivot_size} (Lemma 4.1: <= 2)")

    report = solve_unit_trees(problem, epsilon=0.05, mis="greedy")
    opt = solve_exact(problem).profit
    print(f"scheduling the 6-demand example: profit {report.profit:.1f}, "
          f"optimum {opt:.1f}, certified bound {report.certified_upper_bound:.2f}")


if __name__ == "__main__":
    figure2_demo()
    figure6_demo()
