"""Watch the distributed algorithm run as real message passing.

Runs the Theorem 5.3 algorithm on the synchronous simulator -- Luby MIS
rounds, dual-raise broadcasts, distributed stacks, phase-2 admission
announcements -- then cross-checks the outcome against the logical
executor with the same hash-derived priorities (they match exactly).

Run:  python examples/distributed_trace.py
"""
from repro.core.framework import run_two_phase
from repro.distributed.runner import build_layout_and_thresholds, run_distributed
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest


def main() -> None:
    problem = random_tree_problem(
        random_forest(20, 2, seed=4), m=12, seed=5, pmax_over_pmin=4.0
    )
    print(f"{len(problem.demands)} processors, {len(problem.instances)} demand "
          f"instances, {len(problem.communication_edges)} communication links")

    report = run_distributed(problem, kind="unit-trees", epsilon=0.25, seed=9)
    sched = report.schedule
    print("\nglobally known schedule:")
    print(f"  epochs (decomposition layers) : {sched.n_epochs}")
    print(f"  stages per epoch              : {sched.stage_count}")
    print(f"  steps per stage (Lemma 5.1)   : {sched.steps_per_stage}")
    print(f"  Luby iterations per step      : {sched.luby_iterations}")

    m = report.metrics
    print("\nsimulation:")
    print(f"  synchronous rounds : {m.rounds}")
    print(f"  messages delivered : {m.messages}")
    print(f"  message volume     : {m.volume} scalar fields (O(M) each)")
    print(f"  profit             : {report.solution.profit:.3f}")
    print(f"  dual certificate   : {report.certified_upper_bound:.3f}")

    layout, thresholds, rule = build_layout_and_thresholds(problem, "unit-trees", 0.25)
    logical = run_two_phase(
        problem.instances, layout, rule, thresholds, mis="hash", seed=9
    )
    same = [d.instance_id for d in report.solution.selected] == [
        d.instance_id for d in logical.solution.selected
    ]
    print(f"\nmatches the logical executor exactly: {same}")
    assert same


if __name__ == "__main__":
    main()
