"""Domain scenario: advance-reservation bandwidth on a backbone tree.

The Lewin-Eytan et al. motivation the paper builds on: customers reserve
bandwidth between pairs of sites on a tree-shaped backbone (or one of
several parallel backbones), each paying a fee (profit) and consuming a
fraction of link capacity (height).  The operator admits a
maximum-revenue subset; the distributed (80+eps) algorithm of Theorem
6.3 does so with processors negotiating only through shared links.

Run:  python examples/video_on_demand.py
"""
import random

from repro import Demand, Problem, lp_upper_bound, solve_arbitrary_trees, solve_greedy
from repro.workloads.trees import random_forest


def build_backbone_problem(seed: int = 7):
    rng = random.Random(seed)
    networks = random_forest(60, 2, seed=seed, shape="caterpillar")
    demands = []
    for i in range(40):
        u, v = rng.sample(range(60), 2)
        # Small transfers are common; big video streams are rare and wide.
        if rng.random() < 0.3:
            height, profit = rng.uniform(0.6, 1.0), rng.uniform(5.0, 10.0)
        else:
            height, profit = rng.uniform(0.1, 0.4), rng.uniform(1.0, 4.0)
        demands.append(Demand(i, u, v, profit=round(profit, 2), height=round(height, 2)))
    access = {
        a.demand_id: tuple(sorted(rng.sample([0, 1], rng.randint(1, 2))))
        for a in demands
    }
    return Problem(networks=networks, demands=demands, access=access)


def main() -> None:
    problem = build_backbone_problem()
    print(f"{len(problem.demands)} reservations over {len(problem.networks)} backbone trees")
    print(f"total requested revenue: {sum(a.profit for a in problem.demands):.1f}")

    ours = solve_arbitrary_trees(problem, epsilon=0.1, seed=0)
    ours.solution.verify()
    greedy = solve_greedy(problem, key="profit")
    lp = lp_upper_bound(problem)

    print(f"\ndistributed (80+eps) algorithm : revenue {ours.profit:.2f} "
          f"({len(ours.solution)} admitted)")
    print(f"greedy-by-fee baseline         : revenue {greedy.profit:.2f} "
          f"({len(greedy.solution)} admitted)")
    print(f"fractional LP upper bound      : {lp:.2f}")
    print(f"dual certificate               : {ours.certified_upper_bound:.2f}")
    print(f"measured gap vs LP             : {lp / ours.profit:.2f}x "
          f"(provable worst case {ours.guarantee:.0f}x)")


if __name__ == "__main__":
    main()
