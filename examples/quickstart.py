"""Quickstart: the Figure 1 line-network example, end to end.

Builds the paper's introductory scenario -- one shared resource, three
demands A/B/C with heights 0.5/0.7/0.4 -- and solves it with the
distributed (4+eps) line algorithm (Theorem 7.1), comparing against the
exact optimum and the run's own weak-duality certificate.

Run:  python examples/quickstart.py
"""
from repro import solve_arbitrary_lines, solve_exact
from repro.workloads import figure1_problem


def main() -> None:
    problem = figure1_problem()
    print("Figure 1: one resource, 10 timeslots, three demands")
    for a in problem.demands:
        print(
            f"  demand {a.demand_id}: slots [{a.release}, {a.deadline}], "
            f"height {a.height}, profit {a.profit}"
        )

    report = solve_arbitrary_lines(problem, epsilon=0.05, seed=0)
    report.solution.verify()
    opt = solve_exact(problem).profit

    print(f"\nalgorithm profit    : {report.profit:.3f}")
    print(f"exact optimum       : {opt:.3f}")
    print(f"dual certificate    : {report.certified_upper_bound:.3f} (upper-bounds OPT)")
    print(f"provable guarantee  : {report.guarantee:.2f}x")
    print("scheduled:", [f"demand {d.demand_id} @ slots {min(d.u, d.v)}..{max(d.u, d.v)-1}" for d in report.solution.selected])

    assert opt <= report.guarantee * report.profit + 1e-9
    print("\nOK: profit is within the proven factor of the optimum.")


if __name__ == "__main__":
    main()
