"""Gallery of the Section 4 tree decompositions.

Builds the root-fixing, balancing, and ideal decompositions on several
tree shapes and prints the depth / pivot-size trade-off the paper's
Table-of-contents argument hinges on: root-fixing has tiny pivots but
linear depth; balancing has log depth but log pivots; the ideal
decomposition achieves both `depth <= 2 ceil(log n)` and `theta <= 2`
(Lemma 4.1).

Run:  python examples/decomposition_gallery.py
"""
import math

from repro import build_balancing, build_ideal, build_root_fixing
from repro.analysis.tables import format_table
from repro.workloads.trees import random_tree

BUILDERS = [
    ("root-fixing", build_root_fixing),
    ("balancing", build_balancing),
    ("ideal", build_ideal),
]


def main() -> None:
    rows = []
    for shape in ("path", "star", "caterpillar", "binary", "uniform"):
        net = random_tree(127, seed=3, shape=shape)
        for name, builder in BUILDERS:
            td = builder(net)
            td.verify(exhaustive_pairs=False)
            rows.append([shape, name, td.max_depth, td.pivot_size])
    print("n = 127 vertices; 2*ceil(log2 n) =", 2 * math.ceil(math.log2(127)))
    print(format_table(["tree shape", "decomposition", "depth", "pivot size"], rows))
    print("\nThe ideal decomposition keeps BOTH parameters small -- that is")
    print("Lemma 4.1, and the reason the distributed algorithm reaches a")
    print("constant approximation in polylog rounds.")


if __name__ == "__main__":
    main()
