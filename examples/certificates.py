"""Per-run optimality certificates at scale.

On instances far beyond exact search, every run of the primal-dual
framework still *proves* how good it is: once all dual constraints are
(1-eps)-satisfied, weak duality gives ``p(Opt) <= val(alpha,beta)/(1-eps)``.
This example schedules hundreds of demands on large random trees and
prints the certified optimality gap of each run -- typically under 2x,
versus the 7.8x worst-case guarantee.

Run:  python examples/certificates.py
"""
from repro import lp_upper_bound, solve_unit_trees
from repro.analysis.tables import format_table
from repro.workloads import random_tree_problem
from repro.workloads.trees import random_forest


def main() -> None:
    rows = []
    for n, m in ((128, 150), (256, 300), (512, 600)):
        problem = random_tree_problem(
            random_forest(n, 3, seed=n), m=m, seed=n + 1, access_size=2
        )
        report = solve_unit_trees(problem, epsilon=0.1, seed=0)
        report.solution.verify()
        lp = lp_upper_bound(problem)
        rows.append(
            [
                n,
                m,
                f"{report.profit:.1f}",
                f"{report.certified_upper_bound:.1f}",
                f"{report.certified_ratio:.2f}x",
                f"{lp / report.profit:.2f}x",
                report.communication_rounds,
            ]
        )
    print(format_table(
        ["n", "demands", "profit", "certified OPT bound",
         "certified gap", "LP gap", "sim rounds"],
        rows,
    ))
    print("\nworst-case guarantee at eps=0.1: 7/(1-0.1) = 7.78x --")
    print("the certificates show each actual run did far better.")


if __name__ == "__main__":
    main()
