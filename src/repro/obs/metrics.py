"""Dependency-free metrics primitives: counters, gauges, histograms.

The serving stack (cache tier, asyncio front door, delta-solve, shard
router) needs a *structured* telemetry surface -- not another ad-hoc
counter dict -- so this module provides the three classic instrument
kinds behind one process-wide :class:`MetricsRegistry`:

* :class:`Counter` -- monotonically increasing count (requests served,
  SLO violations).  Merging is addition.
* :class:`Gauge` -- a point-in-time level (queue depth, pool
  utilization).  Merging is addition too: summing per-shard queue
  depths *is* the cluster queue depth.
* :class:`Histogram` -- observations bucketed over **fixed log-spaced
  latency bounds** (:data:`LATENCY_BUCKETS`, ~100 microseconds to one
  minute).  Fixed bounds are the point: every latency histogram in the
  process -- and in every *shard* process -- shares the same bucket
  edges, so snapshots merge by bucket-wise addition and the shard
  router can aggregate a cluster-wide view without resampling
  (:func:`merge_snapshots`).  Quantiles (p50/p99 for the SLO asserts)
  are estimated by linear interpolation inside the owning bucket,
  tightened by the tracked min/max.

Series are **labeled**: ``registry.counter("repro_service_requests_total",
status="hit")`` names one series per distinct label set, keyed
``name{status="hit"}`` in snapshots -- the Prometheus data model, and
:func:`render_prometheus` emits the matching text exposition.

Thread-safety: one lock per registry guards creation, updates and
snapshots, so a snapshot is always internally consistent (no torn
histogram: ``sum(counts) == count`` holds under any concurrent write
load) and counters read monotone across successive snapshots.  The
instruments are deliberately cheap -- a dict lookup and a few adds --
because the solve path records into them on every request.

Nothing here imports outside the standard library; the registry is
usable from any layer (engines included) without a dependency cycle.
"""
from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "default_registry",
    "merge_snapshots",
    "parse_series_key",
    "quantile_from_histogram",
    "render_prometheus",
    "series_key",
]

#: The shared log-spaced latency bucket upper bounds, in seconds: a
#: 1-2.5-5 decade ladder from 100 microseconds (a memory-tier cache
#: hit) to one minute (a pathological cold solve), closed by +inf.
#: Every latency histogram uses these same bounds so per-shard
#: snapshots merge bucket-wise -- do not vary them per series.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 60.0,
    math.inf,
)

LabelItems = Tuple[Tuple[str, str], ...]


def series_key(name: str, labels: Mapping[str, str]) -> str:
    """The canonical snapshot key of one labeled series.

    ``name`` alone for an unlabeled series, else
    ``name{k="v",...}`` with label keys sorted -- the same series
    always produces the same key, whatever order the call site passed
    its labels in.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`series_key` (snapshot post-processing, tests)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels


class Counter:
    """A monotonically increasing count.  Created via the registry."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A settable level (queue depth, utilization fraction)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Observations bucketed over fixed upper bounds.

    ``bounds`` must end in ``+inf`` (every observation lands
    somewhere); the default is :data:`LATENCY_BUCKETS`.  Tracks sum,
    count and min/max alongside the bucket counts, so snapshots
    support both mean and interpolated quantiles.
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(
        self, lock: threading.Lock, bounds: Sequence[float] = LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(bounds)
        if not bounds or bounds[-1] != math.inf:
            raise ValueError("histogram bounds must end in +inf")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self._lock = lock
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def _bucket_of(self, value: float) -> int:
        # Linear scan beats bisect at this bucket count for the common
        # (small-latency) case, and has no import or call overhead.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds) - 1  # pragma: no cover -- inf catches all

    def observe(self, value: float) -> None:
        i = self._bucket_of(value)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value


def _histogram_snapshot(h: Histogram) -> dict:
    return {
        "bounds": [b if b != math.inf else "+inf" for b in h.bounds],
        "counts": list(h.counts),
        "sum": h.sum,
        "count": h.count,
        "min": h.min if h.count else None,
        "max": h.max if h.count else None,
    }


def _decode_bound(b) -> float:
    return math.inf if b == "+inf" else float(b)


def quantile_from_histogram(snap: Mapping, q: float) -> float:
    """Estimate the *q*-quantile of one histogram snapshot.

    Walks the cumulative bucket counts to the bucket holding the
    target rank, then interpolates linearly inside it; the tracked
    min/max clamp the first and last occupied buckets (so a histogram
    of identical observations answers exactly that value).  ``nan``
    for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = snap["count"]
    if not count:
        return math.nan
    bounds = [_decode_bound(b) for b in snap["bounds"]]
    lo = snap["min"] if snap.get("min") is not None else 0.0
    hi = snap["max"] if snap.get("max") is not None else bounds[-2]
    rank = q * count
    cumulative = 0.0
    for i, c in enumerate(snap["counts"]):
        if not c:
            continue
        lower = max(bounds[i - 1], lo) if i else lo
        upper = min(bounds[i], hi) if bounds[i] != math.inf else hi
        if cumulative + c >= rank:
            within = (rank - cumulative) / c
            return lower + (upper - lower) * max(0.0, min(1.0, within))
        cumulative += c
    return hi


class MetricsRegistry:
    """A process-wide set of labeled metric series.

    ``counter``/``gauge``/``histogram`` fetch-or-create the series for
    ``(name, labels)``; a name is bound to exactly one instrument kind
    and (for histograms) one bounds tuple -- mixing kinds under one
    name raises, because the merged cluster view could not represent
    it.  :meth:`snapshot` returns a plain jsonable dict taken under
    the registry lock (internally consistent by construction);
    :func:`merge_snapshots` folds many such snapshots -- typically one
    per shard -- into one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._kinds: Dict[str, str] = {}
        #: (name, sorted label items[, bounds]) -> instrument: the
        #: lock-free fast path for repeat fetches.  Per-request tracing
        #: re-fetches the same few series on every request; skipping
        #: the key-string build and the lock there keeps the hit-path
        #: overhead in single-digit microseconds.  Benign under races:
        #: a missed read falls through to the locked fetch-or-create,
        #: which is idempotent.
        self._memo: Dict[tuple, object] = {}
        #: Scratch cache for hot-path callers (the trace layer) that
        #: resolve the same few instruments on every request: they key
        #: it with their own precomputed tuples, skipping even the
        #: kwargs plumbing of the fetch methods.  Same race-benignity
        #: as ``_memo``; cleared by :meth:`reset`.
        self.trace_cache: Dict[tuple, object] = {}

    def _claim(self, name: str, kind: str) -> None:
        held = self._kinds.setdefault(name, kind)
        if held != kind:
            raise ValueError(
                f"metric {name!r} is already a {held}, cannot re-register "
                f"as a {kind}"
            )

    def counter(self, name: str, **labels: str) -> Counter:
        memo_key = ("counter", name, tuple(sorted(labels.items())))
        series = self._memo.get(memo_key)
        if series is not None:
            return series
        key = series_key(name, labels)
        with self._lock:
            self._claim(name, "counter")
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(self._lock)
            self._memo[memo_key] = series
        return series

    def gauge(self, name: str, **labels: str) -> Gauge:
        memo_key = ("gauge", name, tuple(sorted(labels.items())))
        series = self._memo.get(memo_key)
        if series is not None:
            return series
        key = series_key(name, labels)
        with self._lock:
            self._claim(name, "gauge")
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(self._lock)
            self._memo[memo_key] = series
        return series

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        bounds = tuple(bounds)
        memo_key = ("histogram", name, tuple(sorted(labels.items())), bounds)
        series = self._memo.get(memo_key)
        if series is not None:
            return series
        key = series_key(name, labels)
        with self._lock:
            self._claim(name, "histogram")
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(self._lock, bounds)
            elif bounds != series.bounds:
                raise ValueError(
                    f"histogram {key} already registered with different bounds"
                )
            self._memo[memo_key] = series
        return series

    def snapshot(self) -> dict:
        """A consistent, jsonable copy of every series.

        Taken under the registry lock, so no concurrent ``observe``
        can tear a histogram (``sum(counts) == count`` always holds)
        and successive snapshots see counters monotone.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: _histogram_snapshot(h)
                    for k, h in self._histograms.items()
                },
            }

    def quantile(self, name: str, q: float, **labels: str) -> float:
        """The *q*-quantile of ``name``'s histogram series.

        Labels given act as a *filter*: all series of ``name`` whose
        labels include every given pair are merged bucket-wise first,
        so ``quantile("repro_service_request_seconds", 0.99,
        family="line")`` spans the hit, coalesced and cold series of
        that family at once.  ``nan`` when nothing matches.
        """
        snap = self.snapshot()["histograms"]
        merged: Optional[dict] = None
        for key, h in snap.items():
            k_name, k_labels = parse_series_key(key)
            if k_name != name:
                continue
            if any(k_labels.get(lk) != lv for lk, lv in labels.items()):
                continue
            merged = h if merged is None else _merge_histograms(merged, h)
        if merged is None:
            return math.nan
        return quantile_from_histogram(merged, q)

    def reset(self) -> None:
        """Drop every series (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._kinds.clear()
            self._memo.clear()
            self.trace_cache.clear()


def _merge_histograms(a: Mapping, b: Mapping) -> dict:
    if list(a["bounds"]) != list(b["bounds"]):
        raise ValueError(
            "cannot merge histograms with different bucket bounds: "
            f"{a['bounds']} vs {b['bounds']}"
        )
    mins = [m for m in (a.get("min"), b.get("min")) if m is not None]
    maxes = [m for m in (a.get("max"), b.get("max")) if m is not None]
    return {
        "bounds": list(a["bounds"]),
        "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        "sum": a["sum"] + b["sum"],
        "count": a["count"] + b["count"],
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
    }


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Fold many registry snapshots into one cluster-wide view.

    Counters and gauges add; histograms add **bucket-wise** (the fixed
    shared bounds make this exact, not approximate) -- the operation
    the shard router uses to answer ``{"op": "metrics"}`` for the
    whole cluster.  Mismatched histogram bounds raise.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for key, v in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0.0) + v
        for key, v in snap.get("gauges", {}).items():
            merged["gauges"][key] = merged["gauges"].get(key, 0.0) + v
        for key, h in snap.get("histograms", {}).items():
            held = merged["histograms"].get(key)
            merged["histograms"][key] = (
                dict(h) if held is None else _merge_histograms(held, h)
            )
    return merged


def snapshot_quantile(snapshot: Mapping, name: str, q: float, **labels: str) -> float:
    """The *q*-quantile of ``name``'s histogram series in a jsonable
    *snapshot* (as produced by :meth:`MetricsRegistry.snapshot`, the
    ``metrics`` wire op, or :func:`merge_snapshots`).

    The offline twin of :meth:`MetricsRegistry.quantile`: series whose
    labels contain *labels* merge bucket-wise before estimation, so a
    benchmark can ask a served snapshot for per-family tail latency
    without holding the registry.  ``nan`` when nothing matches.
    """
    merged = None
    for key, h in snapshot.get("histograms", {}).items():
        base, got = parse_series_key(key)
        if base != name:
            continue
        if any(got.get(k) != v for k, v in labels.items()):
            continue
        merged = dict(h) if merged is None else _merge_histograms(merged, h)
    if merged is None:
        return math.nan
    return quantile_from_histogram(merged, q)


def _prom_line(key: str, value: float, extra_label: str = "") -> str:
    name, labels = parse_series_key(key)
    items = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra_label:
        items.append(extra_label)
    label_str = "{" + ",".join(items) + "}" if items else ""
    return f"{name}{label_str} {value}"


def render_prometheus(snapshot: Mapping) -> str:
    """The Prometheus text exposition of one (possibly merged) snapshot.

    Emits ``# TYPE`` headers per metric name and the standard
    ``_bucket``/``_sum``/``_count`` triplet (cumulative ``le`` labels)
    for histograms, so the output scrapes cleanly into any
    Prometheus-compatible collector.
    """
    lines: List[str] = []
    typed: set = set()

    def type_header(key: str, kind: str, suffix: str = "") -> None:
        name = parse_series_key(key)[0]
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name}{suffix} {kind}")

    for key in sorted(snapshot.get("counters", {})):
        type_header(key, "counter")
        lines.append(_prom_line(key, snapshot["counters"][key]))
    for key in sorted(snapshot.get("gauges", {})):
        type_header(key, "gauge")
        lines.append(_prom_line(key, snapshot["gauges"][key]))
    for key in sorted(snapshot.get("histograms", {})):
        type_header(key, "histogram")
        h = snapshot["histograms"][key]
        name, labels = parse_series_key(key)
        cumulative = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            cumulative += count
            le = "+Inf" if bound == "+inf" else repr(_decode_bound(bound))
            lines.append(
                _prom_line(
                    series_key(f"{name}_bucket", labels),
                    cumulative,
                    extra_label=f'le="{le}"',
                )
            )
        lines.append(_prom_line(series_key(f"{name}_sum", labels), h["sum"]))
        lines.append(
            _prom_line(series_key(f"{name}_count", labels), h["count"])
        )
    return "\n".join(lines) + "\n"


#: The process-default registry.  Layers that cannot be handed a
#: registry explicitly (the epoch executor sits many call frames below
#: any service object) record here; the service layer uses it too when
#: constructed with ``metrics=True``, so one ``{"op": "metrics"}``
#: snapshot covers the whole process.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT
