"""Production telemetry for the serving stack.

Dependency-free metrics (:mod:`repro.obs.metrics`), per-request phase
tracing (:mod:`repro.obs.trace`), and SLO tracking over the same
histograms (:mod:`repro.obs.slo`).  See the README "Observability"
section for the metric-name catalogue and label conventions.
"""
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
    merge_snapshots,
    parse_series_key,
    quantile_from_histogram,
    render_prometheus,
    series_key,
    snapshot_quantile,
)
from .slo import DEFAULT_TARGETS, SLOTracker
from .trace import NULL_TRACE, NullTrace, PHASES, Span, Trace, trace_request

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "default_registry",
    "merge_snapshots",
    "parse_series_key",
    "quantile_from_histogram",
    "render_prometheus",
    "series_key",
    "snapshot_quantile",
    "DEFAULT_TARGETS",
    "SLOTracker",
    "NULL_TRACE",
    "NullTrace",
    "PHASES",
    "Span",
    "Trace",
    "trace_request",
]
