"""Per-request phase tracing: spans recorded into phase histograms.

A request moving through :class:`~repro.service.server.SchedulingService`
passes distinct phases -- validate, fingerprint, cache probe, dispatch,
solve, digest -- and the interesting question in production is *which
phase* the wall-clock went to (a slow cache probe and a slow solve need
opposite fixes).  :class:`Trace` is a lightweight per-request recorder:

    trace = Trace(registry, family="tree")
    with trace.span("validate"):
        ...
    with trace.span("solve"):
        ...
    trace.finish(status="cold")

Each ``span()`` context observes its elapsed seconds into the labeled
histogram ``repro_service_phase_seconds{phase=..., family=...}``, and
``finish()`` observes the whole request into
``repro_service_request_seconds{family=..., status=...}`` (status is
the cache outcome: ``hit``/``coalesced``/``cold``/``delta``/``error``).
Phase timings therefore aggregate across requests in the registry --
no per-request retention, no unbounded memory.

When telemetry is disabled the service uses :data:`NULL_TRACE`, whose
spans are a shared no-op context manager: the instrumented code path
is identical with telemetry on or off (one attribute call per phase),
which is what keeps the digest-identity and <5% overhead guarantees
trivially true.

:func:`trace_request` is the public entry point: it hands back a
real :class:`Trace` or :data:`NULL_TRACE` depending on the registry
argument, so call sites never branch on "is telemetry on".
"""
from __future__ import annotations

import time
from typing import Optional

from .metrics import MetricsRegistry

__all__ = [
    "NULL_TRACE",
    "NullTrace",
    "PHASES",
    "Span",
    "Trace",
    "trace_request",
]

#: Canonical request phases, in pipeline order.  Other layers may add
#: their own phase labels (the async front door records ``admission``);
#: these are the ones the scheduling service itself emits.
PHASES = ("validate", "fingerprint", "cache_probe", "dispatch", "solve", "digest")

PHASE_HISTOGRAM = "repro_service_phase_seconds"
REQUEST_HISTOGRAM = "repro_service_request_seconds"


class Span:
    """One timed phase of one request (context manager).

    Records elapsed wall-clock into the phase histogram on exit,
    whether or not the body raised -- a phase that failed still spent
    the time.
    """

    __slots__ = ("_trace", "phase", "started", "elapsed")

    def __init__(self, trace: "Trace", phase: str) -> None:
        self._trace = trace
        self.phase = phase
        self.started = 0.0
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Span":
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self.started
        self._trace._record_phase(self.phase, self.elapsed)


class Trace:
    """The phase recorder for one request (see module docstring)."""

    __slots__ = ("registry", "family", "started", "finished")

    def __init__(self, registry: MetricsRegistry, family: str = "unknown") -> None:
        self.registry = registry
        self.family = family
        self.started = time.perf_counter()
        self.finished = False

    def span(self, phase: str) -> Span:
        return Span(self, phase)

    def _record_phase(self, phase: str, elapsed: float) -> None:
        # Resolved through the registry's hot-path instrument cache:
        # this runs several times per request, and the labeled fetch
        # (kwargs + sorted key build) would dominate a cache hit.
        cache = self.registry.trace_cache
        key = (PHASE_HISTOGRAM, phase, self.family)
        histogram = cache.get(key)
        if histogram is None:
            histogram = cache[key] = self.registry.histogram(
                PHASE_HISTOGRAM, phase=phase, family=self.family
            )
        histogram.observe(elapsed)

    def set_family(self, family: str) -> None:
        """Re-label once the family is known (it is computed mid-request,
        after validation -- the trace starts before the problem family
        can be cheaply determined)."""
        self.family = family

    def finish(self, status: str) -> float:
        """Observe the whole request under its outcome ``status``.

        Idempotent on repeat calls (the first wins) so error paths can
        finish defensively.  Returns total elapsed seconds.
        """
        elapsed = time.perf_counter() - self.started
        if not self.finished:
            self.finished = True
            cache = self.registry.trace_cache
            key = (REQUEST_HISTOGRAM, self.family, status)
            pair = cache.get(key)
            if pair is None:
                pair = cache[key] = (
                    self.registry.histogram(
                        REQUEST_HISTOGRAM, family=self.family, status=status
                    ),
                    self.registry.counter(
                        "repro_service_requests_total",
                        family=self.family,
                        status=status,
                    ),
                )
            pair[0].observe(elapsed)
            pair[1].inc()
        return elapsed


class _NullSpan:
    """Shared no-op span: zero allocation per phase when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTrace:
    """The disabled-telemetry trace: every operation is a no-op."""

    __slots__ = ()
    family = "unknown"

    def span(self, phase: str) -> _NullSpan:
        return _NULL_SPAN

    def set_family(self, family: str) -> None:
        return None

    def finish(self, status: str) -> float:
        return 0.0


#: The process-shared disabled trace (stateless, so one suffices).
NULL_TRACE = NullTrace()


def trace_request(registry: Optional[MetricsRegistry], family: str = "unknown"):
    """A :class:`Trace` into ``registry``, or :data:`NULL_TRACE` if
    telemetry is off (``registry is None``)."""
    if registry is None:
        return NULL_TRACE
    return Trace(registry, family=family)
