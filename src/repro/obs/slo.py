"""SLO tracking on top of the request-latency histograms.

An :class:`SLOTracker` holds per-family latency budgets (seconds) and
rides on the same ``repro_service_request_seconds`` histograms the
trace layer populates: each finished request is checked against its
family's budget, over-budget requests bump
``repro_slo_over_budget_total{family=...}``, and :meth:`report`
answers "is the p99 inside target?" straight from the merged histogram
buckets -- the quantity benches E18/E19/E22 assert on.

Budgets apply to *served* latency, whatever the cache outcome; the
report breaks attainment out per family so a cold-solve-heavy family
can carry a looser budget than a warm-hit-heavy one.  Targets default
to :data:`DEFAULT_TARGETS`, deliberately generous -- the point of the
defaults is exercising the mechanism on shared CI hardware, not
enforcing production numbers; real deployments pass their own.
"""
from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from .metrics import MetricsRegistry
from .trace import REQUEST_HISTOGRAM

__all__ = ["DEFAULT_TARGETS", "SLOTracker"]

#: Default per-family p99 budgets in seconds.  Loose by design (CI).
DEFAULT_TARGETS: Dict[str, float] = {"line": 5.0, "tree": 5.0}

OVER_BUDGET_COUNTER = "repro_slo_over_budget_total"
OBSERVED_COUNTER = "repro_slo_requests_total"


class SLOTracker:
    """Per-family latency budgets with over-budget counting.

    The service calls :meth:`observe` once per finished request (the
    trace already timed it); everything else reads from the registry,
    so a tracker can also be pointed at a *merged* cluster snapshot's
    registry-of-origin via :meth:`attainment_from_snapshot`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        targets: Optional[Mapping[str, float]] = None,
        quantile: float = 0.99,
    ) -> None:
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        self.registry = registry
        self.targets: Dict[str, float] = dict(
            DEFAULT_TARGETS if targets is None else targets
        )
        self.quantile = quantile
        #: family -> observed counter, resolved once: observe() runs on
        #: every served request, so it must not pay the labeled-series
        #: fetch each time.
        self._observed: Dict[str, object] = {}

    def budget_for(self, family: str) -> Optional[float]:
        return self.targets.get(family)

    def observe(self, family: str, elapsed: float) -> bool:
        """Record one served request; True when it blew its budget."""
        budget = self.targets.get(family)
        counter = self._observed.get(family)
        if counter is None:
            counter = self._observed[family] = self.registry.counter(
                OBSERVED_COUNTER, family=family
            )
        counter.inc()
        over = budget is not None and elapsed > budget
        if over:
            self.registry.counter(OVER_BUDGET_COUNTER, family=family).inc()
        return over

    def latency_quantile(self, family: str, q: Optional[float] = None) -> float:
        """The measured latency quantile of one family, across all
        cache outcomes (nan when the family served nothing)."""
        return self.registry.quantile(
            REQUEST_HISTOGRAM, self.quantile if q is None else q, family=family
        )

    def report(self) -> dict:
        """Attainment per configured family.

        ``{"family": {"target": s, "quantile": 0.99, "measured": s,
        "met": bool, "over_budget": n, "observed": n}}`` -- ``met`` is
        True when the family served nothing yet (vacuous attainment)
        or its measured quantile is inside target.
        """
        snap = self.registry.snapshot()["counters"]
        out: Dict[str, dict] = {}
        for family, target in sorted(self.targets.items()):
            measured = self.latency_quantile(family)
            observed = snap.get(
                f'{OBSERVED_COUNTER}{{family="{family}"}}', 0.0
            )
            over = snap.get(
                f'{OVER_BUDGET_COUNTER}{{family="{family}"}}', 0.0
            )
            out[family] = {
                "target": target,
                "quantile": self.quantile,
                "measured": None if math.isnan(measured) else measured,
                "met": math.isnan(measured) or measured <= target,
                "over_budget": over,
                "observed": observed,
            }
        return out
