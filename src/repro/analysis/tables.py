"""Plain-text table rendering for the benchmark reports."""
from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value: object) -> str:
    """Render one table cell (floats get 4 significant digits)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a header rule."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
