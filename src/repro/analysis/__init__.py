"""Measurement and reporting helpers for the experiments."""
from repro.analysis.metrics import RatioReport, measure, theoretical_round_bound
from repro.analysis.tables import format_table

__all__ = ["RatioReport", "format_table", "measure", "theoretical_round_bound"]
