"""Ratio and round-complexity measurement helpers.

The experiments compare each algorithm's profit against three
yardsticks, in decreasing order of tightness:

1. the exact optimum (branch-and-bound or the single-tree DP),
2. the fractional LP optimum (scipy/HiGHS), and
3. the run's own weak-duality certificate ``val(alpha,beta)/lambda``.

All three upper-bound ``p(Opt)``, so every ratio reported is an upper
bound on the true approximation factor achieved.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import AlgorithmReport
from repro.baselines.exact import ExactSizeError, solve_exact
from repro.core.lp import lp_upper_bound
from repro.core.problem import Problem


@dataclass
class RatioReport:
    """Measured quality of one algorithm run on one problem."""

    profit: float
    exact_opt: Optional[float]
    lp_bound: float
    certified_bound: float
    guarantee: float

    @property
    def ratio_vs_exact(self) -> Optional[float]:
        """``Opt / p(S)`` when the exact optimum is known."""
        if self.exact_opt is None:
            return None
        if self.profit <= 0:
            return math.inf if self.exact_opt > 0 else 1.0
        return self.exact_opt / self.profit

    @property
    def ratio_vs_lp(self) -> float:
        """``LP / p(S)`` -- an upper bound on the true ratio."""
        if self.profit <= 0:
            return math.inf if self.lp_bound > 0 else 1.0
        return self.lp_bound / self.profit

    @property
    def certified_ratio(self) -> float:
        """``(val/lambda) / p(S)`` -- the run's self-certified factor."""
        if self.profit <= 0:
            return math.inf
        return self.certified_bound / self.profit


def measure(
    problem: Problem,
    report: AlgorithmReport,
    with_exact: bool = True,
    exact_cap: int = 20,
) -> RatioReport:
    """Measure *report* against the available optimum yardsticks."""
    exact_opt: Optional[float] = None
    if with_exact and len(problem.demands) <= exact_cap:
        try:
            exact_opt = solve_exact(problem, max_demands=exact_cap).profit
        except ExactSizeError:  # pragma: no cover - guarded by the check above
            exact_opt = None
    return RatioReport(
        profit=report.profit,
        exact_opt=exact_opt,
        lp_bound=lp_upper_bound(problem),
        certified_bound=report.certified_upper_bound,
        guarantee=report.guarantee,
    )


def theoretical_round_bound(
    n: int, epsilon: float, pmax_over_pmin: float, time_mis: float
) -> float:
    """The Theorem 5.3 round bound
    ``Time(MIS) * log n * log(1/eps) * log(pmax/pmin)`` (up to constants,
    with every log at least 1)."""
    log_n = max(1.0, math.log2(max(2, n)))
    log_eps = max(1.0, math.log2(1.0 / epsilon))
    log_p = max(1.0, math.log2(max(2.0, pmax_over_pmin)))
    return time_mis * log_n * log_eps * log_p
