"""Length-class layered decomposition for line-networks (Section 7).

Partition the demand instances of a line into groups by length:
group ``i`` holds the instances with ``2^(i-1) * Lmin <= len(d) <
2^i * Lmin`` (shortest first).  The critical edges of ``d`` are the
timeslots ``{s(d), mid(d), e(d)}``, so ``Delta = 3`` and the number of
groups is ``ceil(log2(Lmax/Lmin)) + 1 = O(log(Lmax/Lmin))``.

Why the layered property holds: take overlapping ``d1 in Gi``,
``d2 in Gj`` with ``i <= j``.  If ``d2`` avoided all three critical
slots of ``d1``, its slot interval would fit strictly inside
``(s, mid)`` or ``(mid, e)``, forcing ``len(d2) < len(d1)/2``; but
``len(d1) < 2^i Lmin <= 2^j Lmin <= 2 len(d2)`` -- a contradiction.
This decomposition is implicit in Panconesi and Sozio [16].
"""
from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.demand import DemandInstance
from repro.core.types import EdgeKey, InstanceId
from repro.lines.line import instance_mid_slot, instance_slots, slot_to_edge
from repro.trees.layered import LayeredDecomposition


def layered_by_length(
    network_id: int, instances: Sequence[DemandInstance]
) -> LayeredDecomposition:
    """Build the length-class layered decomposition of one line-network."""
    mine = [d for d in instances if d.network_id == network_id]
    if not mine:
        return LayeredDecomposition(network_id=network_id, group_of={}, pi={}, length=0)
    lengths = [d.length for d in mine]
    l_min = min(lengths)
    group_of: Dict[InstanceId, int] = {}
    pi: Dict[InstanceId, Tuple[EdgeKey, ...]] = {}
    n_groups = 0
    for d in mine:
        k = 1
        bound = 2 * l_min  # group k holds lengths in [2^(k-1) Lmin, 2^k Lmin)
        while d.length >= bound:
            bound *= 2
            k += 1
        group_of[d.instance_id] = k
        n_groups = max(n_groups, k)
        s, e = instance_slots(d)
        mid = instance_mid_slot(d)
        critical = sorted(
            {
                slot_to_edge(network_id, s),
                slot_to_edge(network_id, mid),
                slot_to_edge(network_id, e),
            }
        )
        pi[d.instance_id] = tuple(critical)
    return LayeredDecomposition(
        network_id=network_id, group_of=group_of, pi=pi, length=n_groups
    )
