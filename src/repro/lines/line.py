"""Line-networks as path-shaped tree-networks (Section 1 reformulation).

A line-network with ``n`` timeslots is the path on vertices ``0..n``;
timeslot ``t`` is the edge ``(t, t+1)``.  A demand occupying slots
``[s, e]`` (inclusive) is the path between vertices ``s`` and ``e+1``.
These helpers convert between the slot view and the vertex/edge view.
"""
from __future__ import annotations

from typing import Tuple

from repro.core.demand import DemandInstance
from repro.core.types import EdgeKey, NetworkId, edge_key
from repro.trees.tree import make_line_network

__all__ = [
    "make_line_network",
    "slot_to_edge",
    "edge_to_slot",
    "instance_slots",
    "instance_mid_slot",
]


def slot_to_edge(network_id: NetworkId, slot: int) -> EdgeKey:
    """The edge representing timeslot *slot*."""
    if slot < 0:
        raise ValueError(f"slot must be non-negative, got {slot}")
    return edge_key(network_id, slot, slot + 1)


def edge_to_slot(e: EdgeKey) -> int:
    """The timeslot represented by a line-network edge."""
    _, u, v = e
    if v != u + 1:
        raise ValueError(f"{e} is not a line-network edge")
    return u


def instance_slots(d: DemandInstance) -> Tuple[int, int]:
    """``(s(d), e(d))``: first and last timeslot occupied by *d*.

    Assumes *d* lives on a line-network, where its path is the vertex
    interval ``[min(u, v), max(u, v)]``.
    """
    lo = min(d.u, d.v)
    hi = max(d.u, d.v)
    return lo, hi - 1


def instance_mid_slot(d: DemandInstance) -> int:
    """``mid(d) = floor((s(d) + e(d)) / 2)`` (Section 7)."""
    s, e = instance_slots(d)
    return (s + e) // 2
