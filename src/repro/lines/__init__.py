"""Line-networks as timelines and their length-class decomposition."""
from repro.lines.layered import layered_by_length
from repro.lines.line import (
    edge_to_slot,
    instance_mid_slot,
    instance_slots,
    make_line_network,
    slot_to_edge,
)

__all__ = [
    "edge_to_slot",
    "instance_mid_slot",
    "instance_slots",
    "layered_by_length",
    "make_line_network",
    "slot_to_edge",
]
