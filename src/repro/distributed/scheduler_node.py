"""Processor nodes for the distributed two-phase algorithm (Section 5,
"Distributed Implementation").

One node per processor/demand.  The whole run follows a globally known
script of operations (computable by every processor from the public
parameters ``n``, ``pmax/pmin``, ``eps`` and the network topologies, as
the paper assumes):

* ``hello`` -- processors broadcast O(M)-size descriptors of their
  demand instances (endpoints, profit, height) to their neighbors; the
  receiver reconstructs paths locally since networks are common
  knowledge.
* per (epoch ``k``, stage ``j``, step ``t``): ``R`` Luby iterations --
  each a ``prio`` round (broadcast hash-derived priorities of active =
  currently unsatisfied group-``k`` instances) and a ``join`` round
  (announce MIS membership) -- followed by one ``raise`` round where
  MIS members raise their duals and broadcast the ``beta`` increments
  of their critical edges.
* phase 2: one ``decide`` round per step tuple in reverse order;
  processors pop their local stacks and announce admissions.

Priorities are cryptographic hashes of (seed, instance key, step,
iteration), so the run is bit-identical to the logical executor with
the ``'hash'`` MIS oracle -- which the test suite asserts.

Each processor's state is strictly local: its own duals (its ``alpha``
and its view of the ``beta`` of edges it hears about), its own stack,
and descriptors received from neighbors.  Consistency holds because any
two instances that can interact share a network, hence their owners are
neighbors in the communication graph.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseRule
from repro.core.types import EPS, EdgeKey, InstanceId
from repro.distributed.message import Message
from repro.distributed.mis import hashed_priority, instance_key
from repro.distributed.simulator import Node

#: Public identity of an instance on the wire: (demand, network, u, v).
WireKey = Tuple[int, int, int, int]


@dataclass(frozen=True)
class Schedule:
    """The globally known script parameters (shared by all processors)."""

    thresholds: Tuple[float, ...]
    n_epochs: int
    steps_per_stage: int
    luby_iterations: int
    seed: int

    @property
    def stage_count(self) -> int:
        return len(self.thresholds)

    def build_ops(self) -> List[Tuple]:
        """The full per-round operation script."""
        ops: List[Tuple] = [("hello",)]
        step_tuples: List[Tuple[int, int, int]] = []
        for k in range(1, self.n_epochs + 1):
            for j in range(1, self.stage_count + 1):
                for t in range(1, self.steps_per_stage + 1):
                    step_tuples.append((k, j, t))
                    for r in range(1, self.luby_iterations + 1):
                        ops.append(("prio", k, j, t, r))
                        ops.append(("join", k, j, t, r))
                    ops.append(("raise", k, j, t))
        for k, j, t in reversed(step_tuples):
            ops.append(("decide", k, j, t))
        ops.append(("finish",))
        return ops


def default_schedule(
    thresholds: Sequence[float],
    n_epochs: int,
    pmax_over_pmin: float,
    n_instances: int,
    seed: int,
) -> Schedule:
    """Schedule with the provable step bound and a w.h.p. Luby budget.

    Steps per stage follow Lemma 5.1 (kill factor 2 for the library's
    ``xi`` choices): ``1 + ceil(log2(pmax/pmin))`` plus one slack step.
    The Luby budget is ``2*ceil(log2 N) + 6`` iterations, which the
    nodes *assert* was sufficient (it is, w.h.p.).
    """
    steps = 2 + max(0, math.ceil(math.log2(max(1.0, pmax_over_pmin))))
    luby = 2 * math.ceil(math.log2(max(2, n_instances))) + 6
    return Schedule(
        thresholds=tuple(thresholds),
        n_epochs=n_epochs,
        steps_per_stage=steps,
        luby_iterations=luby,
        seed=seed,
    )


class LubyBudgetExceeded(RuntimeError):
    """The fixed Luby iteration budget did not complete the MIS."""


class ProcessorNode(Node):
    """One processor: owns one demand and runs the full protocol."""

    def __init__(
        self,
        node_id: int,
        instances: Sequence[DemandInstance],
        layout: Dict[InstanceId, Tuple[int, Tuple[EdgeKey, ...]]],
        raise_rule: RaiseRule,
        schedule: Schedule,
        neighbors: FrozenSet[int],
        ops: Optional[List[Tuple]] = None,
    ) -> None:
        super().__init__(node_id)
        self.instances = list(instances)
        for d in self.instances:
            if d.demand_id != node_id:
                raise ValueError("a processor owns exactly its own demand's instances")
        self.layout = dict(layout)
        self.raise_rule = raise_rule
        self.schedule = schedule
        self.neighbor_ids = sorted(neighbors)
        self.ops = ops if ops is not None else schedule.build_ops()
        # Local dual view: own alpha, plus beta of every edge heard about.
        self.dual = DualState(use_height_rule=raise_rule.use_height_rule)
        # Neighbor instance knowledge (from hello round).
        self._neighbor_edges: Dict[WireKey, FrozenSet[EdgeKey]] = {}
        self._neighbor_height: Dict[WireKey, float] = {}
        self._conflicts: Dict[InstanceId, Set[WireKey]] = {}
        # Luby state.
        self._active: Set[InstanceId] = set()
        self._my_prio: Dict[InstanceId, float] = {}
        self._joined: List[InstanceId] = []
        # Stack, raises, phase-2 state.
        self.stack: List[Tuple[Tuple[int, int, int], DemandInstance]] = []
        self.raise_log: List[Tuple[Tuple[int, int, int], DemandInstance, float]] = []
        self._occupancy: Dict[EdgeKey, float] = {}
        self.selected: List[DemandInstance] = []
        self._demand_used = False
        self._halted = False
        self._by_id = {d.instance_id: d for d in self.instances}

    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        return self._halted

    def _broadcast(self, kind: str, payload) -> List[Message]:
        return [
            Message(self.node_id, nb, kind, payload) for nb in self.neighbor_ids
        ]

    # ------------------------------------------------------------------
    # Inbox processing (message kinds other than prio, handled inline)
    # ------------------------------------------------------------------
    def _process_inbox(self, inbox: Sequence[Message]) -> Dict[WireKey, float]:
        neighbor_prios: Dict[WireKey, float] = {}
        for msg in inbox:
            if msg.kind == "hello":
                self._on_hello(msg)
            elif msg.kind == "raise":
                for edge, inc in msg.payload:
                    self.dual.beta[edge] = self.dual.beta.get(edge, 0.0) + inc
            elif msg.kind == "joined":
                self._on_joined(msg.payload)
            elif msg.kind == "selected":
                key, height = msg.payload
                for e in self._neighbor_edges[key]:
                    self._occupancy[e] = self._occupancy.get(e, 0.0) + height
            elif msg.kind == "prio":
                key, prio = msg.payload
                neighbor_prios[key] = prio
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown message kind {msg.kind!r}")
        return neighbor_prios

    def _on_hello(self, msg: Message) -> None:
        key, edges, height = msg.payload
        edge_set = frozenset(edges)
        self._neighbor_edges[key] = edge_set
        self._neighbor_height[key] = height
        for d in self.instances:
            if d.network_id == key[1] and not d.path_edges.isdisjoint(edge_set):
                self._conflicts.setdefault(d.instance_id, set()).add(key)

    def _on_joined(self, key: WireKey) -> None:
        self._active = {
            iid
            for iid in self._active
            if key not in self._conflicts.get(iid, ())
        }

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def on_round(self, round_no: int, inbox: Sequence[Message]) -> List[Message]:
        if round_no >= len(self.ops):
            return []
        op = self.ops[round_no]
        kind = op[0]
        if kind == "hello":
            out: List[Message] = []
            for d in self.instances:
                payload = (instance_key(d), tuple(sorted(d.path_edges)), d.height)
                out.extend(self._broadcast("hello", payload))
            return out
        if kind == "prio":
            return self._round_prio(op, inbox)
        if kind == "join":
            return self._round_join(op, inbox)
        if kind == "raise":
            return self._round_raise(op, inbox)
        if kind == "decide":
            return self._round_decide(op, inbox)
        if kind == "finish":
            self._process_inbox(inbox)
            self._assert_phase1_complete()
            self._halted = True
            return []
        raise RuntimeError(f"unknown op {op!r}")  # pragma: no cover

    def _round_prio(self, op: Tuple, inbox: Sequence[Message]) -> List[Message]:
        _, k, j, t, r = op
        self._process_inbox(inbox)
        if r == 1:
            tau = self.schedule.thresholds[j - 1]
            self._active = {
                d.instance_id
                for d in self.instances
                if self.layout[d.instance_id][0] == k
                and not self.dual.is_satisfied(d, tau)
            }
            self._joined = []
        out: List[Message] = []
        self._my_prio = {}
        for iid in sorted(self._active):
            d = self._by_id[iid]
            prio = hashed_priority(self.schedule.seed, instance_key(d), (k, j, t), r)
            self._my_prio[iid] = prio
            out.extend(self._broadcast("prio", (instance_key(d), prio)))
        return out

    def _round_join(self, op: Tuple, inbox: Sequence[Message]) -> List[Message]:
        neighbor_prios = self._process_inbox(inbox)
        out: List[Message] = []
        newly_joined: List[InstanceId] = []
        for iid in sorted(self._active):
            d = self._by_id[iid]
            mine = (self._my_prio[iid], instance_key(d))
            beaten = False
            # Conflicting neighbor instances that are active this iteration.
            for nkey in self._conflicts.get(iid, ()):
                if nkey in neighbor_prios and (neighbor_prios[nkey], nkey) < mine:
                    beaten = True
                    break
            if not beaten:
                # My other active instances all conflict (same demand).
                for other in self._active:
                    if other == iid:
                        continue
                    o = self._by_id[other]
                    if (self._my_prio[other], instance_key(o)) < mine:
                        beaten = True
                        break
            if not beaten:
                newly_joined.append(iid)
        for iid in newly_joined:
            d = self._by_id[iid]
            self._joined.append(iid)
            out.extend(self._broadcast("joined", instance_key(d)))
        if newly_joined:
            # All of my instances share my demand, so a join retires them all.
            self._active.clear()
        return out

    def _round_raise(self, op: Tuple, inbox: Sequence[Message]) -> List[Message]:
        _, k, j, t = op
        self._process_inbox(inbox)
        if self._active:
            raise LubyBudgetExceeded(
                f"node {self.node_id}: {len(self._active)} instances still "
                f"active after {self.schedule.luby_iterations} Luby iterations"
            )
        out: List[Message] = []
        for iid in sorted(self._joined):
            d = self._by_id[iid]
            critical = self.layout[iid][1]
            delta = self.raise_rule.apply(self.dual, d, critical)
            inc = self.raise_rule.beta_increment(delta, len(critical))
            self.stack.append(((k, j, t), d))
            self.raise_log.append(((k, j, t), d, delta))
            out.extend(
                self._broadcast("raise", tuple((e, inc) for e in critical))
            )
        self._joined = []
        return out

    def _round_decide(self, op: Tuple, inbox: Sequence[Message]) -> List[Message]:
        _, k, j, t = op
        self._process_inbox(inbox)
        out: List[Message] = []
        while self.stack and self.stack[-1][0] == (k, j, t):
            _, d = self.stack.pop()
            if self._fits(d):
                self.selected.append(d)
                self._demand_used = True
                for e in d.path_edges:
                    self._occupancy[e] = self._occupancy.get(e, 0.0) + d.height
                out.extend(
                    self._broadcast("selected", (instance_key(d), d.height))
                )
        return out

    def _fits(self, d: DemandInstance) -> bool:
        if self._demand_used:
            return False
        for e in d.path_edges:
            if self._occupancy.get(e, 0.0) + d.height > 1.0 + EPS:
                return False
        return True

    def _assert_phase1_complete(self) -> None:
        """Every instance must be lambda-satisfied when phase 1 ends."""
        final_tau = self.schedule.thresholds[-1]
        for d in self.instances:
            if not self.dual.is_satisfied(d, final_tau):
                raise RuntimeError(
                    f"node {self.node_id}: instance {d.instance_id} ended "
                    f"phase 1 only {self.dual.lhs(d) / d.profit:.4f}-satisfied"
                )
