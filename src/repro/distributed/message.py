"""Messages of the synchronous message-passing model.

A message carries a kind tag and a payload between two processors.  The
paper bounds message size by ``O(M)`` bits, where ``M`` encodes one
demand (endpoints, profit, height) -- every payload in this protocol is
a constant number of such descriptors or dual-value updates, which
:func:`payload_size` approximates for the accounting reports.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Message:
    """One message: *src* -> *dst* with a *kind* tag and *payload*."""

    src: int
    dst: int
    kind: str
    payload: Any = None


def payload_size(payload: Any) -> int:
    """Rough O(M)-style size of a payload, in scalar fields."""
    if payload is None:
        return 0
    if isinstance(payload, (int, float, str, bool)):
        return 1
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(payload_size(x) for x in payload)
    if isinstance(payload, dict):
        return sum(payload_size(k) + payload_size(v) for k, v in payload.items())
    return 1
