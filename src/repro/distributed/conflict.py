"""Conflict graphs over demand instances (Section 2 / Section 5).

Two demand instances *conflict* when they belong to the same demand or
when they overlap (same network, sharing an edge).  MIS computations in
the first phase run on the conflict graph restricted to the currently
unsatisfied instances.

The construction is index-based -- instances are bucketed per edge and
per demand -- so it costs ``O(sum path lengths + #conflicting pairs)``
rather than a blind quadratic pass.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from repro.core.demand import DemandInstance
from repro.core.types import DemandId, EdgeKey, InstanceId

#: Adjacency of the conflict graph: instance id -> conflicting instance ids.
ConflictAdjacency = Dict[InstanceId, Set[InstanceId]]


@dataclass(frozen=True)
class InstanceIndex:
    """Reverse indices from edges and demands to the instances touching them.

    ``by_edge[e]`` lists every instance whose *path* contains ``e``;
    ``by_demand[a]`` lists every instance of demand ``a``.  Together they
    answer the incremental engine's dirty-set query: a dual raise on
    instance ``d`` changes ``beta`` only on ``pi(d)`` and ``alpha`` only
    on ``a_d``, so the instances whose satisfaction may flip are exactly
    ``union(by_edge[e] for e in pi(d)) | by_demand[a_d]``.
    """

    by_edge: Dict[EdgeKey, FrozenSet[InstanceId]]
    by_demand: Dict[DemandId, FrozenSet[InstanceId]]

    def affected_by(
        self, demand_id: DemandId, critical_edges: Iterable[EdgeKey]
    ) -> Set[InstanceId]:
        """Ids whose dual constraint moved after a raise on *demand_id*
        with the given critical edges."""
        out: Set[InstanceId] = set(self.by_demand.get(demand_id, ()))
        for e in critical_edges:
            out |= self.by_edge.get(e, frozenset())
        return out


def build_instance_index(instances: Sequence[DemandInstance]) -> InstanceIndex:
    """Build the edge->instances and demand->instances reverse indices."""
    by_edge: Dict[EdgeKey, Set[InstanceId]] = {}
    by_demand: Dict[DemandId, Set[InstanceId]] = {}
    for d in instances:
        by_demand.setdefault(d.demand_id, set()).add(d.instance_id)
        for e in d.path_edges:
            by_edge.setdefault(e, set()).add(d.instance_id)
    return InstanceIndex(
        by_edge={e: frozenset(ids) for e, ids in by_edge.items()},
        by_demand={a: frozenset(ids) for a, ids in by_demand.items()},
    )


def build_conflict_graph(instances: Sequence[DemandInstance]) -> ConflictAdjacency:
    """Build the conflict adjacency over *instances*."""
    adj: ConflictAdjacency = {d.instance_id: set() for d in instances}
    by_edge: Dict[EdgeKey, List[InstanceId]] = {}
    by_demand: Dict[DemandId, List[InstanceId]] = {}
    for d in instances:
        by_demand.setdefault(d.demand_id, []).append(d.instance_id)
        for e in d.path_edges:
            by_edge.setdefault(e, []).append(d.instance_id)
    for bucket in list(by_edge.values()) + list(by_demand.values()):
        for i, a in enumerate(bucket):
            for b in bucket[i + 1 :]:
                adj[a].add(b)
                adj[b].add(a)
    return adj


def is_independent(
    ids: Iterable[InstanceId], adjacency: ConflictAdjacency
) -> bool:
    """Whether the given instance ids form an independent set."""
    chosen = set(ids)
    for a in chosen:
        if adjacency[a] & chosen:
            return False
    return True


def restrict(adjacency: ConflictAdjacency, ids: Iterable[InstanceId]) -> ConflictAdjacency:
    """The conflict graph induced on the subset *ids*."""
    keep = set(ids)
    return {a: adjacency[a] & keep for a in keep}
