"""Conflict graphs over demand instances (Section 2 / Section 5).

Two demand instances *conflict* when they belong to the same demand or
when they overlap (same network, sharing an edge).  MIS computations in
the first phase run on the conflict graph restricted to the currently
unsatisfied instances.

The construction is index-based -- instances are bucketed per edge and
per demand -- so it costs ``O(sum path lengths + #conflicting pairs)``
rather than a blind quadratic pass.
"""
from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.core.demand import DemandInstance
from repro.core.types import DemandId, EdgeKey, InstanceId

#: Adjacency of the conflict graph: instance id -> conflicting instance ids.
ConflictAdjacency = Dict[InstanceId, Set[InstanceId]]


def build_conflict_graph(instances: Sequence[DemandInstance]) -> ConflictAdjacency:
    """Build the conflict adjacency over *instances*."""
    adj: ConflictAdjacency = {d.instance_id: set() for d in instances}
    by_edge: Dict[EdgeKey, List[InstanceId]] = {}
    by_demand: Dict[DemandId, List[InstanceId]] = {}
    for d in instances:
        by_demand.setdefault(d.demand_id, []).append(d.instance_id)
        for e in d.path_edges:
            by_edge.setdefault(e, []).append(d.instance_id)
    for bucket in list(by_edge.values()) + list(by_demand.values()):
        for i, a in enumerate(bucket):
            for b in bucket[i + 1 :]:
                adj[a].add(b)
                adj[b].add(a)
    return adj


def is_independent(
    ids: Iterable[InstanceId], adjacency: ConflictAdjacency
) -> bool:
    """Whether the given instance ids form an independent set."""
    chosen = set(ids)
    for a in chosen:
        if adjacency[a] & chosen:
            return False
    return True


def restrict(adjacency: ConflictAdjacency, ids: Iterable[InstanceId]) -> ConflictAdjacency:
    """The conflict graph induced on the subset *ids*."""
    keep = set(ids)
    return {a: adjacency[a] & keep for a in keep}
