"""Synchronous message-passing substrate and distributed protocols."""
from repro.distributed.conflict import (
    ConflictAdjacency,
    InstanceIndex,
    build_conflict_graph,
    build_instance_index,
    is_independent,
    restrict,
)
from repro.distributed.message import Message, payload_size
from repro.distributed.mis import (
    greedy_mis,
    hash_luby_mis,
    hashed_priority,
    instance_key,
    luby_mis,
    make_mis_oracle,
)
from repro.distributed.scheduler_node import (
    LubyBudgetExceeded,
    ProcessorNode,
    Schedule,
    default_schedule,
)
from repro.distributed.simulator import (
    Node,
    SimulationMetrics,
    SyncSimulator,
    TopologyViolation,
)

_RUNNER_EXPORTS = {
    "CombinedDistributedReport",
    "DistributedRunReport",
    "build_layout_and_thresholds",
    "run_distributed",
    "run_distributed_arbitrary",
}


def __getattr__(name):
    # The runner depends on the algorithms package, which depends on the
    # framework, which imports this package -- so load it lazily.
    if name in _RUNNER_EXPORTS:
        from repro.distributed import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ConflictAdjacency",
    "DistributedRunReport",
    "InstanceIndex",
    "LubyBudgetExceeded",
    "Message",
    "Node",
    "ProcessorNode",
    "Schedule",
    "SimulationMetrics",
    "SyncSimulator",
    "TopologyViolation",
    "build_conflict_graph",
    "build_instance_index",
    "build_layout_and_thresholds",
    "default_schedule",
    "greedy_mis",
    "hash_luby_mis",
    "hashed_priority",
    "instance_key",
    "is_independent",
    "luby_mis",
    "make_mis_oracle",
    "payload_size",
    "restrict",
    "run_distributed",
]
