"""Set up and run the full message-passing algorithm on a problem.

``run_distributed`` builds one :class:`ProcessorNode` per demand, wires
the communication graph (processors adjacent iff they share a
resource), runs the synchronous simulator to completion, and assembles
the solution plus a weak-duality certificate recomputed from the nodes'
raise logs.

The same layouts, thresholds and hash-based MIS priorities as the
logical executor are used, so
``run_distributed(...).solution == run_two_phase(..., mis='hash')``'s
solution -- asserted by the integration tests.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dual import DualState, HeightRaise, RaiseRule, UnitRaise
from repro.core.framework import (
    InstanceLayout,
    geometric_thresholds,
    narrow_xi,
    unit_xi,
)
from repro.core.problem import Problem
from repro.core.solution import Solution
from repro.distributed.scheduler_node import (
    ProcessorNode,
    Schedule,
    default_schedule,
)
from repro.distributed.simulator import SimulationMetrics, SyncSimulator

#: Supported algorithm kinds for the distributed runner.
KINDS = ("unit-trees", "unit-lines", "narrow-trees", "narrow-lines")


@dataclass
class DistributedRunReport:
    """Outcome of one simulated distributed run."""

    solution: Solution
    metrics: SimulationMetrics
    schedule: Schedule
    layout: InstanceLayout
    thresholds: Tuple[float, ...]
    dual_value: float

    @property
    def slackness(self) -> float:
        return self.thresholds[-1]

    @property
    def certified_upper_bound(self) -> float:
        """``val(alpha, beta) / lambda >= p(Opt)``."""
        return self.dual_value / self.slackness


def build_layout_and_thresholds(
    problem: Problem, kind: str, epsilon: float
) -> Tuple[InstanceLayout, List[float], RaiseRule]:
    """The layout/threshold/raise-rule triple for each algorithm kind."""
    # Imported here to avoid a circular import: the framework module is
    # shared by both the algorithms package and this runner.
    from repro.algorithms.base import line_layouts, tree_layouts

    if kind not in KINDS:
        raise ValueError(f"unknown kind {kind!r}; choose from {KINDS}")
    if kind.startswith("unit"):
        raise_rule: RaiseRule = UnitRaise()
    else:
        if not all(a.is_narrow for a in problem.demands):
            raise ValueError("narrow kinds require every height <= 1/2")
        raise_rule = HeightRaise()
    if kind.endswith("trees"):
        layout, _ = tree_layouts(problem, "ideal")
        design_delta = max(layout.critical_set_size, 6)
    else:
        layout = line_layouts(problem)
        design_delta = max(layout.critical_set_size, 3)
    if kind.startswith("unit"):
        xi = unit_xi(design_delta)
    else:
        xi = narrow_xi(design_delta, problem.hmin)
    thresholds = geometric_thresholds(xi, epsilon)
    return layout, thresholds, raise_rule


def run_distributed(
    problem: Problem,
    kind: str = "unit-trees",
    epsilon: float = 0.25,
    seed: int = 0,
    max_rounds: int = 5_000_000,
) -> DistributedRunReport:
    """Run the full message-passing protocol on *problem*."""
    layout, thresholds, raise_rule = build_layout_and_thresholds(
        problem, kind, epsilon
    )
    schedule = default_schedule(
        thresholds=thresholds,
        n_epochs=layout.n_epochs,
        pmax_over_pmin=problem.pmax / problem.pmin,
        n_instances=len(problem.instances),
        seed=seed,
    )
    ops = schedule.build_ops()

    by_owner: Dict[int, List] = {a.demand_id: [] for a in problem.demands}
    for d in problem.instances:
        by_owner[d.demand_id].append(d)
    neighbor_sets: Dict[int, set] = {a.demand_id: set() for a in problem.demands}
    for p, q in problem.communication_edges:
        neighbor_sets[p].add(q)
        neighbor_sets[q].add(p)

    nodes: Dict[int, ProcessorNode] = {}
    for a in problem.demands:
        mine = by_owner[a.demand_id]
        node_layout = {
            d.instance_id: (layout.group_of[d.instance_id], layout.pi[d.instance_id])
            for d in mine
        }
        nodes[a.demand_id] = ProcessorNode(
            node_id=a.demand_id,
            instances=mine,
            layout=node_layout,
            raise_rule=raise_rule,
            schedule=schedule,
            neighbors=frozenset(neighbor_sets[a.demand_id]),
            ops=ops,
        )

    sim = SyncSimulator(nodes, problem.communication_edges)
    metrics = sim.run(max_rounds=max_rounds)

    selected = [d for node in nodes.values() for d in node.selected]
    solution = Solution.from_instances(selected)
    solution.verify()

    # Reassemble the global dual from local state: alpha lives on its
    # owner; each beta increment was applied by exactly one raiser.
    dual = DualState(use_height_rule=raise_rule.use_height_rule)
    for node in nodes.values():
        dual.alpha.update(node.dual.alpha)
        for (step, d, delta) in node.raise_log:
            inc = raise_rule.beta_increment(delta, len(node.layout[d.instance_id][1]))
            for e in node.layout[d.instance_id][1]:
                dual.beta[e] = dual.beta.get(e, 0.0) + inc
    return DistributedRunReport(
        solution=solution,
        metrics=metrics,
        schedule=schedule,
        layout=layout,
        thresholds=tuple(thresholds),
        dual_value=dual.value(),
    )


@dataclass
class CombinedDistributedReport:
    """Theorem 6.3 / 7.2 on the message-passing substrate.

    Two full protocol executions -- the wide instances under the
    unit-height algorithm and the narrow instances under the height
    rule -- merged network-by-network (Section 6, "Overall Algorithm").
    In a deployment both runs share the same processors; rounds add up.
    """

    solution: Solution
    wide: Optional[DistributedRunReport]
    narrow: Optional[DistributedRunReport]

    @property
    def total_rounds(self) -> int:
        parts = [p for p in (self.wide, self.narrow) if p is not None]
        return sum(p.metrics.rounds for p in parts)

    @property
    def total_messages(self) -> int:
        parts = [p for p in (self.wide, self.narrow) if p is not None]
        return sum(p.metrics.messages for p in parts)

    @property
    def certified_upper_bound(self) -> float:
        """``p(Opt) <= p(Opt_wide) + p(Opt_narrow)``, each side certified."""
        total = 0.0
        for part in (self.wide, self.narrow):
            if part is not None:
                total += part.certified_upper_bound
        return total


def run_distributed_arbitrary(
    problem: Problem,
    networks: str = "trees",
    epsilon: float = 0.25,
    seed: int = 0,
    max_rounds: int = 5_000_000,
) -> CombinedDistributedReport:
    """Run the arbitrary-height algorithm distributedly.

    ``networks`` is ``'trees'`` (Theorem 6.3) or ``'lines'``
    (Theorem 7.2).  Wide demands (h > 1/2) run the unit-height protocol,
    narrow demands the height-rule protocol; the solutions merge per
    network, keeping the richer side on each.
    """
    if networks not in ("trees", "lines"):
        raise ValueError(f"networks must be 'trees' or 'lines', got {networks!r}")
    from repro.core.solution import combine_per_network

    unit_kind = f"unit-{networks}"
    narrow_kind = f"narrow-{networks}"
    if not problem.has_wide:
        narrow = run_distributed(
            problem, kind=narrow_kind, epsilon=epsilon, seed=seed, max_rounds=max_rounds
        )
        return CombinedDistributedReport(narrow.solution, wide=None, narrow=narrow)
    if not problem.has_narrow:
        wide = run_distributed(
            problem, kind=unit_kind, epsilon=epsilon, seed=seed, max_rounds=max_rounds
        )
        return CombinedDistributedReport(wide.solution, wide=wide, narrow=None)
    wide_problem, narrow_problem = problem.split_by_width()
    wide = run_distributed(
        wide_problem, kind=unit_kind, epsilon=epsilon, seed=seed, max_rounds=max_rounds
    )
    narrow = run_distributed(
        narrow_problem, kind=narrow_kind, epsilon=epsilon, seed=seed,
        max_rounds=max_rounds,
    )
    combined = combine_per_network(
        wide.solution, narrow.solution, sorted(problem.networks)
    )
    combined.verify()
    return CombinedDistributedReport(combined, wide=wide, narrow=narrow)
