"""Synchronous message-passing simulator (the paper's computation model).

Processors run in lock-step rounds.  In each round every node reads the
messages delivered to it (those sent in the previous round), performs
local computation, and emits messages to its communication-graph
neighbors; the simulator enforces the topology, delivers messages with
one round of latency, and accounts rounds / message counts / message
volume.  Two processors may exchange messages only if they share an
accessible resource (Section 2).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.distributed.message import Message, payload_size


class TopologyViolation(RuntimeError):
    """Raised when a node messages a non-neighbor."""


class Node:
    """Base class for protocol participants."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, round_no: int, inbox: Sequence[Message]) -> List[Message]:
        """Process this round; return outgoing messages."""
        raise NotImplementedError

    @property
    def halted(self) -> bool:
        """Whether this node has finished its protocol."""
        return False


@dataclass
class SimulationMetrics:
    """Accounting for one simulated run."""

    rounds: int = 0
    messages: int = 0
    volume: int = 0  # sum of payload sizes, in scalar fields
    max_messages_per_round: int = 0


class SyncSimulator:
    """Round-synchronous executor over a fixed communication graph."""

    def __init__(
        self,
        nodes: Dict[int, Node],
        links: Iterable[Tuple[int, int]],
    ) -> None:
        self.nodes = dict(nodes)
        self._neighbors: Dict[int, Set[int]] = {nid: set() for nid in self.nodes}
        for a, b in links:
            if a not in self.nodes or b not in self.nodes:
                raise KeyError(f"link ({a}, {b}) references unknown node")
            if a == b:
                continue
            self._neighbors[a].add(b)
            self._neighbors[b].add(a)
        self.metrics = SimulationMetrics()

    def neighbors(self, node_id: int) -> FrozenSet[int]:
        """Communication-graph neighbors of a node."""
        return frozenset(self._neighbors[node_id])

    def run(self, max_rounds: int = 1_000_000) -> SimulationMetrics:
        """Run until every node halts (or the round budget is exhausted)."""
        pending: Dict[int, List[Message]] = {nid: [] for nid in self.nodes}
        for round_no in range(max_rounds):
            if all(node.halted for node in self.nodes.values()) and not any(
                pending.values()
            ):
                return self.metrics
            self.metrics.rounds += 1
            next_pending: Dict[int, List[Message]] = {nid: [] for nid in self.nodes}
            sent_this_round = 0
            for nid in sorted(self.nodes):
                node = self.nodes[nid]
                outbox = node.on_round(round_no, pending[nid])
                for msg in outbox:
                    if msg.src != nid:
                        raise TopologyViolation(
                            f"node {nid} forged a message from {msg.src}"
                        )
                    if msg.dst not in self._neighbors[nid]:
                        raise TopologyViolation(
                            f"node {nid} messaged non-neighbor {msg.dst}"
                        )
                    next_pending[msg.dst].append(msg)
                    sent_this_round += 1
                    self.metrics.volume += payload_size(msg.payload)
            self.metrics.messages += sent_this_round
            self.metrics.max_messages_per_round = max(
                self.metrics.max_messages_per_round, sent_this_round
            )
            pending = next_pending
        raise RuntimeError(f"simulation exceeded {max_rounds} rounds")
