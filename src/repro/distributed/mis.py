"""Maximal independent set computation (the ``Time(MIS)`` primitive).

The paper's first phase repeatedly computes an MIS on the conflict graph
of unsatisfied demand instances.  It allows either Luby's randomized
algorithm [14] (``O(log N)`` rounds w.h.p.) or the deterministic
network-decomposition procedure of Panconesi-Srinivasan [17]
(``O(2^sqrt(log N))`` rounds).

Oracles share the signature ``oracle(candidates, adjacency, context) ->
(mis_ids, rounds)`` where *candidates* are :class:`DemandInstance`
objects, *adjacency* is the conflict graph restricted to them (by
instance id), and *context* is the framework's ``(epoch, stage, step)``
coordinate.  Three oracles are provided:

* :func:`luby_mis` -- Luby's permutation variant with a seeded RNG
  stream.  One iteration = two communication rounds (exchange
  priorities; announce membership).  The factory-made oracle
  (``make_mis_oracle('luby', seed)``) keeps one independent substream
  per *epoch*, derived from ``(seed, epoch)``: processors working in
  different epochs share no randomness, which mirrors the distributed
  reality and makes epoch executions order-independent -- the property
  the parallel first-phase engine relies on for bit-identical replay.
* hash-Luby (``make_mis_oracle('hash', seed)``) -- identical process,
  but each priority is a cryptographic hash of (seed, instance key,
  context, iteration).  Any processor can recompute any priority
  locally, which is exactly what the message-passing implementation in
  :mod:`repro.distributed.scheduler_node` does -- so the logical and
  distributed executors produce *identical* runs.
* :func:`greedy_mis` -- deterministic lowest-id sweep, a sequential
  stand-in for the deterministic distributed option.
"""
from __future__ import annotations

import hashlib
import random
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

from repro.core.demand import DemandInstance
from repro.core.types import InstanceId
from repro.distributed.conflict import ConflictAdjacency

#: Communication rounds consumed by one Luby iteration (exchange + announce).
ROUNDS_PER_LUBY_ITERATION = 2

#: Context coordinate of a framework step: (epoch, stage, step).
StepContext = Tuple[int, int, int]

#: Oracle signature.
MISOracle = Callable[
    [Sequence[DemandInstance], ConflictAdjacency, Optional[StepContext]],
    Tuple[Set[InstanceId], int],
]


def instance_key(d: DemandInstance) -> Tuple[int, int, int, int]:
    """Globally meaningful identity of an instance, computable by any
    processor from a demand descriptor: (demand, network, endpoints)."""
    return (d.demand_id, d.network_id, d.u, d.v)


def hashed_priority(
    seed: int, key: Tuple[int, int, int, int], context: StepContext, iteration: int
) -> float:
    """Deterministic pseudo-random priority in ``[0, 1)``.

    A SHA-256 hash of (seed, instance key, step context, iteration);
    every processor computes the same value with no communication.
    """
    digest = hashlib.sha256(
        repr((seed, key, context, iteration)).encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def greedy_mis(
    candidates: Sequence[DemandInstance],
    adjacency: ConflictAdjacency,
    context: Optional[StepContext] = None,
) -> Tuple[Set[InstanceId], int]:
    """Deterministic MIS: sweep candidates in increasing id order."""
    chosen: Set[InstanceId] = set()
    blocked: Set[InstanceId] = set()
    for d in sorted(candidates, key=lambda x: x.instance_id):
        v = d.instance_id
        if v in blocked:
            continue
        chosen.add(v)
        blocked.add(v)
        blocked |= adjacency.get(v, set())
    return chosen, 1


def _luby_rounds(
    candidates: Sequence[DemandInstance],
    adjacency: ConflictAdjacency,
    priority_fn: Callable[[DemandInstance, int], float],
) -> Tuple[Set[InstanceId], int]:
    """Shared Luby loop: *priority_fn(instance, iteration)* supplies draws."""
    active: Set[InstanceId] = {d.instance_id for d in candidates}
    by_id = {d.instance_id: d for d in candidates}
    chosen: Set[InstanceId] = set()
    iterations = 0
    while active:
        iterations += 1
        priority: Dict[InstanceId, float] = {
            v: priority_fn(by_id[v], iterations) for v in sorted(active)
        }
        joined: Set[InstanceId] = set()
        for v in active:
            key_v = (priority[v], v)
            if all(
                key_v < (priority[u], u)
                for u in adjacency.get(v, set())
                if u in active
            ):
                joined.add(v)
        chosen |= joined
        retire = set(joined)
        for v in joined:
            retire |= adjacency.get(v, set()) & active
        active -= retire
    return chosen, iterations * ROUNDS_PER_LUBY_ITERATION


def luby_mis(
    candidates: Sequence[DemandInstance],
    adjacency: ConflictAdjacency,
    rng: random.Random,
) -> Tuple[Set[InstanceId], int]:
    """Luby's randomized MIS with priorities drawn from *rng*."""
    return _luby_rounds(candidates, adjacency, lambda d, it: rng.random())


def hash_luby_mis(
    candidates: Sequence[DemandInstance],
    adjacency: ConflictAdjacency,
    context: StepContext,
    seed: int,
) -> Tuple[Set[InstanceId], int]:
    """Luby's MIS with hash-derived priorities (distributed-equivalent)."""
    return _luby_rounds(
        candidates,
        adjacency,
        lambda d, it: hashed_priority(seed, instance_key(d), context, it),
    )


def luby_substream_seed(seed: int, epoch: int) -> int:
    """The derived integer seed of epoch *epoch*'s Luby RNG substream."""
    return seed * 0x9E3779B1 + epoch


class LubyOracle:
    """Luby's MIS with one independent RNG substream per epoch.

    A module-level class (not a closure) so the oracle *pickles*: the
    parallel engine's process backend ships each epoch job -- oracle
    included -- to a worker process, and its component mode clones the
    oracle per job via a pickle round-trip.  An unpickled copy starts
    epoch substreams from the same derived seeds, so it draws exactly
    the priorities the original would for any epoch it has not yet
    touched -- which is every epoch the copy will run, since an epoch
    executes on exactly one worker.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rngs: Dict[int, random.Random] = {}

    def substream(self, epoch: int) -> random.Random:
        """The (lazily created) RNG substream of *epoch*.

        Public so the columnar engine can draw the identical priority
        sequence for an epoch without going through the dict-based
        ``__call__`` path.
        """
        rng = self._rngs.get(epoch)
        if rng is None:
            # dict.setdefault is atomic under the GIL, and an epoch
            # only ever runs on one worker, so lazy creation is safe.
            rng = self._rngs.setdefault(
                epoch, random.Random(luby_substream_seed(self.seed, epoch))
            )
        return rng

    def __call__(
        self,
        candidates: Sequence[DemandInstance],
        adjacency: ConflictAdjacency,
        context: Optional[StepContext] = None,
    ) -> Tuple[Set[InstanceId], int]:
        epoch = context[0] if context is not None else 0
        return luby_mis(candidates, adjacency, self.substream(epoch))


class HashLubyOracle:
    """Hash-priority Luby: stateless, shareable, trivially picklable."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def __call__(
        self,
        candidates: Sequence[DemandInstance],
        adjacency: ConflictAdjacency,
        context: Optional[StepContext] = None,
    ) -> Tuple[Set[InstanceId], int]:
        if context is None:
            raise ValueError("hash MIS oracle needs a step context")
        return hash_luby_mis(candidates, adjacency, context, self.seed)


def make_mis_oracle(kind: str, seed: int) -> MISOracle:
    """Build an MIS oracle.

    ``kind`` is ``'luby'`` (per-epoch seeded RNG substreams), ``'hash'``
    (hash-based priorities; bit-identical to the message-passing
    protocol) or ``'greedy'`` (deterministic sweep).

    All three factory-made oracles are safe to share across concurrently
    executing epochs (``greedy`` and ``hash`` are stateless; ``'luby'``
    keys its mutable RNG state by the context's epoch, so each epoch
    consumes only its own substream regardless of how epoch executions
    interleave) and all three pickle -- the wire requirement of the
    parallel engine's process backend and component mode
    (``tests/test_picklability.py``).
    """
    if kind == "greedy":
        return greedy_mis
    if kind == "luby":
        return LubyOracle(seed)
    if kind == "hash":
        return HashLubyOracle(seed)
    raise ValueError(f"unknown MIS oracle kind: {kind!r}")
