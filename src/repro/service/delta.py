"""Delta-solve support: sketches, problem diffs, debounced change storms.

The delta path answers a *perturbed* problem -- one demand added, one
profit bumped -- by warm-starting from the journal of a cached ancestor
solve instead of solving cold.  This module holds the service-layer
ingredients; the replay machinery itself lives in
:mod:`repro.core.engines.journal`.

**Sketch.**  The exact fingerprint
(:func:`~repro.service.fingerprint.solve_fingerprint`) changes under
any perturbation, so it cannot *find* an ancestor.  The sketch is the
color-refinement prefix of the canonical form: the sorted multiset of
id-free network shapes, with the demand side left out entirely.  Every
demand-level mutation (add, drop, profit/height change) preserves it,
so all snapshots of a churn trajectory that leave the networks alone
share one sketch -- that is the bucket the service's ancestor index is
keyed by (:func:`delta_key` additionally folds in the solve knobs,
since a journal recorded under different knobs can never certify).
Sketch equality is deliberately weak: two genuinely different problems
may collide.  Collisions are harmless -- the ancestor is only a warm
start, and :func:`diff_problems` plus per-epoch signature checks decide
what, if anything, is reused.

**Diff.**  :func:`diff_problems` compares demand records by id
(payload + access set) and network shapes by id.  Its touched sets
drive the dirty-epoch *prediction* and the too-dirty bail; correctness
never depends on the diff being tight.  ``networks_changed`` is the
sketch-collision backstop: a same-shape network swap collides in the
sketch but is caught here and falls back to a cold solve.

**Debounce.**  :class:`ChangeDebouncer` coalesces change storms on the
async front door, the event-driven rescheduling shape of openwsn's
``networkManager``: rapid-fire mutations to one delta bucket collapse
into a single solve of the *latest* snapshot after a quiet period, and
every waiter gets that result -- earlier waiters' copies flagged
``superseded`` so a caller can tell its exact snapshot was skipped.
"""
from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.core.canonical import stable_digest
from repro.core.engines.journal import SolveJournal
from repro.core.problem import Problem
from repro.service.fingerprint import (
    SolveKnobs,
    _demand_payload,
    _network_payload,
)

__all__ = [
    "ChangeDebouncer",
    "DELTA_OUTCOMES",
    "DeltaArtifacts",
    "DeltaStats",
    "ProblemDelta",
    "TOO_DIRTY_FRACTION",
    "delta_key",
    "diff_problems",
    "problem_sketch",
]

_SKETCH_TAG = "sketch/v1"
_DELTA_KEY_TAG = "delta-key/v1"

#: Bail to a cold solve when the diff touches more than this fraction
#: of the new problem's demands: past that point the "re-run dirty
#: epochs" story degenerates to "re-run everything plus bookkeeping".
TOO_DIRTY_FRACTION = 0.5

#: The ways a delta request can resolve (``DeltaStats.outcome``):
#: ``"warm"`` ran the certified-replay solve; the rest fell back cold,
#: naming why -- no cached ancestor under the delta key, a network
#: shape changed (including sketch collisions caught by the diff), the
#: diff touched too many demands, or the requested engine is not the
#: journaled incremental one.
DELTA_OUTCOMES = (
    "warm",
    "ancestor-miss",
    "network-change",
    "too-dirty",
    "engine-fallback",
)


def problem_sketch(problem: Problem) -> str:
    """The demand-free structural sketch digest of *problem*.

    Sorted id-free network payloads only: invariant under every
    demand-level mutation *and* under network-id relabelings, so a
    trajectory's snapshots bucket together.  Weak by design -- see the
    module docstring for why collisions are safe.
    """
    payloads = tuple(
        sorted(_network_payload(net) for net in problem.networks.values())
    )
    return stable_digest((_SKETCH_TAG, payloads))


def delta_key(problem: Problem, knobs: SolveKnobs) -> str:
    """The ancestor-index bucket: sketch plus the solve-knob key.

    Folding the knobs in means an ancestor recorded under a different
    oracle, seed, epsilon or capacity epoch is never even considered --
    its journal's phase configs could not certify anyway.
    """
    return stable_digest(
        (_DELTA_KEY_TAG, problem_sketch(problem), knobs.canonical_form())
    )


@dataclass(frozen=True)
class ProblemDelta:
    """The id-level diff between an ancestor problem and a new one."""

    #: Demand ids present only in the new / only in the old problem,
    #: and ids whose record (payload or access set) changed.
    added: Tuple[int, ...]
    removed: Tuple[int, ...]
    changed: Tuple[int, ...]
    #: Union of the three id sets.
    touched_demands: frozenset
    #: Path edges of every instance of a touched demand, on either
    #: side of the diff -- the keys a perturbation can move duals on.
    touched_edges: frozenset
    #: Any network added, removed, or reshaped (id-wise).  Warm starts
    #: are refused outright in this case: instance paths and layouts
    #: are network-derived, so nothing certifies cheaply.
    networks_changed: bool

    def dirty_fraction(self, new: Problem) -> float:
        """Touched demands over the new problem's demand count."""
        if not new.demands:
            return 1.0 if self.touched_demands else 0.0
        return len(self.touched_demands) / len(new.demands)


def diff_problems(old: Problem, new: Problem) -> ProblemDelta:
    """Diff two problems into the sets the delta path steers by.

    Demands are matched by id; a demand counts as changed when its
    id-free payload *or* its access tuple differs.  Touched edges come
    from the instance expansions of both problems -- the ancestor's
    ``instances`` cached property is already warm from its solve, and
    the new problem's expansion is needed by the solve anyway.
    """
    # Identity fast-paths throughout: trajectory snapshots share the
    # objects a mutation did not rebuild, so ``is`` dodges the payload
    # encodings for everything untouched -- the diff then costs O(delta)
    # payloads, not O(problem).  (A rebuilt-but-equal object still
    # compares correctly through the payload, just slower.)
    networks_changed = sorted(old.networks) != sorted(new.networks) or any(
        old.networks[nid] is not new.networks[nid]
        and _network_payload(old.networks[nid]) != _network_payload(new.networks[nid])
        for nid in old.networks
    )
    old_by_id = {a.demand_id: a for a in old.demands}
    new_by_id = {a.demand_id: a for a in new.demands}

    def demand_differs(i: int) -> bool:
        if tuple(sorted(old.access[i])) != tuple(sorted(new.access[i])):
            return True
        old_d, new_d = old_by_id[i], new_by_id[i]
        if old_d is new_d:
            return False
        return _demand_payload(old_d) != _demand_payload(new_d)

    added = tuple(sorted(i for i in new_by_id if i not in old_by_id))
    removed = tuple(sorted(i for i in old_by_id if i not in new_by_id))
    changed = tuple(
        sorted(i for i in old_by_id if i in new_by_id and demand_differs(i))
    )
    touched = frozenset(added) | frozenset(removed) | frozenset(changed)
    touched_edges = set()
    if touched:
        for problem in (old, new):
            for inst in problem.instances:
                if inst.demand_id in touched:
                    touched_edges |= inst.path_edges
    return ProblemDelta(
        added=added,
        removed=removed,
        changed=changed,
        touched_demands=touched,
        touched_edges=frozenset(touched_edges),
        networks_changed=networks_changed,
    )


@dataclass
class DeltaArtifacts:
    """What a cache entry retains for future warm starts: the solved
    problem object (its ``instances`` expansion stays warm for diffs)
    and the solve's journal.  Lives only in the memory tier -- see
    ``ResultCache(keep_artifacts=True)``."""

    problem: Problem
    journal: SolveJournal


@dataclass(frozen=True)
class DeltaStats:
    """Per-request delta telemetry, attached to the service result."""

    outcome: str
    #: Short fingerprint of the warm-start ancestor (warm outcomes only).
    ancestor: Optional[str] = None
    touched_demands: int = 0
    touched_edges: int = 0
    epochs_replayed: int = 0
    epochs_rerun: int = 0
    predicted_dirty: int = 0
    prediction_misses: int = 0
    phases: int = 0
    layouts_reused: int = 0
    #: Second-phase admission replay (the admission engine seam):
    #: capacity components seen, replayed from the ancestor's records,
    #: and re-popped fresh.
    admission_components: int = 0
    admission_replayed: int = 0
    admission_rerun: int = 0

    def snapshot(self) -> dict:
        """A plain-dict copy (wire responses, findings JSON)."""
        return {
            "outcome": self.outcome,
            "ancestor": self.ancestor,
            "touched_demands": self.touched_demands,
            "touched_edges": self.touched_edges,
            "epochs_replayed": self.epochs_replayed,
            "epochs_rerun": self.epochs_rerun,
            "predicted_dirty": self.predicted_dirty,
            "prediction_misses": self.prediction_misses,
            "phases": self.phases,
            "layouts_reused": self.layouts_reused,
            "admission_components": self.admission_components,
            "admission_replayed": self.admission_replayed,
            "admission_rerun": self.admission_rerun,
        }

    def numeric_counters(self) -> dict:
        """The summable counters of this snapshot -- labels like
        ``outcome``/``ancestor`` excluded, booleans too (they are ints
        to ``isinstance``).  This is the exact key set the service
        folds into ``stats["delta_totals"]`` and into the
        ``repro_delta_*_total`` metric counters, so a field added here
        starts accumulating in both without further wiring."""
        return {
            k: v
            for k, v in self.snapshot().items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }


@dataclass
class _Pending:
    """One debounce bucket: the latest snapshot wins, everyone waits."""

    latest: object
    waiters: List[asyncio.Future] = field(default_factory=list)
    timer: Optional[asyncio.Task] = None


class ChangeDebouncer:
    """Coalesce per-key change storms into one solve of the latest state.

    ``submit(key, request)`` parks the caller; the first submission for
    a key arms a *delay*-second timer, later submissions within the
    window replace the pending request (counting ``storms_coalesced``)
    and join the same wait.  When the timer fires -- or
    :meth:`flush_all` forces it, as the front door's drain does -- the
    *latest* request is solved once through the supplied async solve
    callable and fanned out to every waiter; all but the last waiter
    receive a copy flagged ``superseded=True``, since the result they
    got reflects a newer snapshot than the one they submitted.  A solve
    failure fans the exception out the same way.

    Single-event-loop discipline: all state is touched only from the
    owning loop, so no locks; the pop-then-solve in :meth:`_fire` is
    atomic with respect to new submissions (they simply open a fresh
    bucket, which is the correct storm boundary).
    """

    def __init__(
        self,
        delay: float,
        solve: Callable[[object], Awaitable[object]],
    ) -> None:
        if delay <= 0:
            raise ValueError(f"debounce delay must be positive, got {delay}")
        self.delay = delay
        self._solve = solve
        self._pending: Dict[str, _Pending] = {}
        self.storms_coalesced = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._pending)

    async def submit(self, key: str, request) -> object:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        pending = self._pending.get(key)
        if pending is None:
            pending = _Pending(latest=request)
            pending.waiters.append(fut)
            self._pending[key] = pending
            pending.timer = loop.create_task(self._timer(key))
        else:
            self.storms_coalesced += 1
            pending.latest = request
            pending.waiters.append(fut)
        return await fut

    async def _timer(self, key: str) -> None:
        await asyncio.sleep(self.delay)
        await self._fire(key)

    async def _fire(self, key: str) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        if pending.timer is not None and pending.timer is not asyncio.current_task():
            pending.timer.cancel()
        self.flushes += 1
        try:
            result = await self._solve(pending.latest)
        except BaseException as exc:  # noqa: BLE001 -- fan out verbatim
            for fut in pending.waiters:
                if not fut.done():
                    fut.set_exception(exc)
            return
        last = len(pending.waiters) - 1
        for i, fut in enumerate(pending.waiters):
            if fut.done():
                continue
            if i == last:
                fut.set_result(result)
            else:
                fut.set_result(dataclasses.replace(result, superseded=True))

    async def flush_all(self) -> None:
        """Fire every pending bucket now (drain path); loops until even
        buckets opened *during* the flush have been served."""
        while self._pending:
            keys = list(self._pending)
            await asyncio.gather(*(self._fire(key) for key in keys))

    def stats_snapshot(self) -> dict:
        return {
            "pending": len(self._pending),
            "storms_coalesced": self.storms_coalesced,
            "flushes": self.flushes,
        }
