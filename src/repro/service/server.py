"""The long-lived scheduling service: coalescing, caching, dispatch.

:class:`SchedulingService` is the serving loop in front of the
two-phase framework -- the control-plane piece the paper's motivating
VoD/bandwidth-allocation setting assumes but a one-shot library call
does not provide.  A request travels three short stages:

1. **Fingerprint** -- the problem and its solve knobs are canonically
   hashed (:mod:`repro.service.fingerprint`), so a re-submitted or
   relabeled-but-identical request keys the same.
2. **Cache / coalesce** -- a fingerprint already answered is served
   from the two-tier :class:`~repro.service.cache.ResultCache` without
   touching a solver; a fingerprint currently *being* solved joins the
   in-flight future instead of starting a duplicate solve (request
   coalescing -- under hot-key traffic the thundering herd collapses
   onto one solve).
3. **Dispatch** -- genuinely new requests run
   :func:`~repro.algorithms.auto.solve_auto` with their per-request
   engine/backend knobs on the warm service pool
   (:func:`~repro.core.engines.backends.shared_service_pool`), so a
   batch of distinct requests executes concurrently while each solve
   may itself fan epoch waves out over the thread or process epoch
   pools.

Failures stay attributable: any exception raised by a solve -- a
:class:`~repro.core.problem.ProblemError` from instance expansion
included -- is re-raised as :class:`ServiceError` naming the request's
label and fingerprint, so one bad entry in a coalesced batch is
distinguishable from its neighbors.

The service itself is thread-safe; results handed out are shared
objects and must be treated as immutable by callers.
"""
from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.algorithms.auto import solve_auto
from repro.algorithms.base import AlgorithmReport
from repro.core.engines.backends import default_workers, shared_service_pool
from repro.core.problem import Problem
from repro.service.cache import ResultCache
from repro.service.fingerprint import Fingerprint, SolveKnobs, solve_fingerprint
from repro.workloads import build_workload

__all__ = [
    "SchedulingService",
    "ServiceError",
    "ServiceResult",
    "SolveRequest",
]


class ServiceError(RuntimeError):
    """A request failed; the message names its label and fingerprint."""


@dataclass(frozen=True)
class SolveRequest:
    """One unit of service traffic: a problem plus its solve knobs.

    ``label`` is an optional human-readable handle carried into results
    and error messages (:meth:`from_workload` fills in
    ``name@size#seed``; unlabeled requests render as ``<unlabeled>``);
    it never participates in the cache key.
    """

    problem: Problem
    knobs: SolveKnobs = SolveKnobs()
    label: Optional[str] = None
    #: Memoized cache key (fingerprinting scans the whole problem; a
    #: client replaying a prepared request handle pays it once).
    _fp: Optional[Fingerprint] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_workload(
        cls,
        name: str,
        size: int,
        seed: int = 0,
        knobs: Optional[SolveKnobs] = None,
        **knob_kwargs,
    ) -> "SolveRequest":
        """Build a request for a registry workload (label = name@size#seed).

        Pass *knobs* whole, or individual :class:`SolveKnobs` fields as
        keyword arguments (mutually exclusive).  The solve seed
        defaults to the workload seed, so one number determines the
        whole request.
        """
        if knobs is not None and knob_kwargs:
            raise ValueError("pass knobs= or individual knob fields, not both")
        if knobs is None:
            knob_kwargs.setdefault("seed", seed)
            knobs = SolveKnobs(**knob_kwargs)
        return cls(
            problem=build_workload(name, size, seed=seed),
            knobs=knobs,
            label=f"{name}@{size}#{seed}",
        )

    def fingerprint(self) -> Fingerprint:
        """The request's cache key (computed once per request object)."""
        if self._fp is None:
            object.__setattr__(
                self, "_fp", solve_fingerprint(self.problem, self.knobs)
            )
        return self._fp


@dataclass
class ServiceResult:
    """What the service hands back for one request.

    ``status`` is ``"hit"`` (served from cache, either tier) or
    ``"miss"`` (a fresh solve ran; coalesced callers share the miss
    result of the one solve that served them).  ``latency_s`` measures
    this request's submit-to-resolution wall-clock.
    """

    report: AlgorithmReport = field(repr=False)
    fingerprint: Fingerprint
    status: str
    latency_s: float
    #: The submitting request's label, or ``None`` for an unlabeled
    #: request -- the same optionality as :attr:`SolveRequest.label`
    #: (coalesced callers see their *own* label here, not the
    #: primary's).
    label: Optional[str] = None

    @property
    def profit(self) -> float:
        """``p(S)`` of the served solution."""
        return self.report.profit


class SchedulingService:
    """A warm, caching, coalescing front-end over the solve framework.

    Parameters
    ----------
    capacity:
        In-memory LRU capacity of the result cache.
    disk_dir:
        Optional directory for the cache's pickle tier (survives
        restarts; ``None`` disables it).
    workers:
        Size of the request-dispatch pool (default: usable CPUs,
        capped) -- how many *distinct* requests solve concurrently.
        Independent of each request's own ``workers`` engine knob.
    default_knobs:
        Knobs applied by :meth:`submit_problem` when the caller gives
        none.  Defaults to the incremental engine -- the serial
        production engine -- with Luby's oracle.
    strict_cache:
        Propagate disk-tier verification failures as errors instead of
        degrading them to misses.
    ttl:
        Default time-to-live (seconds) for cached results; ``None``
        (the default) means results stay valid until evicted or
        invalidated.  Mutable-capacity deployments set a TTL as the
        backstop and bump ``SolveKnobs.capacity_epoch`` /
        call :meth:`invalidate` for prompt bulk expiry.
    clock:
        Monotonic clock for TTL deadlines (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 128,
        disk_dir: Optional[str] = None,
        workers: Optional[int] = None,
        default_knobs: SolveKnobs = SolveKnobs(),
        strict_cache: bool = False,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"service workers must be positive, got {self.workers}")
        self.default_knobs = default_knobs
        self.cache = ResultCache(
            capacity=capacity, disk_dir=disk_dir, strict=strict_cache,
            ttl=ttl, clock=clock,
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._requests = 0
        self._coalesced = 0
        self._solves = 0

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> "Future[ServiceResult]":
        """Enqueue one request; returns a future of its result.

        Cache hits resolve immediately; a duplicate of an in-flight
        fingerprint joins the solve already running (coalescing) but
        still gets its own future, so its result carries *its* label
        and submit-to-resolution latency; everything else dispatches
        onto the warm service pool.  Invalid knobs are rejected here,
        before any cache interaction -- an invalid request must error
        deterministically, not succeed whenever a valid normalization
        of it happens to be cached.

        The lock guards only the memory tier and the in-flight
        registry; fingerprinting, disk reads and solves all run outside
        it, so concurrent memory hits never queue behind another
        request's disk verify.
        """
        t0 = time.perf_counter()  # latency includes fingerprinting
        try:
            request.knobs.validate()
        except ValueError as exc:
            raise ServiceError(
                f"request {request.label or '<unlabeled>'} rejected: {exc}"
            ) from exc
        fp = request.fingerprint()
        with self._lock:
            self._requests += 1
            cached = self.cache.get_memory(fp)
            if cached is not None:
                return self._resolved(cached, fp, request.label, t0)
            existing = self._inflight.get(fp.digest)
            if existing is not None:
                self._coalesced += 1
                return self._joined(existing, request.label, t0)
            fut: "Future[ServiceResult]" = Future()
            self._inflight[fp.digest] = fut
        # Tier-2 probe outside the lock (pickle load + digest verify).
        # Duplicates arriving meanwhile coalesce onto `fut`, which the
        # disk hit resolves just like a finished solve would.
        try:
            entry = self.cache.load_disk(fp)
        except Exception as exc:  # strict-mode integrity failures
            # The failure must flow through the future: coalesced
            # duplicates already joined `fut`, and leaving it pending
            # would hang them forever.
            with self._lock:
                self._inflight.pop(fp.digest, None)
            fut.set_exception(self._wrap_failure(request, fp, exc))
            return fut
        if entry is not None:
            with self._lock:
                self.cache.stats.disk_hits += 1
                self.cache.admit(entry)
                self._inflight.pop(fp.digest, None)
            fut.set_result(
                ServiceResult(
                    report=entry.value,
                    fingerprint=fp,
                    status="hit",
                    latency_s=time.perf_counter() - t0,
                    label=request.label,
                )
            )
            return fut
        with self._lock:
            self.cache.stats.misses += 1
        shared_service_pool(self.workers).submit(
            self._solve_into, request, fp, fut, t0
        )
        return fut

    @staticmethod
    def _resolved(
        report: AlgorithmReport,
        fp: Fingerprint,
        label: Optional[str],
        t0: float,
    ) -> "Future[ServiceResult]":
        """An already-done future for a memory-tier hit."""
        done: "Future[ServiceResult]" = Future()
        done.set_result(
            ServiceResult(
                report=report,
                fingerprint=fp,
                status="hit",
                latency_s=time.perf_counter() - t0,
                label=label,
            )
        )
        return done

    @staticmethod
    def _joined(
        primary: "Future[ServiceResult]", label: Optional[str], t0: float
    ) -> "Future[ServiceResult]":
        """A coalesced caller's view of the in-flight solve.

        Shares the primary's outcome but re-wraps it with this caller's
        label and latency; a failure propagates the primary's
        :class:`ServiceError` unchanged (it names the request whose
        solve actually ran -- the shared fingerprint in its message is
        what ties it to this caller).
        """
        joined: "Future[ServiceResult]" = Future()

        def relay(done: "Future[ServiceResult]") -> None:
            exc = done.exception()
            if exc is not None:
                joined.set_exception(exc)
                return
            first = done.result()
            joined.set_result(
                ServiceResult(
                    report=first.report,
                    fingerprint=first.fingerprint,
                    status=first.status,
                    latency_s=time.perf_counter() - t0,
                    label=label,
                )
            )

        primary.add_done_callback(relay)
        return joined

    def submit_problem(
        self,
        problem: Problem,
        knobs: Optional[SolveKnobs] = None,
        label: Optional[str] = None,
    ) -> "Future[ServiceResult]":
        """Convenience: wrap *problem* with the service's default knobs."""
        return self.submit(
            SolveRequest(
                problem=problem,
                knobs=knobs if knobs is not None else self.default_knobs,
                label=label,
            )
        )

    def solve(self, request: SolveRequest) -> ServiceResult:
        """Submit and wait; re-raises solve failures as :class:`ServiceError`."""
        return self.submit(request).result()

    def solve_batch(self, requests: Sequence[SolveRequest]) -> List[ServiceResult]:
        """Serve a batch: coalesce duplicates, solve distinct requests
        concurrently on the service pool, return results in input order.

        The first failing entry raises its :class:`ServiceError` --
        which names the label and fingerprint of exactly the offending
        request, not just "the batch".
        """
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    @staticmethod
    def _wrap_failure(
        request: SolveRequest, fp: Fingerprint, exc: BaseException
    ) -> ServiceError:
        """The attributable form of any per-request failure."""
        err = ServiceError(
            f"request {request.label or '<unlabeled>'} "
            f"(fingerprint {fp.short}) failed: "
            f"{type(exc).__name__}: {exc}"
        )
        err.__cause__ = exc
        return err

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _solve_into(
        self,
        request: SolveRequest,
        fp: Fingerprint,
        fut: "Future[ServiceResult]",
        t0: float,
    ) -> None:
        try:
            k = request.knobs
            report = solve_auto(
                request.problem,
                epsilon=k.epsilon,
                mis=k.mis,
                seed=k.seed,
                decomposition=k.decomposition,
                engine=k.engine,
                workers=k.workers,
                backend=k.backend,
                plan_granularity=k.plan_granularity,
            )
            # Digest and disk write are the expensive admission steps;
            # run them on this worker thread, outside the lock.  The
            # write is best-effort inside the cache -- a failed persist
            # degrades to memory-only, it never fails the request.  The
            # entry inherits the request's capacity epoch, so a later
            # bulk invalidation can find it.
            entry = self.cache.make_entry(
                fp, report, epoch=request.knobs.capacity_epoch
            )
            self.cache.write_disk(entry)
            with self._lock:
                self._solves += 1
                self.cache.stats.stores += 1
                self.cache.admit(entry)
            fut.set_result(
                ServiceResult(
                    report=report,
                    fingerprint=fp,
                    status="miss",
                    latency_s=time.perf_counter() - t0,
                    label=request.label,
                )
            )
        except BaseException as exc:
            fut.set_exception(self._wrap_failure(request, fp, exc))
        finally:
            # Deregister only after the cache holds the result (or the
            # failure is published): a submit racing this window either
            # joins the still-registered future or hits the cache.
            with self._lock:
                self._inflight.pop(fp.digest, None)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(
        self,
        fingerprint=None,
        predicate=None,
        epoch_below: Optional[int] = None,
    ) -> int:
        """Drop cached results from both tiers (see
        :meth:`~repro.service.cache.ResultCache.invalidate`).

        The usual lock discipline: the memory-tier drop happens under
        the service lock (so concurrent hits never observe a half-swept
        tier), while the disk sweep -- a directory scan that unpickles
        every entry -- runs outside it, exactly like disk reads and
        writes on the serving path.  A request already in flight when
        the call lands was solved under the old state and may still
        admit afterwards; invalidation therefore makes no atomicity
        promise against in-flight work -- the capacity-epoch
        fingerprint tag is what keeps *new* traffic from ever reading a
        stale generation.
        """
        with self._lock:
            dropped = self.cache.invalidate_memory(
                fingerprint=fingerprint,
                predicate=predicate,
                epoch_below=epoch_below,
            )
        return dropped + self.cache.invalidate_disk(
            fingerprint=fingerprint,
            predicate=predicate,
            epoch_below=epoch_below,
        )

    def peek_digest(self, fingerprint) -> Optional[str]:
        """The recorded admission digest for *fingerprint*, if its entry
        is resident in memory -- a side-effect-free metadata read (no
        recency bump, no stats), taken under the service lock."""
        with self._lock:
            entry = self.cache.peek_entry(fingerprint)
            return None if entry is None else entry.digest

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Requests seen, coalesced joins, solves run, cache counters."""
        with self._lock:
            return {
                "requests": self._requests,
                "coalesced": self._coalesced,
                "solves": self._solves,
                "inflight": len(self._inflight),
                "cache": self.cache.stats.snapshot(),
            }
