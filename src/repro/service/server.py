"""The long-lived scheduling service: coalescing, caching, dispatch.

:class:`SchedulingService` is the serving loop in front of the
two-phase framework -- the control-plane piece the paper's motivating
VoD/bandwidth-allocation setting assumes but a one-shot library call
does not provide.  A request travels three short stages:

1. **Fingerprint** -- the problem and its solve knobs are canonically
   hashed (:mod:`repro.service.fingerprint`), so a re-submitted or
   relabeled-but-identical request keys the same.
2. **Cache / coalesce** -- a fingerprint already answered is served
   from the two-tier :class:`~repro.service.cache.ResultCache` without
   touching a solver; a fingerprint currently *being* solved joins the
   in-flight future instead of starting a duplicate solve (request
   coalescing -- under hot-key traffic the thundering herd collapses
   onto one solve).
3. **Dispatch** -- genuinely new requests run
   :func:`~repro.algorithms.auto.solve_auto` with their per-request
   engine/backend knobs on the warm service pool
   (:func:`~repro.core.engines.backends.shared_service_pool`), so a
   batch of distinct requests executes concurrently while each solve
   may itself fan epoch waves out over the thread or process epoch
   pools.

Failures stay attributable: any exception raised by a solve -- a
:class:`~repro.core.problem.ProblemError` from instance expansion
included -- is re-raised as :class:`ServiceError` naming the request's
label and fingerprint, so one bad entry in a coalesced batch is
distinguishable from its neighbors.

The service itself is thread-safe; results handed out are shared
objects and must be treated as immutable by callers.
"""
from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algorithms.auto import problem_family, solve_auto
from repro.algorithms.base import AlgorithmReport
from repro.core.engines.backends import default_workers, shared_service_pool
from repro.core.engines.journal import FirstPhaseJournal, journal_context
from repro.core.problem import Problem
from repro.obs import (
    MetricsRegistry,
    NULL_TRACE,
    SLOTracker,
    default_registry,
    trace_request,
)
from repro.service.cache import ResultCache
from repro.service.delta import (
    DELTA_OUTCOMES,
    TOO_DIRTY_FRACTION,
    DeltaArtifacts,
    DeltaStats,
    ProblemDelta,
    delta_key,
    diff_problems,
)
from repro.service.fingerprint import Fingerprint, SolveKnobs, solve_fingerprint
from repro.workloads import build_workload

__all__ = [
    "SchedulingService",
    "ServiceError",
    "ServiceResult",
    "SolveRequest",
]

#: How many warm-start ancestors one delta bucket retains (newest-last
#: LRU): a churn trajectory needs exactly one live ancestor, a small
#: surplus tolerates interleaved trajectories sharing a sketch.
_DELTA_ANCESTOR_CAP = 4


class ServiceError(RuntimeError):
    """A request failed; the message names its label and fingerprint."""


@dataclass(frozen=True)
class SolveRequest:
    """One unit of service traffic: a problem plus its solve knobs.

    ``label`` is an optional human-readable handle carried into results
    and error messages (:meth:`from_workload` fills in
    ``name@size#seed``; unlabeled requests render as ``<unlabeled>``);
    it never participates in the cache key.
    """

    problem: Problem
    knobs: SolveKnobs = SolveKnobs()
    label: Optional[str] = None
    #: Memoized cache key (fingerprinting scans the whole problem; a
    #: client replaying a prepared request handle pays it once).
    _fp: Optional[Fingerprint] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_workload(
        cls,
        name: str,
        size: int,
        seed: int = 0,
        knobs: Optional[SolveKnobs] = None,
        **knob_kwargs,
    ) -> "SolveRequest":
        """Build a request for a registry workload (label = name@size#seed).

        Pass *knobs* whole, or individual :class:`SolveKnobs` fields as
        keyword arguments (mutually exclusive).  The solve seed
        defaults to the workload seed, so one number determines the
        whole request.
        """
        if knobs is not None and knob_kwargs:
            raise ValueError("pass knobs= or individual knob fields, not both")
        if knobs is None:
            knob_kwargs.setdefault("seed", seed)
            knobs = SolveKnobs(**knob_kwargs)
        return cls(
            problem=build_workload(name, size, seed=seed),
            knobs=knobs,
            label=f"{name}@{size}#{seed}",
        )

    def fingerprint(self) -> Fingerprint:
        """The request's cache key (computed once per request object)."""
        if self._fp is None:
            object.__setattr__(
                self, "_fp", solve_fingerprint(self.problem, self.knobs)
            )
        return self._fp


@dataclass
class ServiceResult:
    """What the service hands back for one request.

    ``status`` is ``"hit"`` (served from cache, either tier),
    ``"miss"`` (a fresh cold solve ran; coalesced callers share the
    miss result of the one solve that served them) or ``"delta"`` (a
    :meth:`SchedulingService.submit_delta` request warm-started from a
    cached ancestor's journal -- certified bit-identical to a cold
    solve, see :mod:`repro.service.delta`).  ``latency_s`` measures
    this request's submit-to-resolution wall-clock.
    """

    report: AlgorithmReport = field(repr=False)
    fingerprint: Fingerprint
    status: str
    latency_s: float
    #: The submitting request's label, or ``None`` for an unlabeled
    #: request -- the same optionality as :attr:`SolveRequest.label`
    #: (coalesced callers see their *own* label here, not the
    #: primary's).
    label: Optional[str] = None
    #: Delta telemetry -- present exactly when the request traveled the
    #: delta path (``submit_delta``/``solve_delta``), whatever its
    #: outcome; plain submissions and cache hits carry ``None``.
    delta: Optional[DeltaStats] = None
    #: Set by the async front door's debouncer when this caller's exact
    #: snapshot was skipped in favor of a newer one in the same change
    #: storm; the carried report answers that *newer* snapshot.
    superseded: bool = False

    @property
    def profit(self) -> float:
        """``p(S)`` of the served solution."""
        return self.report.profit


class SchedulingService:
    """A warm, caching, coalescing front-end over the solve framework.

    Parameters
    ----------
    capacity:
        In-memory LRU capacity of the result cache.
    disk_dir:
        Optional directory for the cache's pickle tier (survives
        restarts; ``None`` disables it).
    workers:
        Size of the request-dispatch pool (default: usable CPUs,
        capped) -- how many *distinct* requests solve concurrently.
        Independent of each request's own ``workers`` engine knob.
    default_knobs:
        Knobs applied by :meth:`submit_problem` when the caller gives
        none.  Defaults to the incremental engine -- the serial
        production engine -- with Luby's oracle.
    strict_cache:
        Propagate disk-tier verification failures as errors instead of
        degrading them to misses.
    ttl:
        Default time-to-live (seconds) for cached results; ``None``
        (the default) means results stay valid until evicted or
        invalidated.  Mutable-capacity deployments set a TTL as the
        backstop and bump ``SolveKnobs.capacity_epoch`` /
        call :meth:`invalidate` for prompt bulk expiry.
    clock:
        Monotonic clock for TTL deadlines (injectable for tests).
    keep_artifacts:
        Opt into warm-start journaling: incremental-engine solves run
        journaled, the journal rides the cache entry (memory tier only)
        and the entry is indexed by its delta key, making it a
        candidate ancestor for :meth:`submit_delta`.  Off by default --
        journals cost memory and a little recording time, and a service
        that never sees delta traffic should pay neither.
    metrics:
        Telemetry switch.  ``None`` (default) disables request tracing
        entirely -- the instrumented path degenerates to no-op spans.
        ``True`` records into the process-wide
        :func:`~repro.obs.default_registry`; a
        :class:`~repro.obs.MetricsRegistry` instance records there
        instead (test isolation, side-by-side services).  Telemetry is
        purely additive: it never changes which solver runs or what
        digest comes back, only what gets counted.
    slo_targets:
        Optional per-family p99 latency budgets (seconds) for the
        :class:`~repro.obs.SLOTracker` riding on the request
        histograms; requires *metrics*.  ``None`` uses
        :data:`~repro.obs.DEFAULT_TARGETS` when metrics are on.
    """

    def __init__(
        self,
        capacity: int = 128,
        disk_dir: Optional[str] = None,
        workers: Optional[int] = None,
        default_knobs: SolveKnobs = SolveKnobs(),
        strict_cache: bool = False,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        keep_artifacts: bool = False,
        metrics: Union[None, bool, MetricsRegistry] = None,
        slo_targets: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"service workers must be positive, got {self.workers}")
        self.default_knobs = default_knobs
        self.keep_artifacts = keep_artifacts
        if metrics is None or metrics is False:
            self.metrics: Optional[MetricsRegistry] = None
        elif metrics is True:
            self.metrics = default_registry()
        else:
            self.metrics = metrics
        if self.metrics is not None:
            self.slo: Optional[SLOTracker] = SLOTracker(
                self.metrics, targets=slo_targets
            )
        elif slo_targets is not None:
            raise ValueError("slo_targets requires metrics to be enabled")
        else:
            self.slo = None
        #: fingerprint digest -> problem family, telemetry-only: family
        #: classification is a structural scan of the whole problem,
        #: too dear to repeat on every cache hit of a hot fingerprint.
        #: Crude cap-and-clear bound; entries are two tiny strings.
        self._family_cache: Dict[str, str] = {}
        self.cache = ResultCache(
            capacity=capacity, disk_dir=disk_dir, strict=strict_cache,
            ttl=ttl, clock=clock, keep_artifacts=keep_artifacts,
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._requests = 0
        self._coalesced = 0
        self._solves = 0
        #: delta key -> (fingerprint digest -> Fingerprint), newest
        #: last: the ancestor index submit_delta searches.  Entries are
        #: pruned lazily when their cache entry expired, evicted or
        #: lost its artifacts.
        self._delta_index: Dict[str, "OrderedDict[str, Fingerprint]"] = {}
        self._delta_requests = 0
        self._delta_outcomes: Dict[str, int] = {o: 0 for o in DELTA_OUTCOMES}
        #: Numeric DeltaStats counters summed over every delta request
        #: (warm and fallback alike), so operators can read replay
        #: effectiveness off one ``stats`` call instead of sampling
        #: per-request results.  Seeded from a snapshot's numeric keys
        #: so the counters read zero before any delta traffic, but the
        #: accumulation in :meth:`_solve_delta_into` iterates the live
        #: snapshot -- a counter added to ``DeltaStats`` later still
        #: shows up in ``stats["delta_totals"]``.
        self._delta_totals: Dict[str, int] = {
            k: 0 for k in DeltaStats(outcome="warm").numeric_counters()
        }

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> "Future[ServiceResult]":
        """Enqueue one request; returns a future of its result.

        Cache hits resolve immediately; a duplicate of an in-flight
        fingerprint joins the solve already running (coalescing) but
        still gets its own future, so its result carries *its* label
        and submit-to-resolution latency; everything else dispatches
        onto the warm service pool.  Invalid knobs are rejected here,
        before any cache interaction -- an invalid request must error
        deterministically, not succeed whenever a valid normalization
        of it happens to be cached.

        The lock guards only the memory tier and the in-flight
        registry; fingerprinting, disk reads and solves all run outside
        it, so concurrent memory hits never queue behind another
        request's disk verify.
        """
        return self._submit_common(request, self._solve_into)

    def submit_delta(self, request: SolveRequest) -> "Future[ServiceResult]":
        """Like :meth:`submit`, but a miss tries the delta path first.

        The front of the pipeline is identical -- exact-fingerprint
        cache hits and in-flight coalescing behave exactly as for
        :meth:`submit` (an unchanged resubmission is a ``"hit"``, never
        a replay).  Only a genuinely new fingerprint diverges: the
        worker looks up a warm-start ancestor under the request's delta
        key and runs the certified-replay solve, falling back to a cold
        solve (``DeltaStats.outcome`` says why) whenever warm-starting
        is impossible; either way the result is bit-identical to a cold
        solve of this exact problem.
        """
        return self._submit_common(request, self._solve_delta_into)

    def _submit_common(
        self,
        request: SolveRequest,
        solver: Callable[..., None],
    ) -> "Future[ServiceResult]":
        t0 = time.perf_counter()  # latency includes fingerprinting
        trace = trace_request(self.metrics)
        try:
            with trace.span("validate"):
                request.knobs.validate()
        except ValueError as exc:
            self._finish_request(trace, "error")
            raise ServiceError(
                f"request {request.label or '<unlabeled>'} rejected: {exc}"
            ) from exc
        with trace.span("fingerprint"):
            fp = request.fingerprint()
            if self.metrics is not None:
                # Family classification is telemetry-only work: skip it
                # entirely when off, and cache it per fingerprint so a
                # hot key's hits do not re-scan the problem structure.
                family = self._family_cache.get(fp.digest)
                if family is None:
                    family = problem_family(request.problem)
                    if len(self._family_cache) >= 4096:
                        self._family_cache.clear()
                    self._family_cache[fp.digest] = family
                trace.set_family(family)
        with trace.span("cache_probe"):
            with self._lock:
                self._requests += 1
                cached = self.cache.get_memory(fp)
                existing = fut = None
                if cached is None:
                    existing = self._inflight.get(fp.digest)
                    if existing is not None:
                        self._coalesced += 1
                    else:
                        fut = Future()
                        self._inflight[fp.digest] = fut
        if cached is not None:
            self._finish_request(trace, "hit")
            return self._resolved(cached, fp, request.label, t0)
        if existing is not None:
            return self._joined(existing, request.label, t0, trace)
        # Tier-2 probe outside the lock (pickle load + digest verify).
        # Duplicates arriving meanwhile coalesce onto `fut`, which the
        # disk hit resolves just like a finished solve would.
        try:
            with trace.span("cache_probe"):
                entry = self.cache.load_disk(fp)
        except Exception as exc:  # strict-mode integrity failures
            # The failure must flow through the future: coalesced
            # duplicates already joined `fut`, and leaving it pending
            # would hang them forever.
            with self._lock:
                self._inflight.pop(fp.digest, None)
            self._finish_request(trace, "error")
            fut.set_exception(self._wrap_failure(request, fp, exc))
            return fut
        if entry is not None:
            with self._lock:
                self.cache.stats.disk_hits += 1
                self.cache.admit(entry)
                self._inflight.pop(fp.digest, None)
            self._finish_request(trace, "hit")
            fut.set_result(
                ServiceResult(
                    report=entry.value,
                    fingerprint=fp,
                    status="hit",
                    latency_s=time.perf_counter() - t0,
                    label=request.label,
                )
            )
            return fut
        with self._lock:
            self.cache.stats.misses += 1
        with trace.span("dispatch"):
            shared_service_pool(self.workers).submit(
                solver, request, fp, fut, t0, trace
            )
        return fut

    def _finish_request(self, trace, status: str) -> None:
        """Close one request's trace under its metrics *status* (the
        cache outcome: hit / coalesced / cold / delta / error) and feed
        the SLO tracker.  A no-op trace costs two attribute calls."""
        elapsed = trace.finish(status)
        if self.slo is not None and trace is not NULL_TRACE and status != "error":
            self.slo.observe(trace.family, elapsed)

    @staticmethod
    def _resolved(
        report: AlgorithmReport,
        fp: Fingerprint,
        label: Optional[str],
        t0: float,
    ) -> "Future[ServiceResult]":
        """An already-done future for a memory-tier hit."""
        done: "Future[ServiceResult]" = Future()
        done.set_result(
            ServiceResult(
                report=report,
                fingerprint=fp,
                status="hit",
                latency_s=time.perf_counter() - t0,
                label=label,
            )
        )
        return done

    def _joined(
        self,
        primary: "Future[ServiceResult]",
        label: Optional[str],
        t0: float,
        trace=NULL_TRACE,
    ) -> "Future[ServiceResult]":
        """A coalesced caller's view of the in-flight solve.

        Shares the primary's outcome but re-wraps it with this caller's
        label and latency; a failure propagates the primary's
        :class:`ServiceError` unchanged (it names the request whose
        solve actually ran -- the shared fingerprint in its message is
        what ties it to this caller).  The caller's trace finishes with
        status ``coalesced`` when the shared solve resolves, so its
        recorded latency is the join *wait*, not the primary's solve
        time.
        """
        joined: "Future[ServiceResult]" = Future()

        def relay(done: "Future[ServiceResult]") -> None:
            exc = done.exception()
            if exc is not None:
                self._finish_request(trace, "error")
                joined.set_exception(exc)
                return
            first = done.result()
            self._finish_request(trace, "coalesced")
            joined.set_result(
                ServiceResult(
                    report=first.report,
                    fingerprint=first.fingerprint,
                    status=first.status,
                    latency_s=time.perf_counter() - t0,
                    label=label,
                    delta=first.delta,
                    superseded=first.superseded,
                )
            )

        primary.add_done_callback(relay)
        return joined

    def submit_problem(
        self,
        problem: Problem,
        knobs: Optional[SolveKnobs] = None,
        label: Optional[str] = None,
    ) -> "Future[ServiceResult]":
        """Convenience: wrap *problem* with the service's default knobs."""
        return self.submit(
            SolveRequest(
                problem=problem,
                knobs=knobs if knobs is not None else self.default_knobs,
                label=label,
            )
        )

    def solve(self, request: SolveRequest) -> ServiceResult:
        """Submit and wait; re-raises solve failures as :class:`ServiceError`."""
        return self.submit(request).result()

    def solve_delta(self, request: SolveRequest) -> ServiceResult:
        """:meth:`submit_delta` and wait; failures as :class:`ServiceError`."""
        return self.submit_delta(request).result()

    def solve_batch(self, requests: Sequence[SolveRequest]) -> List[ServiceResult]:
        """Serve a batch: coalesce duplicates, solve distinct requests
        concurrently on the service pool, return results in input order.

        The first failing entry raises its :class:`ServiceError` --
        which names the label and fingerprint of exactly the offending
        request, not just "the batch".
        """
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    @staticmethod
    def _wrap_failure(
        request: SolveRequest, fp: Fingerprint, exc: BaseException
    ) -> ServiceError:
        """The attributable form of any per-request failure."""
        err = ServiceError(
            f"request {request.label or '<unlabeled>'} "
            f"(fingerprint {fp.short}) failed: "
            f"{type(exc).__name__}: {exc}"
        )
        err.__cause__ = exc
        return err

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _journals(self, knobs: SolveKnobs) -> bool:
        """Whether a solve under *knobs* records a warm-start journal:
        only the incremental engine has the journaled runner, and only
        a ``keep_artifacts`` service has anywhere to put the result."""
        return self.keep_artifacts and knobs.engine == "incremental"

    def _solve_request(
        self,
        request: SolveRequest,
        journal: Optional[FirstPhaseJournal],
    ) -> AlgorithmReport:
        """Run the solve, journaled when a journal is supplied."""
        k = request.knobs

        def call() -> AlgorithmReport:
            return solve_auto(
                request.problem,
                epsilon=k.epsilon,
                mis=k.mis,
                seed=k.seed,
                decomposition=k.decomposition,
                engine=k.engine,
                workers=k.workers,
                backend=k.backend,
                plan_granularity=k.plan_granularity,
                phase2_engine=k.phase2_engine,
            )

        if journal is None:
            return call()
        with journal_context(journal):
            return call()

    def _admit_result(
        self,
        request: SolveRequest,
        fp: Fingerprint,
        report: AlgorithmReport,
        journal: Optional[FirstPhaseJournal],
        key: Optional[str] = None,
    ) -> None:
        """Admit a solved report; index it as a delta ancestor if journaled.

        Digest and disk write are the expensive admission steps; they
        run on the calling worker thread, outside the lock.  The write
        is best-effort inside the cache -- a failed persist degrades to
        memory-only, it never fails the request -- and strips the
        artifacts either way, so journals never get pickled.  The entry
        inherits the request's capacity epoch, so a later bulk
        invalidation can find it.  *key* lets the delta path hand down
        its already-computed :func:`delta_key` (sketching walks every
        network; doing it twice per request is measurable).
        """
        artifacts = (
            DeltaArtifacts(problem=request.problem, journal=journal.journal)
            if journal is not None
            else None
        )
        entry = self.cache.make_entry(
            fp, report, epoch=request.knobs.capacity_epoch, artifacts=artifacts
        )
        self.cache.write_disk(entry)
        if artifacts is None:
            key = None
        elif key is None:
            key = delta_key(request.problem, request.knobs)
        with self._lock:
            self._solves += 1
            self.cache.stats.stores += 1
            self.cache.admit(entry)
            if key is not None:
                self._register_ancestor(key, fp)

    def _register_ancestor(self, key: str, fp: Fingerprint) -> None:
        """Index *fp* as the newest ancestor of its delta bucket (caller
        holds the lock)."""
        bucket = self._delta_index.setdefault(key, OrderedDict())
        bucket.pop(fp.digest, None)
        bucket[fp.digest] = fp
        while len(bucket) > _DELTA_ANCESTOR_CAP:
            bucket.popitem(last=False)

    def _record_solve(self, trace, elapsed: Optional[float], outcome: str) -> None:
        """One observation in the outcome-labeled solve histogram --
        where ``delta`` and ``cold`` solve costs become comparable per
        family (ROADMAP delta follow-up (d))."""
        if self.metrics is not None and elapsed is not None:
            self.metrics.histogram(
                "repro_service_solve_seconds",
                family=trace.family,
                outcome=outcome,
            ).observe(elapsed)

    def _solve_into(
        self,
        request: SolveRequest,
        fp: Fingerprint,
        fut: "Future[ServiceResult]",
        t0: float,
        trace=NULL_TRACE,
    ) -> None:
        try:
            with trace.span("solve") as solving:
                journal = (
                    FirstPhaseJournal() if self._journals(request.knobs) else None
                )
                report = self._solve_request(request, journal)
            self._record_solve(trace, getattr(solving, "elapsed", None), "cold")
            with trace.span("digest"):
                self._admit_result(request, fp, report, journal)
            self._finish_request(trace, "cold")
            fut.set_result(
                ServiceResult(
                    report=report,
                    fingerprint=fp,
                    status="miss",
                    latency_s=time.perf_counter() - t0,
                    label=request.label,
                )
            )
        except BaseException as exc:
            self._finish_request(trace, "error")
            fut.set_exception(self._wrap_failure(request, fp, exc))
        finally:
            # Deregister only after the cache holds the result (or the
            # failure is published): a submit racing this window either
            # joins the still-registered future or hits the cache.
            with self._lock:
                self._inflight.pop(fp.digest, None)

    def _solve_delta_into(
        self,
        request: SolveRequest,
        fp: Fingerprint,
        fut: "Future[ServiceResult]",
        t0: float,
        trace=NULL_TRACE,
    ) -> None:
        try:
            with trace.span("solve") as solving:
                report, stats = self._delta_solve(request, fp)
            warm = stats.outcome == "warm"
            self._record_solve(
                trace, getattr(solving, "elapsed", None),
                "delta" if warm else "cold",
            )
            counters = stats.numeric_counters()
            with self._lock:
                self._delta_requests += 1
                self._delta_outcomes[stats.outcome] += 1
                # Iterate the live counters, not the totals dict: a
                # counter later added to DeltaStats must start
                # accumulating here, not be silently dropped because the
                # totals were seeded from an older key set.
                for k, v in counters.items():
                    self._delta_totals[k] = self._delta_totals.get(k, 0) + v
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_delta_requests_total", outcome=stats.outcome
                ).inc()
                for k, v in counters.items():
                    self.metrics.counter(f"repro_delta_{k}_total").inc(v)
            self._finish_request(trace, "delta" if warm else "cold")
            fut.set_result(
                ServiceResult(
                    report=report,
                    fingerprint=fp,
                    status="delta" if warm else "miss",
                    latency_s=time.perf_counter() - t0,
                    label=request.label,
                    delta=stats,
                )
            )
        except BaseException as exc:
            self._finish_request(trace, "error")
            fut.set_exception(self._wrap_failure(request, fp, exc))
        finally:
            with self._lock:
                self._inflight.pop(fp.digest, None)

    def _delta_solve(
        self, request: SolveRequest, fp: Fingerprint
    ) -> Tuple[AlgorithmReport, DeltaStats]:
        """The delta decision chain; always ends in an admitted solve.

        Every fallback arm runs the same cold solve a plain
        :meth:`submit` would (journaled when possible, so the fallback
        itself seeds the next delta's ancestor) -- the arms differ only
        in the recorded outcome.
        """
        knobs = request.knobs
        if knobs.engine != "incremental":
            return self._cold_fallback(request, fp, "engine-fallback")
        if not self.keep_artifacts:
            return self._cold_fallback(request, fp, "ancestor-miss")
        key = delta_key(request.problem, knobs)
        found = self._find_ancestor(key, request.problem)
        if found is None:
            return self._cold_fallback(request, fp, "ancestor-miss", key=key)
        ancestor_fp, artifacts, delta = found
        if delta.networks_changed:
            return self._cold_fallback(request, fp, "network-change", key=key)
        if delta.dirty_fraction(request.problem) > TOO_DIRTY_FRACTION:
            return self._cold_fallback(
                request, fp, "too-dirty", delta=delta, key=key
            )
        journal = FirstPhaseJournal(
            ancestor=artifacts.journal,
            touched_demands=delta.touched_demands,
            touched_edges=delta.touched_edges,
        )
        report = self._solve_request(request, journal)
        self._admit_result(request, fp, report, journal, key=key)
        stats = DeltaStats(
            outcome="warm",
            ancestor=ancestor_fp.short,
            touched_demands=len(delta.touched_demands),
            touched_edges=len(delta.touched_edges),
            epochs_replayed=journal.epochs_replayed,
            epochs_rerun=journal.epochs_rerun,
            predicted_dirty=journal.predicted_dirty,
            prediction_misses=journal.prediction_misses,
            phases=journal.phases,
            layouts_reused=journal.layouts_reused,
            admission_components=journal.admission_components,
            admission_replayed=journal.admission_replayed,
            admission_rerun=journal.admission_rerun,
        )
        return report, stats

    def _cold_fallback(
        self,
        request: SolveRequest,
        fp: Fingerprint,
        outcome: str,
        delta: Optional[ProblemDelta] = None,
        key: Optional[str] = None,
    ) -> Tuple[AlgorithmReport, DeltaStats]:
        journal = FirstPhaseJournal() if self._journals(request.knobs) else None
        report = self._solve_request(request, journal)
        self._admit_result(request, fp, report, journal, key=key)
        stats = DeltaStats(
            outcome=outcome,
            touched_demands=0 if delta is None else len(delta.touched_demands),
            touched_edges=0 if delta is None else len(delta.touched_edges),
        )
        return report, stats

    def _find_ancestor(
        self, key: str, problem: Problem
    ) -> Optional[Tuple[Fingerprint, DeltaArtifacts, ProblemDelta]]:
        """The nearest live ancestor in *key*'s bucket, by diff size.

        Under the lock: read the bucket newest-first through
        :meth:`~repro.service.cache.ResultCache.peek_fresh` (no recency
        bump -- screening ancestors must not distort the LRU), pruning
        index entries whose cache entry expired, was evicted, or lost
        its artifacts (e.g. re-admitted from disk).  Outside the lock:
        diff the few survivors against *problem* -- the expensive step
        -- and pick the smallest touched-demand set among those whose
        networks are unchanged.  ``None`` when nothing usable remains;
        a bucket where *every* candidate changed networks returns the
        newest such diff, letting the caller report
        ``"network-change"`` rather than a bare miss.
        """
        with self._lock:
            bucket = self._delta_index.get(key)
            if not bucket:
                return None
            candidates: List[Tuple[Fingerprint, DeltaArtifacts]] = []
            stale: List[str] = []
            for digest in reversed(bucket):
                cand_fp = bucket[digest]
                entry = self.cache.peek_fresh(cand_fp)
                if entry is None or entry.artifacts is None:
                    stale.append(digest)
                    continue
                candidates.append((cand_fp, entry.artifacts))
            for digest in stale:
                bucket.pop(digest, None)
            if not bucket:
                self._delta_index.pop(key, None)
        best: Optional[Tuple[Fingerprint, DeltaArtifacts, ProblemDelta]] = None
        collided: Optional[Tuple[Fingerprint, DeltaArtifacts, ProblemDelta]] = None
        for cand_fp, artifacts in candidates:
            delta = diff_problems(artifacts.problem, problem)
            if delta.networks_changed:
                if collided is None:
                    collided = (cand_fp, artifacts, delta)
                continue
            if best is None or len(delta.touched_demands) < len(
                best[2].touched_demands
            ):
                best = (cand_fp, artifacts, delta)
        return best if best is not None else collided

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(
        self,
        fingerprint=None,
        predicate=None,
        epoch_below: Optional[int] = None,
    ) -> int:
        """Drop cached results from both tiers (see
        :meth:`~repro.service.cache.ResultCache.invalidate`).

        The usual lock discipline: the memory-tier drop happens under
        the service lock (so concurrent hits never observe a half-swept
        tier), while the disk sweep -- a directory scan that unpickles
        every entry -- runs outside it, exactly like disk reads and
        writes on the serving path.  A request already in flight when
        the call lands was solved under the old state and may still
        admit afterwards; invalidation therefore makes no atomicity
        promise against in-flight work -- the capacity-epoch
        fingerprint tag is what keeps *new* traffic from ever reading a
        stale generation.
        """
        with self._lock:
            dropped = self.cache.invalidate_memory(
                fingerprint=fingerprint,
                predicate=predicate,
                epoch_below=epoch_below,
            )
        return dropped + self.cache.invalidate_disk(
            fingerprint=fingerprint,
            predicate=predicate,
            epoch_below=epoch_below,
        )

    def peek_digest(self, fingerprint) -> Optional[str]:
        """The recorded admission digest for *fingerprint*, if its entry
        is resident in memory -- a side-effect-free metadata read (no
        recency bump, no stats), taken under the service lock."""
        with self._lock:
            entry = self.cache.peek_entry(fingerprint)
            return None if entry is None else entry.digest

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Requests seen, coalesced joins, solves run, cache and delta
        counters."""
        with self._lock:
            return {
                "requests": self._requests,
                "coalesced": self._coalesced,
                "solves": self._solves,
                "inflight": len(self._inflight),
                "cache": self.cache.stats.snapshot(),
                "delta_requests": self._delta_requests,
                "delta_outcomes": dict(self._delta_outcomes),
                "delta_totals": dict(self._delta_totals),
                "ancestor_buckets": len(self._delta_index),
            }

    def metrics_registry(self) -> MetricsRegistry:
        """The registry this service records into -- the process
        default when telemetry is off, so ``{"op": "metrics"}`` always
        answers (executor/backend gauges land there regardless)."""
        return self.metrics if self.metrics is not None else default_registry()

    def metrics_snapshot(self) -> dict:
        """A consistent jsonable snapshot of the service's metrics,
        with the SLO attainment report alongside when SLO tracking is
        configured."""
        snap = self.metrics_registry().snapshot()
        return {
            "metrics": snap,
            "slo": self.slo.report() if self.slo is not None else None,
        }
