"""Schedule-diff egress: push O(changed cells), not O(solution).

A subscribed client tracking a re-solved schedule does not need the
whole solution on every update -- churn perturbs a handful of demands,
and the re-solved schedule usually shares almost every *cell* with the
previous one.  This module is the egress half of that observation, the
``scheduleDistributor.py`` pattern from openwsn's network manager: keep
the last table pushed to each subscriber, diff old vs new with
:class:`difflib.SequenceMatcher`, and transmit only the added and
removed cells -- with a digest handshake so "applying the delta
reproduces the full result" is *verified*, never assumed, and a
full-sync escape hatch for the first push, an explicit client request,
or any verification failure.

**Tables.**  :func:`schedule_table` flattens a served
:class:`~repro.algorithms.base.AlgorithmReport` into its *schedule
table*: one row ("cell") per selected demand instance --
``[instance_id, demand_id, network_id, profit, height]`` -- sorted by
instance id.  Rows are plain JSON scalars, so a table survives a wire
round-trip byte-exactly after :func:`normalize_table` (JSON turns
tuples into lists; normalization re-coerces row shape and numeric
types, so both ends digest the same value).

**Deltas.**  :func:`diff_tables` runs ``SequenceMatcher`` over the two
row sequences and folds its opcodes into ``removed`` + ``added`` cell
tuples (openwsn diffs its slotframe tables the same way: equal runs
are skipped, ``delete``/``replace``/``insert`` runs become the cells
to retract and install).  The delta carries the digest of the base
table it applies to and of the target table it must produce;
:func:`apply_delta` refuses a mismatched base (the client diverged --
re-sync) and verifies the applied result against the target digest.

**Per-subscriber state.**  :class:`SchedulePusher` is the
per-connection egress book-keeper used by both the async front door
and the shard router: ``push(sub, table)`` returns the wire payload --
``{"mode": "full", ...}`` on first contact, forced sync, or
self-verification failure; ``{"mode": "delta", ...}`` otherwise -- and
:class:`ScheduleFollower` is the client-side mirror that applies
payloads and enforces the digest handshake (the bench's churn
subscriber and the tests drive it).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import AlgorithmReport
from repro.core.canonical import stable_digest

__all__ = [
    "DeltaSyncError",
    "ScheduleDelta",
    "ScheduleFollower",
    "SchedulePusher",
    "apply_delta",
    "diff_tables",
    "normalize_table",
    "schedule_table",
    "table_digest",
]

#: Version tag folded into every table digest, mirroring the
#: fingerprint tags: a layout change can never alias an old digest.
_TABLE_TAG = "schedule-table/v1"

#: One schedule cell: (instance_id, demand_id, network_id, profit, height).
Cell = Tuple[int, int, int, float, float]


class DeltaSyncError(RuntimeError):
    """A schedule delta could not be applied verifiably.

    Raised when the client's base table does not match the delta's
    recorded base digest (the subscriber diverged -- request a full
    sync) or when the applied result fails the target-digest check.
    """


def schedule_table(report: AlgorithmReport) -> List[Cell]:
    """The served solution as a sorted list of schedule cells.

    Composite reports already carry their merged solution on
    ``report.solution`` (the same object
    :func:`~repro.service.cache.report_semantic_form` digests), so one
    flattening covers every algorithm family.
    """
    return [
        (
            int(d.instance_id),
            int(d.demand_id),
            int(d.network_id),
            float(d.profit),
            float(d.height),
        )
        for d in sorted(report.solution.selected, key=lambda d: d.instance_id)
    ]


def normalize_table(table: Sequence[Sequence]) -> Tuple[Cell, ...]:
    """Coerce wire rows back into canonical cell tuples, sorted.

    JSON degrades tuples to lists and is type-loose about numbers; the
    digest is not.  Every digest and diff in this module goes through
    this normalization, so a table that crossed the wire digests
    identically to the one that was flattened server-side.
    """
    cells = []
    for row in table:
        if len(row) != 5:
            raise DeltaSyncError(
                f"malformed schedule cell {row!r}: expected 5 fields"
            )
        cells.append(
            (int(row[0]), int(row[1]), int(row[2]), float(row[3]), float(row[4]))
        )
    return tuple(sorted(cells))


def table_digest(table: Sequence[Sequence]) -> str:
    """Stable digest of a (normalized) schedule table."""
    return stable_digest((_TABLE_TAG, normalize_table(table)))


@dataclass(frozen=True)
class ScheduleDelta:
    """The add/remove cells taking one schedule table to another."""

    base_digest: str
    target_digest: str
    added: Tuple[Cell, ...]
    removed: Tuple[Cell, ...]

    @property
    def cells_changed(self) -> int:
        """Total cells on the wire -- the O(delta) egress measure."""
        return len(self.added) + len(self.removed)

    def to_wire(self) -> dict:
        """The JSON payload of a delta push."""
        return {
            "mode": "delta",
            "base_digest": self.base_digest,
            "table_digest": self.target_digest,
            "added": [list(c) for c in self.added],
            "removed": [list(c) for c in self.removed],
        }


def diff_tables(
    old: Sequence[Sequence], new: Sequence[Sequence]
) -> ScheduleDelta:
    """Diff two schedule tables into add/remove cells.

    ``SequenceMatcher`` over the sorted row sequences, exactly the
    openwsn ``scheduleDistributor`` move: matching runs cost nothing,
    ``delete``/``replace`` runs are retractions, ``insert``/``replace``
    runs are installations.  (Rows are unique -- instance ids are -- so
    the opcode fold is equivalent to a set diff, but the matcher keeps
    the common-run scan linear in table size and mirrors the reference
    implementation.)
    """
    old_n, new_n = normalize_table(old), normalize_table(new)
    matcher = SequenceMatcher(a=old_n, b=new_n, autojunk=False)
    added: List[Cell] = []
    removed: List[Cell] = []
    for op, i1, i2, j1, j2 in matcher.get_opcodes():
        if op in ("delete", "replace"):
            removed.extend(old_n[i1:i2])
        if op in ("insert", "replace"):
            added.extend(new_n[j1:j2])
    return ScheduleDelta(
        base_digest=table_digest(old_n),
        target_digest=table_digest(new_n),
        added=tuple(added),
        removed=tuple(removed),
    )


def apply_delta(
    table: Sequence[Sequence], delta: ScheduleDelta
) -> Tuple[Cell, ...]:
    """Apply *delta* to *table*; verified on both ends.

    Raises :class:`DeltaSyncError` when the base table does not digest
    to the delta's recorded base (the subscriber diverged), when a
    retraction names an absent cell or an installation a present one,
    or when the applied result fails the target-digest check.  A caller
    catching it should fall back to a full sync -- never trust a table
    it cannot verify.
    """
    base = normalize_table(table)
    if table_digest(base) != delta.base_digest:
        raise DeltaSyncError(
            "delta base mismatch: subscriber table diverged from the "
            "pusher's record (request a full sync)"
        )
    cells = set(base)
    for cell in delta.removed:
        if cell not in cells:
            raise DeltaSyncError(f"delta removes absent cell {cell!r}")
        cells.discard(cell)
    for cell in delta.added:
        if cell in cells:
            raise DeltaSyncError(f"delta adds already-present cell {cell!r}")
        cells.add(cell)
    applied = tuple(sorted(cells))
    if table_digest(applied) != delta.target_digest:
        raise DeltaSyncError(
            "applied delta failed target-digest verification"
        )
    return applied


def _delta_from_wire(payload: dict) -> ScheduleDelta:
    return ScheduleDelta(
        base_digest=payload["base_digest"],
        target_digest=payload["table_digest"],
        added=normalize_table(payload.get("added", ())),
        removed=normalize_table(payload.get("removed", ())),
    )


@dataclass(eq=False)
class SchedulePusher:
    """Per-connection egress state: subscription key -> last table.

    ``push`` is the one entry point; it decides full-vs-delta, records
    the pushed table as the subscriber's new base, and *self-verifies*
    every delta (applies it to the recorded base and digest-checks the
    result) before letting it on the wire -- a delta that cannot be
    proven to reproduce the full table degrades to a full sync instead
    of desynchronizing the subscriber.  Counters feed the stats surface
    and bench E22's egress accounting.
    """

    _tables: Dict[str, Tuple[Cell, ...]] = field(default_factory=dict)
    full_syncs: int = 0
    delta_pushes: int = 0
    cells_pushed: int = 0
    verify_fallbacks: int = 0

    def __len__(self) -> int:
        return len(self._tables)

    def _full(self, sub: str, table: Tuple[Cell, ...]) -> dict:
        self._tables[sub] = table
        self.full_syncs += 1
        self.cells_pushed += len(table)
        return {
            "mode": "full",
            "table": [list(c) for c in table],
            "table_digest": table_digest(table),
        }

    def push(
        self, sub: str, table: Sequence[Sequence], full_sync: bool = False
    ) -> dict:
        """The wire payload for this subscriber's next update."""
        new = normalize_table(table)
        last = self._tables.get(sub)
        if last is None or full_sync:
            return self._full(sub, new)
        delta = diff_tables(last, new)
        try:
            apply_delta(last, delta)
        except DeltaSyncError:
            # Should be unreachable (the diff is constructed from the
            # recorded base), but the escape hatch is the contract: a
            # delta that fails self-verification never ships.
            self.verify_fallbacks += 1
            return self._full(sub, new)
        self._tables[sub] = new
        self.delta_pushes += 1
        self.cells_pushed += delta.cells_changed
        return delta.to_wire()

    def forget(self, sub: str) -> None:
        """Drop a subscriber's base (its next push is a full sync)."""
        self._tables.pop(sub, None)

    def stats_snapshot(self) -> dict:
        return {
            "subscriptions": len(self._tables),
            "full_syncs": self.full_syncs,
            "delta_pushes": self.delta_pushes,
            "cells_pushed": self.cells_pushed,
            "verify_fallbacks": self.verify_fallbacks,
        }


@dataclass
class ScheduleFollower:
    """Client-side mirror of one subscription: applies push payloads.

    ``apply(payload)`` returns the current table after the update,
    enforcing the digest handshake on every step; ``DeltaSyncError``
    means the follower must request a full sync (``full_sync: true`` on
    its next request).  Used by tests and bench E22's churn subscriber;
    real non-Python clients implement the same dozen lines.
    """

    table: Optional[Tuple[Cell, ...]] = None
    deltas_applied: int = 0
    full_syncs_seen: int = 0

    def apply(self, payload: dict) -> Tuple[Cell, ...]:
        mode = payload.get("mode")
        if mode == "full":
            table = normalize_table(payload["table"])
            if table_digest(table) != payload["table_digest"]:
                raise DeltaSyncError("full sync failed its digest check")
            self.table = table
            self.full_syncs_seen += 1
            return table
        if mode != "delta":
            raise DeltaSyncError(f"unknown push mode {mode!r}")
        if self.table is None:
            raise DeltaSyncError("delta push before any full sync")
        self.table = apply_delta(self.table, _delta_from_wire(payload))
        self.deltas_applied += 1
        return self.table
