"""Canonical fingerprints of problems and solve configurations.

The scheduling service keys its result cache by a content hash of the
:class:`~repro.core.problem.Problem` plus the solve knobs, so that a
re-submitted workload -- or the *same* workload arriving under freshly
minted ids -- hits the cache instead of re-running a solve.  Two design
requirements shape the canonicalization:

**Invariance.**  The fingerprint must not change under

* insertion-order shuffles: the order of the ``networks`` dict, the
  ``demands`` list, the ``access`` dict and its per-demand network
  tuples (every consumer of those containers iterates them sorted);
* isomorphic relabelings of *network ids* and *demand ids*: a control
  plane that mints fresh ids per submission still describes the same
  instance.

Vertex labels are **not** abstracted away: they are the paper's
structural coordinates (on a line-network, vertex = timeslot), so two
problems that differ only by a vertex relabeling are genuinely
different requests.

**Soundness.**  A false hash equality would hand a caller the cached
result of a *different* problem, so the fingerprint never hashes a
lossy summary: it hashes a complete serialization of the problem under
a canonically chosen relabeling.  Network ids are canonicalized by
color refinement on the bipartite demand-access structure (initial
color = the network's shape payload, refined by the multiset of
accessing demand signatures until stable); demand ids by sorting the
id-free demand records.  Equal fingerprints therefore certify an
isomorphism between the two problems.  The converse direction is
best-effort: refinement-tied networks are ordered by their original
ids, which is exact when the tie is a true symmetry (any assignment
among interchangeable networks serializes identically) and at worst
costs a cache *miss* on exotic non-symmetric ties -- never a wrong
hit.

A cache hit on a relabeled-but-isomorphic problem returns the stored
result of the canonical representative: identical profits, schedule
shape and certificates, with ids drawn from the representative
submission.  Hits on a byte-identical resubmission (the overwhelmingly
common traffic pattern) are bit-identical outright.

:class:`SolveKnobs` folds the solve configuration -- epsilon, MIS
oracle, seed, engine, backend, plan granularity, decomposition -- into
the key, since each of those can change the semantic artifact.  The
``workers`` pool size is deliberately *excluded*: job chunking and the
ordered merge make the semantic tuple independent of pool sizing.

``capacity_epoch`` is the one knob that is *not* about the solve at
all: it is a monotonically bumped generation counter for mutable
serving state (link capacities re-planned, tenant quotas changed).
Folding it into the key means a bumped epoch simply *misses* -- the
new-epoch request solves fresh while old-epoch entries age out of the
LRU or are bulk-dropped via
:meth:`repro.service.cache.ResultCache.invalidate`\\ ``(epoch_below=)``
-- the ROADMAP's "TTL/invalidation hooks for mutable capacity".
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algorithms.base import validate_engine_knobs
from repro.core.canonical import stable_digest
from repro.core.demand import WindowDemand
from repro.core.engines.backends import resolve_backend
from repro.core.problem import Problem
from repro.trees.tree import TreeNetwork

__all__ = [
    "Fingerprint",
    "SolveKnobs",
    "problem_canonical_form",
    "problem_fingerprint",
    "solve_fingerprint",
]

#: Version tags baked into every digest, so a change to the canonical
#: form can never collide with fingerprints minted by an older layout.
_PROBLEM_TAG = "problem/v1"
_KNOBS_TAG = "knobs/v3"  # v2: + capacity_epoch; v3: + phase2_engine
_SOLVE_TAG = "solve/v1"


@dataclass(frozen=True)
class Fingerprint:
    """A stable content hash, printable in short form for messages."""

    digest: str

    @property
    def short(self) -> str:
        """First 12 hex chars -- the form used in logs and errors."""
        return self.digest[:12]

    def __str__(self) -> str:
        return self.short


def _network_payload(net: TreeNetwork) -> Tuple:
    """The id-free shape of a network: vertices + undirected edges."""
    edges = tuple(sorted((u, v) for (_nid, u, v) in net.edges()))
    return ("net", net.vertices, edges)


def _demand_payload(demand) -> Tuple:
    """The id-free content of a demand (kind, endpoints/window, p, h)."""
    if isinstance(demand, WindowDemand):
        return (
            "window", demand.release, demand.deadline, demand.processing,
            float(demand.profit), float(demand.height),
        )
    return ("p2p", demand.u, demand.v, float(demand.profit), float(demand.height))


def _ranked(keyed: Dict) -> Dict[int, int]:
    """Replace each payload with its rank among the distinct payloads.

    Payload tuples are homogeneous per position (kind tag first, then
    ints/floats), so Python's native tuple ordering is a total,
    content-determined order -- no byte encoding needed on this hot
    path.
    """
    order = sorted(set(keyed.values()))
    rank = {v: i for i, v in enumerate(order)}
    return {k: rank[v] for k, v in keyed.items()}


def problem_canonical_form(problem: Problem) -> Tuple:
    """The problem as a nested tuple, invariant under id relabelings.

    Network ids are replaced by canonical indices found through color
    refinement (see the module docstring); demand records are id-free
    and sorted.  Feed the result to
    :func:`repro.core.canonical.stable_digest` -- or use
    :func:`problem_fingerprint`, which does exactly that.
    """
    nids = sorted(problem.networks)
    payload = {nid: _network_payload(problem.networks[nid]) for nid in nids}
    demand_payload = {
        a.demand_id: _demand_payload(a) for a in problem.demands
    }
    color = _ranked(payload)
    demand_rank = _ranked(demand_payload)
    # Color refinement on the demand-access bipartite structure.  Each
    # round folds the accessing demands' signatures into the network
    # colors.  Payloads enter only through their precomputed ranks, so
    # per-round signatures are small integer tuples (directly sortable,
    # no re-encoding of network shapes).  Refinement only ever *splits*
    # classes (the old color is part of the signature), so the class
    # count is strictly increasing until the fixpoint: an unchanged
    # count means an unchanged partition, and the loop runs at most
    # n_networks rounds.
    n_classes = len(set(color.values()))
    for _ in range(len(nids)):
        demand_sig = {
            a.demand_id: (
                demand_rank[a.demand_id],
                tuple(sorted(color[n] for n in problem.access[a.demand_id])),
            )
            for a in problem.demands
        }
        accessors: Dict[int, List] = {nid: [] for nid in nids}
        for a in problem.demands:
            for n in problem.access[a.demand_id]:
                accessors[n].append(demand_sig[a.demand_id])
        network_sig = {
            nid: (color[nid], tuple(sorted(accessors[nid])))
            for nid in nids
        }
        order = sorted(set(network_sig.values()))
        rank = {sig: i for i, sig in enumerate(order)}
        color = {nid: rank[network_sig[nid]] for nid in nids}
        if len(order) == n_classes:
            break
        n_classes = len(order)
    # Canonical network order: by final color; ties (interchangeable
    # networks) keep original-id order, which serializes identically
    # for true symmetries.
    canon_order = sorted(nids, key=lambda nid: (color[nid], nid))
    canon_id = {nid: i for i, nid in enumerate(canon_order)}
    records = sorted(
        (
            demand_payload[a.demand_id],
            tuple(sorted(canon_id[n] for n in problem.access[a.demand_id])),
        )
        for a in problem.demands
    )
    return (
        _PROBLEM_TAG,
        tuple(payload[nid] for nid in canon_order),
        tuple(records),
    )


def problem_fingerprint(problem: Problem) -> Fingerprint:
    """Fingerprint of the problem alone (no solve knobs)."""
    return Fingerprint(stable_digest(problem_canonical_form(problem)))


@dataclass(frozen=True)
class SolveKnobs:
    """The solve configuration folded into a cache key.

    Defaults mirror the service's solve path: the incremental engine,
    Luby's oracle, the ideal tree decomposition.  ``workers`` is an
    execution hint only -- it never changes the semantic artifact, so
    it is excluded from :meth:`canonical_form`.
    """

    epsilon: float = 0.1
    mis: str = "luby"
    seed: int = 0
    engine: str = "incremental"
    workers: Optional[int] = None
    backend: Optional[str] = None
    plan_granularity: Optional[str] = None
    decomposition: str = "ideal"
    #: Capacity-generation tag (see module docstring): identical
    #: requests under different epochs key differently, so serving
    #: state that mutated in bulk can never be answered from a
    #: previous generation's cache entry.
    capacity_epoch: int = 0
    #: Second-phase (admission) engine -- ``'reference'``, ``'sliced'``
    #: or ``'vectorized'`` (:mod:`repro.core.engines.admission`).
    phase2_engine: str = "reference"

    def validate(self) -> "SolveKnobs":
        """Reject invalid knob names *and combinations* early.

        The combination check matters to the cache: for serial engines
        :meth:`canonical_form` normalizes the parallel-only knobs away,
        so an invalid combination like ``engine="incremental",
        backend="process"`` would *key the same* as its valid
        normalization -- and whether it errored or silently succeeded
        would then depend on cache state.  Validating before any cache
        interaction (the service does) keeps rejection deterministic.
        """
        validate_engine_knobs(
            self.engine, self.backend, self.plan_granularity,
            self.phase2_engine,
        )
        if self.capacity_epoch < 0:
            raise ValueError(
                f"capacity_epoch must be >= 0, got {self.capacity_epoch}"
            )
        if self.engine not in ("parallel", "vectorized"):
            # plan_granularity shapes the first-phase plan only; the
            # executor knobs additionally serve the sliced second-phase
            # pop, which is legal with any first-phase engine.
            if self.plan_granularity is not None:
                raise ValueError(
                    "plan_granularity= applies only to engine='parallel' "
                    f"or 'vectorized', not {self.engine!r}"
                )
            if self.phase2_engine != "sliced":
                for knob, value in (
                    ("workers", self.workers),
                    ("backend", self.backend),
                ):
                    if value is not None:
                        raise ValueError(
                            f"{knob}= applies only to engine='parallel' or "
                            f"'vectorized' (or phase2_engine='sliced'), "
                            f"not {self.engine!r}"
                        )
        return self

    def canonical_form(self) -> Tuple:
        """The key-relevant knobs as a tuple.

        Assumes :meth:`validate` passed: the executor knob slots
        normalize to ``None`` for the serial engines, and
        ``backend=None`` resolves through the environment exactly as
        the engine would, so a run keyed under ``REPRO_BACKEND=process``
        cannot alias one keyed under the thread default.  The
        vectorized engine keys like the parallel one: its executor
        knobs route it through the same plan/execute/merge machinery
        (``kernel="vectorized"``), granularity contract included.
        ``phase2_engine`` is keyed raw: every admission engine is
        bit-identical, but distinct engines must never alias a cache
        entry (the knob-sensitivity contract), and the backend slot
        stays keyed on the *first-phase* engine alone -- a sliced pop's
        substrate never changes the semantic artifact.
        """
        if self.engine in ("parallel", "vectorized"):
            backend: Optional[str] = resolve_backend(self.backend)
            granularity: Optional[str] = self.plan_granularity or "epoch"
        else:
            backend = None
            granularity = None
        return (
            _KNOBS_TAG,
            float(self.epsilon),
            self.mis,
            int(self.seed),
            self.engine,
            backend,
            granularity,
            self.decomposition,
            int(self.capacity_epoch),
            self.phase2_engine,
        )


def solve_fingerprint(problem: Problem, knobs: SolveKnobs) -> Fingerprint:
    """Fingerprint of (problem, solve configuration) -- the cache key."""
    form = (_SOLVE_TAG, problem_canonical_form(problem), knobs.canonical_form())
    return Fingerprint(stable_digest(form))
