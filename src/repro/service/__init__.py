"""The scheduling service layer: fingerprints, result cache, server.

A long-lived serving loop in front of the two-phase framework --
canonical request fingerprinting (:mod:`repro.service.fingerprint`), a
two-tier verified result cache with TTL/invalidation
(:mod:`repro.service.cache`), a coalescing, batching
:class:`SchedulingService` (:mod:`repro.service.server`), and an
asyncio front door with a JSON-over-TCP endpoint
(:mod:`repro.service.async_front`), the delta-solve ingredients --
sketches, problem diffs, change-storm debouncing
(:mod:`repro.service.delta`), schedule-diff egress
(:mod:`repro.service.diff`), and a sharded tier -- consistent-hash
router over forked shard workers (:mod:`repro.service.shard`).
Telemetry rides on :mod:`repro.obs` (metrics registry, per-request
phase tracing, SLO tracking); the convenience re-exports below let
serving code configure it without a second import.  See the "Serving"
and "Observability" sections of README.md.
"""
from repro.obs import (
    MetricsRegistry,
    SLOTracker,
    default_registry,
    merge_snapshots,
    render_prometheus,
)
from repro.service.async_front import AsyncSchedulingService, jsonable
from repro.service.cache import (
    CacheEntry,
    CacheIntegrityError,
    CacheStats,
    ResultCache,
    report_semantic_digest,
)
from repro.service.delta import (
    DELTA_OUTCOMES,
    TOO_DIRTY_FRACTION,
    ChangeDebouncer,
    DeltaArtifacts,
    DeltaStats,
    ProblemDelta,
    delta_key,
    diff_problems,
    problem_sketch,
)
from repro.service.diff import (
    DeltaSyncError,
    ScheduleDelta,
    ScheduleFollower,
    SchedulePusher,
    apply_delta,
    diff_tables,
    normalize_table,
    schedule_table,
    table_digest,
)
from repro.service.fingerprint import (
    Fingerprint,
    SolveKnobs,
    problem_canonical_form,
    problem_fingerprint,
    solve_fingerprint,
)
from repro.service.server import (
    SchedulingService,
    ServiceError,
    ServiceResult,
    SolveRequest,
)
from repro.service.shard import (
    HashRing,
    ShardCluster,
    ShardRouter,
    ShardUnavailable,
)

__all__ = [
    "AsyncSchedulingService",
    "CacheEntry",
    "CacheIntegrityError",
    "CacheStats",
    "ChangeDebouncer",
    "DELTA_OUTCOMES",
    "DeltaArtifacts",
    "DeltaStats",
    "DeltaSyncError",
    "Fingerprint",
    "HashRing",
    "MetricsRegistry",
    "ProblemDelta",
    "ResultCache",
    "SLOTracker",
    "ScheduleDelta",
    "ScheduleFollower",
    "SchedulePusher",
    "SchedulingService",
    "ServiceError",
    "ServiceResult",
    "ShardCluster",
    "ShardRouter",
    "ShardUnavailable",
    "SolveKnobs",
    "SolveRequest",
    "TOO_DIRTY_FRACTION",
    "apply_delta",
    "default_registry",
    "delta_key",
    "diff_problems",
    "diff_tables",
    "jsonable",
    "merge_snapshots",
    "normalize_table",
    "render_prometheus",
    "problem_canonical_form",
    "problem_fingerprint",
    "report_semantic_digest",
    "schedule_table",
    "solve_fingerprint",
    "table_digest",
]
