"""The scheduling service layer: fingerprints, result cache, server.

A long-lived serving loop in front of the two-phase framework --
canonical request fingerprinting (:mod:`repro.service.fingerprint`), a
two-tier verified result cache with TTL/invalidation
(:mod:`repro.service.cache`), a coalescing, batching
:class:`SchedulingService` (:mod:`repro.service.server`), and an
asyncio front door with a JSON-over-TCP endpoint
(:mod:`repro.service.async_front`), and the delta-solve ingredients --
sketches, problem diffs, change-storm debouncing
(:mod:`repro.service.delta`).  See the "Serving" section of README.md.
"""
from repro.service.async_front import AsyncSchedulingService
from repro.service.cache import (
    CacheEntry,
    CacheIntegrityError,
    CacheStats,
    ResultCache,
    report_semantic_digest,
)
from repro.service.delta import (
    DELTA_OUTCOMES,
    TOO_DIRTY_FRACTION,
    ChangeDebouncer,
    DeltaArtifacts,
    DeltaStats,
    ProblemDelta,
    delta_key,
    diff_problems,
    problem_sketch,
)
from repro.service.fingerprint import (
    Fingerprint,
    SolveKnobs,
    problem_canonical_form,
    problem_fingerprint,
    solve_fingerprint,
)
from repro.service.server import (
    SchedulingService,
    ServiceError,
    ServiceResult,
    SolveRequest,
)

__all__ = [
    "AsyncSchedulingService",
    "CacheEntry",
    "CacheIntegrityError",
    "CacheStats",
    "ChangeDebouncer",
    "DELTA_OUTCOMES",
    "DeltaArtifacts",
    "DeltaStats",
    "Fingerprint",
    "ProblemDelta",
    "ResultCache",
    "SchedulingService",
    "ServiceError",
    "ServiceResult",
    "SolveKnobs",
    "SolveRequest",
    "TOO_DIRTY_FRACTION",
    "delta_key",
    "diff_problems",
    "problem_canonical_form",
    "problem_fingerprint",
    "report_semantic_digest",
    "solve_fingerprint",
]
