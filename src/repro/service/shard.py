"""Sharded service tier: N shard workers behind one wire-compatible router.

One :class:`~repro.service.async_front.AsyncSchedulingService` saturates
at one process's worth of solver throughput.  This module horizontally
partitions the serving tier without changing a byte of the wire
protocol: :class:`ShardCluster` forks N worker processes, each running
the full async front door over its own :class:`SchedulingService`, and
:class:`ShardRouter` listens on the same newline-delimited JSON-over-TCP
discipline, routing every solve to the shard that *owns* the request's
solve fingerprint.

**Ownership = consistent hashing on the fingerprint digest.**  The
router computes each request's real
:func:`~repro.service.fingerprint.solve_fingerprint` (the same digest
the shards key their caches on) and maps it onto a sha256
:class:`HashRing` with virtual nodes.  Identical requests therefore
always land on the same shard -- coalescing, caching, and delta-solve
ancestry all keep working per shard -- and when a shard dies only the
keys it owned move (to the ring neighbors), everyone else's cache stays
warm.  Routing is deterministic in the shard set, so a restarted router
over the same shards routes identically.

**Shared disk tier.**  Shards may share one ``disk_dir``: the
:class:`~repro.service.cache.ResultCache` disk tier is append-mostly
and digest-verified on read, and shards own disjoint fingerprints by
construction, so a key re-homed by a shard death finds its disk entry
already present on the new owner -- a warm handoff, not a re-solve.

**Fan-out ops.**  ``{"op": "invalidate", "epoch_below": E}`` broadcasts
to every live shard and sums the dropped counts; ``{"op": "stats"}``
returns per-shard stats plus a recursive numeric aggregate (so
``aggregate.service.delta_totals`` reads like a single service's), and
the router's own routing counters.

**Delta-push egress.**  The router owns the client connections, so the
:class:`~repro.service.diff.SchedulePusher` state lives here: a
``"sub"``-scribed request is forwarded with ``"table": true``, the
schedule table is stripped from the shard's reply, and the client gets
only the add/remove cells relative to the last table pushed on *this*
connection (digest-verified, full-sync escape hatch) -- shards stay
egress-stateless.

**Failure model.**  A dead shard (connect refused, link severed) is
removed from the ring and its in-flight requests are retried on the new
owner; the retried request is a cold miss there (or a disk hit, with a
shared tier) but returns the bit-identical artifact -- the acceptance
check of bench E22.  A severed *client* never takes the router down:
response writes to a closing transport are dropped, exactly like the
front door.
"""
from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import multiprocessing
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from itertools import count
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import default_registry, merge_snapshots, render_prometheus
from repro.service.async_front import (
    WIRE_LINE_LIMIT,
    AsyncSchedulingService,
    jsonable,
)
from repro.service.diff import SchedulePusher

__all__ = [
    "HashRing",
    "ShardCluster",
    "ShardRouter",
    "ShardUnavailable",
]


class ShardUnavailable(RuntimeError):
    """A shard link failed (connect refused, severed, or closed)."""


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class HashRing:
    """A sha256 consistent-hash ring with virtual nodes.

    Each shard id is hashed onto ``vnodes`` points of a 64-bit ring;
    a key is owned by the first shard point at or clockwise-after the
    key's own point.  Removing a shard re-homes *only* the keys it
    owned (they fall to the next point on the ring); every other
    key->shard assignment is untouched -- the property that keeps N-1
    caches warm through a shard death.
    """

    def __init__(self, shard_ids: Sequence[str], vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._shards: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        for sid in shard_ids:
            self.add(sid)

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def _rebuild(self) -> None:
        pairs = sorted(
            (self._point(f"vnode/{sid}/{i}"), sid)
            for sid in self._shards
            for i in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [sid for _, sid in pairs]

    def add(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._shards.append(shard_id)
        self._rebuild()

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            return
        self._shards.remove(shard_id)
        self._rebuild()

    def owner(self, key: str) -> str:
        """The shard owning *key* (any string; fingerprints in practice)."""
        if not self._points:
            raise ShardUnavailable("hash ring is empty: no live shards")
        p = self._point(f"key/{key}")
        i = bisect.bisect_right(self._points, p) % len(self._points)
        return self._owners[i]

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._shards)


# ----------------------------------------------------------------------
# Shard worker processes
# ----------------------------------------------------------------------
def _shard_serve(conn, service_kwargs: dict, host: str, port: int = 0) -> None:
    """Body of one shard worker: serve until the parent says stop.

    ``port=0`` binds an ephemeral port (fresh starts);
    :meth:`ShardCluster.restart` passes a dead shard's *original* port
    so the worker comes back at the address the router already knows
    (``asyncio.start_server`` sets ``SO_REUSEADDR`` on POSIX, so the
    killed predecessor's lingering socket does not block the bind).
    """

    async def main() -> None:
        front = AsyncSchedulingService(**service_kwargs)
        bound = await front.serve(host=host, port=port)
        conn.send(bound)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def wait_for_stop() -> None:
            try:
                conn.recv()
            except EOFError:
                pass
            loop.call_soon_threadsafe(stop.set)

        threading.Thread(target=wait_for_stop, daemon=True).start()
        await stop.wait()
        await front.aclose()

    asyncio.run(main())


def _shard_worker_main(conn, service_kwargs: dict, host: str, port: int = 0) -> None:
    # Fresh fork: the backends register_at_fork hook already cleared
    # the inherited warm-pool registries, so this child builds its own
    # executors instead of deadlocking on the parent's dead threads.
    try:
        _shard_serve(conn, service_kwargs, host, port)
    except KeyboardInterrupt:
        pass


class ShardCluster:
    """N shard worker processes, each a full async front door.

    Workers are forked (``multiprocessing`` fork context -- the
    :mod:`repro.core.engines.backends` ``register_at_fork`` hook makes
    the warm pools fork-safe), bind ephemeral ports, and report their
    addresses over a pipe.  ``service_kwargs`` go to every shard's
    :class:`AsyncSchedulingService` -- pass one shared ``disk_dir`` for
    the warm-handoff disk tier.

    Use as a context manager, or :meth:`start` / :meth:`stop`
    explicitly; :meth:`kill` SIGKILLs one shard to exercise the
    router's failover path.
    """

    def __init__(
        self,
        shards: int = 4,
        host: str = "127.0.0.1",
        start_timeout: float = 30.0,
        **service_kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.host = host
        self.shards = shards
        self.start_timeout = start_timeout
        self.service_kwargs = service_kwargs
        self._ctx = multiprocessing.get_context("fork")
        self._procs: List = []
        self._pipes: List = []
        self.addresses: List[Tuple[str, int]] = []

    def start(self) -> List[Tuple[str, int]]:
        """Fork every shard; returns their ``(host, port)`` addresses."""
        if self._procs:
            raise RuntimeError("cluster already started")
        for _ in range(self.shards):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, self.service_kwargs, self.host),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)
        for i, conn in enumerate(self._pipes):
            if not conn.poll(self.start_timeout):
                self.stop()
                raise RuntimeError(f"shard {i} did not report its address")
            self.addresses.append(tuple(conn.recv()))
        return list(self.addresses)

    def kill(self, index: int) -> None:
        """SIGKILL one shard -- the failure bench E22 injects."""
        proc = self._procs[index]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=10)

    def restart(self, index: int) -> Tuple[str, int]:
        """Re-fork one dead shard on its *original* address.

        The recovery half of :meth:`kill`: the replacement worker binds
        the same ``(host, port)`` the dead shard held, so a router that
        knew the old address can re-admit the shard via
        :meth:`ShardRouter.reprobe` without being reconstructed.  The
        replacement is a fresh process -- empty memory tier, but a
        shared ``disk_dir`` hands its old results straight back.
        """
        if not self.addresses:
            raise RuntimeError("cluster not started")
        if self._procs[index].is_alive():
            raise RuntimeError(
                f"shard {index} is still alive; kill() or stop() it first"
            )
        host, port = self.addresses[index]
        try:
            self._pipes[index].close()
        except OSError:
            pass
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self.service_kwargs, host, port),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self.start_timeout):
            raise RuntimeError(
                f"restarted shard {index} did not report its address"
            )
        bound = tuple(parent_conn.recv())
        self._procs[index] = proc
        self._pipes[index] = parent_conn
        self.addresses[index] = bound
        return bound

    def stop(self) -> None:
        """Graceful stop: signal every live worker, then reap."""
        for conn in self._pipes:
            try:
                conn.send("stop")
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._pipes:
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._pipes.clear()
        self.addresses.clear()

    def __enter__(self) -> "ShardCluster":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class _ShardLink:
    """One multiplexed connection to one shard.

    Many client requests share this link concurrently: outgoing wire
    ids are rewritten to an internal counter, responses resolve the
    matching future, and the caller's original ``id`` is restored by
    the router before relay.  Any transport failure fails every pending
    request with :class:`ShardUnavailable` and marks the link dead --
    the router's retry loop takes it from there.
    """

    def __init__(self, shard_id: str, host: str, port: int) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.dead = False
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = count()
        self._lock = asyncio.Lock()

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=WIRE_LINE_LIMIT
            )
        except OSError as exc:
            self.dead = True
            raise ShardUnavailable(
                f"shard {self.shard_id} unreachable at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = json.loads(line)
                fut = self._pending.pop(payload.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(payload)
        except Exception:
            pass
        finally:
            self._fail_all()

    def _fail_all(self) -> None:
        self.dead = True
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(
                    ShardUnavailable(f"shard {self.shard_id} link severed")
                )

    async def request(self, message: dict) -> dict:
        """Send one wire message; returns the shard's response payload."""
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        async with self._lock:
            if self.dead:
                raise ShardUnavailable(f"shard {self.shard_id} is dead")
            await self._ensure_connected()
            internal = next(self._ids)
            self._pending[internal] = fut
            wire = dict(message)
            wire["id"] = internal
            try:
                self._writer.write(json.dumps(wire).encode("utf-8") + b"\n")
                await self._writer.drain()
            except (OSError, ConnectionError) as exc:
                self._pending.pop(internal, None)
                self._fail_all()
                raise ShardUnavailable(
                    f"shard {self.shard_id} write failed: {exc}"
                ) from exc
        try:
            return await fut
        finally:
            self._pending.pop(internal, None)

    async def close(self) -> None:
        self.dead = True
        if self._read_task is not None:
            self._read_task.cancel()
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:
                pass
        self._fail_all()


def _merge_numeric(acc: dict, stats: dict) -> dict:
    """Recursively sum the numeric leaves of per-shard stats dicts."""
    for k, v in stats.items():
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float)):
            prev = acc.get(k, 0)
            acc[k] = (prev if isinstance(prev, (int, float)) else 0) + v
        elif isinstance(v, dict):
            sub = acc.setdefault(k, {})
            if isinstance(sub, dict):
                _merge_numeric(sub, v)
    return acc


class ShardRouter:
    """The wire-compatible front of a shard cluster.

    Speaks exactly the :class:`AsyncSchedulingService` protocol on the
    client side; on the shard side it keeps one multiplexed
    :class:`_ShardLink` per shard and routes each solve to the
    :class:`HashRing` owner of its solve-fingerprint digest.  See the
    module docstring for the routing, fan-out, failover and delta-push
    semantics.

    Parameters
    ----------
    addresses:
        The shard ``(host, port)`` list (what :meth:`ShardCluster.start`
        returns).  Shard ids are ``shard-<index>`` in address order, so
        routing is deterministic in the address list.
    vnodes:
        Virtual nodes per shard on the hash ring.
    route_cache_size:
        How many request->digest routing decisions to memoize (the
        digest requires building the workload; replayed traffic skips
        that).
    reprobe_interval:
        Seconds between automatic :meth:`reprobe` sweeps over dead
        shards (the task starts with :meth:`serve`); ``None`` (the
        default) disables the periodic task -- :meth:`reprobe` and the
        ``{"op": "reprobe"}`` wire op still work on demand.
    """

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        vnodes: int = 64,
        route_cache_size: int = 2048,
        reprobe_interval: Optional[float] = None,
    ) -> None:
        if reprobe_interval is not None and reprobe_interval <= 0:
            raise ValueError(
                f"reprobe_interval must be positive, got {reprobe_interval}"
            )
        if not addresses:
            raise ValueError("a router needs at least one shard address")
        self._links: Dict[str, _ShardLink] = {}
        ids = []
        for i, (host, port) in enumerate(addresses):
            sid = f"shard-{i}"
            ids.append(sid)
            self._links[sid] = _ShardLink(sid, host, port)
        self._ring = HashRing(ids, vnodes=vnodes)
        self._route_cache: "OrderedDict[str, str]" = OrderedDict()
        self._route_cache_size = route_cache_size
        self._fp_pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._tasks: Set[asyncio.Task] = set()
        # Routing counters for the stats surface.
        self._routed = 0
        self._route_hits = 0
        self._reroutes = 0
        self._rejoins = 0
        self._dead: Set[str] = set()
        self._pushers: Set[SchedulePusher] = set()
        self.reprobe_interval = reprobe_interval
        self._reprobe_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------
    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("serve() already called on this router")
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=WIRE_LINE_LIMIT
        )
        if self.reprobe_interval is not None:
            self._reprobe_task = asyncio.ensure_future(self._reprobe_loop())
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def aclose(self) -> None:
        """Stop listening, settle in-flight requests, close the links."""
        if self._reprobe_task is not None:
            self._reprobe_task.cancel()
            try:
                await self._reprobe_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reprobe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
        for writer in tuple(self._writers):
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
        self._writers.clear()
        for link in self._links.values():
            await link.close()
        if self._fp_pool is not None:
            self._fp_pool.shutdown(wait=True)
            self._fp_pool = None

    async def __aenter__(self) -> "ShardRouter":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # -- client side ---------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Same line discipline as the front door: task per line,
        responses under a per-connection write lock, oversized lines
        answered then disconnected, pending work settled on EOF."""
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        pusher = SchedulePusher()
        self._pushers.add(pusher)
        pending: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._write(
                        writer, write_lock,
                        {
                            "ok": False,
                            "id": None,
                            "error": (
                                "ValueError: request line exceeds "
                                f"{WIRE_LINE_LIMIT} bytes"
                            ),
                        },
                    )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock, pusher)
                )
                for registry in (pending, self._tasks):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
            if pending:
                await asyncio.gather(*tuple(pending), return_exceptions=True)
        finally:
            self._writers.discard(writer)
            self._pushers.discard(pusher)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        pusher: SchedulePusher,
    ) -> None:
        response = await self._dispatch(line, pusher)
        await self._write(writer, write_lock, response, pusher)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: dict,
        pusher: Optional[SchedulePusher] = None,
    ) -> None:
        """Relay one response; delta-push diffs materialize here, under
        the write lock, so each subscription's base-table chain matches
        wire order (same discipline as the front door)."""
        push_spec = response.pop("_push", None)
        async with write_lock:
            if writer.is_closing():
                return
            if push_spec is not None and pusher is not None:
                sub, table, full_sync = push_spec
                loop = asyncio.get_running_loop()
                try:
                    response["push"] = await loop.run_in_executor(
                        self._pool(), pusher.push, sub, table, full_sync
                    )
                except Exception as exc:
                    response["push"] = {
                        "mode": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except (OSError, ConnectionError):
                pass  # client severed mid-response; nothing to do

    # -- dispatch ------------------------------------------------------
    async def _dispatch(self, line: bytes, pusher: SchedulePusher) -> dict:
        req_id = None
        try:
            message = json.loads(line.decode("utf-8"))
            if not isinstance(message, dict):
                raise ValueError("request must be a JSON object")
            req_id = message.get("id")
            op = message.get("op")
            if op == "stats":
                return {"ok": True, "id": req_id, "stats": await self._stats()}
            if op == "metrics":
                return {"ok": True, "id": req_id, **await self._metrics()}
            if op == "reprobe":
                return {
                    "ok": True,
                    "id": req_id,
                    "rejoined": await self.reprobe(),
                }
            if op == "invalidate":
                dropped = await self._broadcast_invalidate(message)
                return {"ok": True, "id": req_id, "dropped": dropped}
            if op not in (None, "solve", "solve_delta"):
                raise ValueError(f"unknown op {op!r}")
            return await self._route_solve(message, req_id)
        except Exception as exc:
            return {
                "ok": False,
                "id": req_id,
                "error": f"{type(exc).__name__}: {exc}",
            }

    async def _route_solve(self, message: dict, req_id) -> dict:
        sub = message.get("sub")
        if sub is not None and not isinstance(sub, str):
            raise ValueError("sub must be a string subscription key")
        digest = await self._route_digest(message)
        # The forwarded message drops router-local fields; a
        # subscription needs the schedule table from the shard even
        # when the client did not ask for it itself.
        forward = {
            k: v
            for k, v in message.items()
            if k not in ("id", "sub", "full_sync")
        }
        wants_table = bool(message.get("table"))
        if sub is not None:
            forward["table"] = True
        response = await self._forward(digest, forward)
        response["id"] = req_id
        if response.get("ok") and sub is not None:
            table = response.get("table")
            if table is None:
                raise RuntimeError(
                    "shard response missing the schedule table"
                )
            if not wants_table:
                response.pop("table", None)
                response.pop("table_digest", None)
            response["_push"] = (
                sub, table, bool(message.get("full_sync"))
            )
        return response

    async def _forward(self, digest: str, forward: dict) -> dict:
        """Send to the ring owner; on a dead shard, re-home and retry.

        Every retry re-consults the ring, so the request lands on the
        key's *new* owner -- the only shard whose assignment changed --
        and the response (cold solve or shared-disk hit) is
        bit-identical by the cache's verification contract.
        """
        while True:
            shard_id = self._ring.owner(digest)
            link = self._links[shard_id]
            try:
                response = await link.request(forward)
                self._routed += 1
                return response
            except ShardUnavailable:
                self._mark_dead(shard_id)

    def _mark_dead(self, shard_id: str) -> None:
        if shard_id not in self._dead:
            self._dead.add(shard_id)
            self._ring.remove(shard_id)
            self._reroutes += 1

    # -- health re-probing ---------------------------------------------
    async def reprobe(self) -> List[str]:
        """Try to re-admit every dead shard; returns the rejoined ids.

        For each shard marked dead, open a *fresh* link to its recorded
        address and probe it with ``{"op": "stats"}``.  A shard that
        answers (e.g. one restarted via :meth:`ShardCluster.restart`)
        replaces its dead link and rejoins the :class:`HashRing` -- its
        old keys re-home back to it, and with a shared disk tier they
        arrive warm.  A shard that stays unreachable stays dead; the
        probe is the only cost.  Counted in ``ring_rejoins`` (stats)
        and ``repro_router_ring_rejoins_total`` (metrics).
        """
        rejoined: List[str] = []
        for shard_id in sorted(self._dead):
            old = self._links[shard_id]
            link = _ShardLink(shard_id, old.host, old.port)
            try:
                response = await link.request({"op": "stats"})
            except ShardUnavailable:
                await link.close()
                continue
            if not response.get("ok"):
                await link.close()
                continue
            await old.close()
            self._links[shard_id] = link
            self._dead.discard(shard_id)
            self._ring.add(shard_id)
            self._rejoins += 1
            default_registry().counter(
                "repro_router_ring_rejoins_total"
            ).inc()
            rejoined.append(shard_id)
        return rejoined

    async def _reprobe_loop(self) -> None:
        """The optional periodic reprobe task (``reprobe_interval``)."""
        while True:
            await asyncio.sleep(self.reprobe_interval)
            try:
                await self.reprobe()
            except Exception:
                # A failed sweep must not kill the loop; the next tick
                # simply probes again.
                pass

    async def _route_digest(self, message: dict) -> str:
        """The solve-fingerprint digest that keys routing.

        Computed with the *same* request decoding the shards use
        (:meth:`AsyncSchedulingService._wire_request` +
        ``SolveRequest.fingerprint``), so router-side ownership and
        shard-side cache keys can never disagree.  Building the
        workload to fingerprint it is blocking work -- it runs on the
        router's small thread pool, memoized on the routing-relevant
        message fields for replayed traffic.
        """
        cache_key = json.dumps(
            {
                k: v
                for k, v in message.items()
                if k not in ("id", "sub", "full_sync", "table")
            },
            sort_keys=True,
        )
        cached = self._route_cache.get(cache_key)
        if cached is not None:
            self._route_cache.move_to_end(cache_key)
            self._route_hits += 1
            return cached
        loop = asyncio.get_running_loop()
        digest = await loop.run_in_executor(
            self._pool(),
            lambda: AsyncSchedulingService._wire_request(message)
            .fingerprint()
            .digest,
        )
        self._route_cache[cache_key] = digest
        while len(self._route_cache) > self._route_cache_size:
            self._route_cache.popitem(last=False)
        return digest

    def _pool(self) -> ThreadPoolExecutor:
        if self._fp_pool is None:
            self._fp_pool = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-router"
            )
        return self._fp_pool

    # -- fan-out ops ---------------------------------------------------
    def _live_links(self) -> List[_ShardLink]:
        return [
            self._links[sid]
            for sid in self._ring.shard_ids
            if sid not in self._dead
        ]

    async def _broadcast_invalidate(self, message: dict) -> int:
        if "epoch_below" not in message:
            raise ValueError("invalidate requires an epoch_below field")
        forward = {
            "op": "invalidate",
            "epoch_below": int(message["epoch_below"]),
        }
        dropped = 0
        for link in self._live_links():
            try:
                response = await link.request(forward)
            except ShardUnavailable:
                self._mark_dead(link.shard_id)
                continue
            if not response.get("ok"):
                raise RuntimeError(
                    f"shard {link.shard_id} invalidate failed: "
                    f"{response.get('error')}"
                )
            dropped += int(response.get("dropped", 0))
        return dropped

    async def _stats(self) -> dict:
        shards = []
        aggregate: dict = {}
        for link in self._live_links():
            try:
                response = await link.request({"op": "stats"})
            except ShardUnavailable:
                self._mark_dead(link.shard_id)
                continue
            stats = response.get("stats") or {}
            shards.append({"shard": link.shard_id, **stats})
            _merge_numeric(aggregate, stats)
        egress: dict = {}
        for pusher in self._pushers:
            _merge_numeric(egress, pusher.stats_snapshot())
        return jsonable(
            {
                "router": {
                    "shards_live": len(self._ring),
                    "shards_dead": sorted(self._dead),
                    "routed": self._routed,
                    "route_cache_hits": self._route_hits,
                    "reroutes": self._reroutes,
                    "ring_rejoins": self._rejoins,
                    "connections": len(self._writers),
                    "egress": egress,
                },
                "shards": shards,
                "aggregate": aggregate,
            }
        )

    async def _metrics(self) -> dict:
        """The cluster-wide ``metrics`` op: fan out, merge bucket-wise.

        Each live shard answers its own ``{"op": "metrics"}``; the
        per-shard snapshots merge by counter addition and **bucket-wise
        histogram addition** (exact, because every histogram shares the
        fixed :data:`~repro.obs.LATENCY_BUCKETS` bounds) into one
        cluster view, which also renders as Prometheus text.  The
        per-shard breakdown rides alongside, so a latency regression is
        attributable to the shard that caused it.
        """
        shards = []
        snapshots = []
        for link in self._live_links():
            try:
                response = await link.request({"op": "metrics"})
            except ShardUnavailable:
                self._mark_dead(link.shard_id)
                continue
            if not response.get("ok"):
                raise RuntimeError(
                    f"shard {link.shard_id} metrics failed: "
                    f"{response.get('error')}"
                )
            snap = response.get("metrics") or {}
            snapshots.append(snap)
            shards.append(
                {
                    "shard": link.shard_id,
                    "metrics": snap,
                    "slo": response.get("slo"),
                }
            )
        cluster = merge_snapshots(snapshots)
        return {
            "cluster": cluster,
            "shards": shards,
            "router": jsonable(
                {
                    "shards_live": len(self._ring),
                    "shards_dead": sorted(self._dead),
                    "reroutes": self._reroutes,
                    "ring_rejoins": self._rejoins,
                }
            ),
            "text": render_prometheus(cluster),
        }
