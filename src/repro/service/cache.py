"""Two-tier, fingerprint-keyed result cache for the scheduling service.

Tier 1 is a bounded in-memory LRU (an ``OrderedDict`` in recency
order); tier 2 is an optional on-disk pickle directory that survives
process restarts and also acts as the overflow space for in-memory
evictions.  Both tiers are keyed by the full hex digest of a
:class:`~repro.service.fingerprint.Fingerprint`.

Entries are *verified*: when a value is admitted, its semantic digest
(:meth:`TwoPhaseResult.semantic_digest`, folded over the wide/narrow
parts of composite reports) is recorded next to it, and a disk entry
is re-checked against that digest after unpickling.  A mismatch --
bit rot, a partial write, a stale file from an incompatible version --
counts as a ``verify_failure``: the file is deleted and the lookup
degrades to a miss (or raises :class:`CacheIntegrityError`, naming the
offending fingerprint, under ``strict=True``).  A wrong cached answer
is the one failure mode a result cache must never have.

Entries can also *age out*: a cache constructed with ``ttl=`` (or a
``put``/``make_entry`` given a per-entry override) stamps each entry
with an absolute ``expires_at`` deadline on the cache's injectable
monotonic clock, and an expired entry is never served from either tier
-- a memory hit past its deadline is dropped, a disk hit past its
deadline is unlinked, both counting an ``expiration``.  For serving
problems whose ground truth mutates in bulk (link capacities re-planned
for the next epoch), entries carry an integer ``epoch`` tag and
:meth:`ResultCache.invalidate` can drop everything below the current
capacity epoch -- or one fingerprint, or an arbitrary predicate --
from both tiers without flushing unrelated warm entries.

The default clock is :func:`time.monotonic` (on Linux, seconds since
boot, so disk-tier deadlines stay meaningful across restarts within
one boot); pass ``clock=`` to pin time in tests.  Deadlines written by
a previous boot are best-effort -- the capacity-epoch tag, which is
part of the *fingerprint* for service traffic, is the durable
invalidation mechanism.

Statistics (:class:`CacheStats`) count hits per tier, misses, stores,
evictions, expirations, invalidations and verification failures; the
service and benches E18/E19 report them directly.
"""
from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional, Union

from repro.algorithms.base import AlgorithmReport
from repro.core.canonical import stable_digest
from repro.service.fingerprint import Fingerprint

__all__ = [
    "CacheEntry",
    "CacheIntegrityError",
    "CacheStats",
    "ResultCache",
    "report_semantic_digest",
]


class CacheIntegrityError(RuntimeError):
    """A cached entry failed its semantic-digest verification.

    The message always names the offending fingerprint, so a failed
    entry is attributable even when the lookup happened deep inside a
    coalesced batch.
    """


def report_semantic_form(report: AlgorithmReport):
    """An :class:`AlgorithmReport` as a digestible nested tuple.

    Folds the guarantee, the certified bound, the *served solution*
    (selected instance ids and their profits -- composite reports
    carry a merged solution with ``result=None`` on top, so the
    underlying semantic tuples alone would not cover it), the
    underlying :meth:`~repro.core.result.TwoPhaseResult.semantic_tuple`
    and -- recursively -- the wide/narrow parts of composite
    algorithms, so one digest covers everything the service hands out.
    """
    return (
        report.name,
        float(report.guarantee),
        float(report.certified_upper_bound),
        tuple(
            (d.instance_id, float(d.profit))
            for d in report.solution.selected
        ),
        None if report.result is None else report.result.semantic_tuple(),
        tuple(
            sorted(
                (name, report_semantic_form(part))
                for name, part in report.parts.items()
            )
        ),
    )


def report_semantic_digest(report: AlgorithmReport) -> str:
    """Stable hex digest of :func:`report_semantic_form`."""
    return stable_digest(report_semantic_form(report))


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting across both tiers."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    verify_failures: int = 0
    #: Persist attempts that errored (disk full, permissions); the
    #: entry stays served from memory, so this is degradation, not
    #: failure.
    disk_write_failures: int = 0
    #: Lookups that found an entry past its TTL deadline (either tier);
    #: the entry is dropped and the lookup proceeds as a miss.
    expirations: int = 0
    #: Entries dropped by an explicit :meth:`ResultCache.invalidate`
    #: call (per entry per tier, so one fingerprint present in both
    #: tiers counts twice).
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from either tier (0 when idle)."""
        if not self.lookups:
            return 0.0
        return (self.hits + self.disk_hits) / self.lookups

    def snapshot(self) -> dict:
        """A plain-dict copy (for findings JSON and service stats)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "verify_failures": self.verify_failures,
            "disk_write_failures": self.disk_write_failures,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_ratio": self.hit_ratio,
        }


#: Sentinel distinguishing "use the cache-wide TTL" from an explicit
#: per-entry ``ttl=None`` ("this entry never expires").
_UNSET_TTL = object()


@dataclass
class CacheEntry:
    """One admitted value plus its verification digest.

    ``expires_at`` is an absolute deadline on the owning cache's clock
    (``None`` = never expires); ``epoch`` is the capacity-epoch tag the
    entry was solved under, the handle for bulk invalidation.
    """

    fingerprint: str
    digest: str
    value: object = field(repr=False)
    expires_at: Optional[float] = None
    epoch: int = 0
    #: Opaque warm-start payload (the delta path's solve journal),
    #: stored only under ``keep_artifacts=True`` and only in the memory
    #: tier -- :meth:`ResultCache.write_disk` strips it, so the disk
    #: pickle never re-serializes first-phase internals and an entry
    #: reloaded from disk simply has no warm-start to offer.
    artifacts: object = field(default=None, repr=False, compare=False)


class ResultCache:
    """Bounded LRU over verified entries, with an optional disk tier.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; the least recently used entry is
        evicted first.  Evicted entries survive on disk when a disk
        tier is configured (a later ``get`` re-admits them).
    disk_dir:
        Directory for the pickle tier; created on demand.  ``None``
        disables tier 2.
    digest_fn:
        Maps a value to its verification digest.  The default digests
        :class:`AlgorithmReport` semantic forms; pass a custom callable
        to cache other payloads.
    strict:
        When true, a disk entry failing verification raises
        :class:`CacheIntegrityError` instead of degrading to a miss.
    ttl:
        Default time-to-live in seconds applied to admitted entries
        (``None`` = entries never expire).  Per-entry overrides go
        through ``put``/``make_entry``.
    clock:
        The monotonic clock TTL deadlines are stamped and checked
        against.  Injectable so tests can advance time explicitly.
    keep_artifacts:
        Opt-in: retain warm-start artifacts handed to ``put``/
        ``make_entry`` on the in-memory entry.  Off by default so
        ordinary serving never pays the memory (artifacts can dwarf the
        report) -- and artifacts never reach the disk tier either way.
    """

    def __init__(
        self,
        capacity: int = 128,
        disk_dir: Optional[str] = None,
        digest_fn: Callable[[object], str] = report_semantic_digest,
        strict: bool = False,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        keep_artifacts: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be positive or None, got {ttl}")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.digest_fn = digest_fn
        self.strict = strict
        self.ttl = ttl
        self.clock = clock
        self.keep_artifacts = keep_artifacts
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self._entries

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------
    # ``get``/``put`` are the plain single-threaded API.  The granular
    # methods below them exist for the service, which digests values
    # and touches the disk *outside* its lock (both are the expensive
    # steps) and takes the lock only around the memory-tier mutations
    # (``get_memory``/``admit``) and stats.

    def get(self, fingerprint: Fingerprint):
        """The cached value for *fingerprint*, or ``None`` on a miss.

        A memory hit refreshes recency; a disk hit re-admits the entry
        into memory (evicting as needed) after verifying its digest.
        """
        value = self.get_memory(fingerprint)
        if value is not None:
            return value
        entry = self.load_disk(fingerprint)
        if entry is not None:
            self.stats.disk_hits += 1
            self.admit(entry)
            return entry.value
        self.stats.misses += 1
        return None

    def put(
        self,
        fingerprint: Fingerprint,
        value,
        ttl: Union[None, float, object] = _UNSET_TTL,
        epoch: int = 0,
        artifacts: object = None,
    ) -> None:
        """Admit *value* under *fingerprint* into both tiers."""
        entry = self.make_entry(
            fingerprint, value, ttl=ttl, epoch=epoch, artifacts=artifacts
        )
        self.stats.stores += 1
        self.admit(entry)
        if self.disk_dir is not None:
            self.write_disk(entry)

    def get_memory(self, fingerprint: Fingerprint):
        """Tier-1 probe only: value or ``None``, refreshing recency.

        An entry past its TTL deadline is dropped here, not served --
        the caller proceeds exactly as on a cold miss (disk probe, then
        solve; the disk copy carries the same deadline and expires the
        same way).
        """
        entry = self._entries.get(fingerprint.digest)
        if entry is None:
            return None
        if self._expired(entry):
            del self._entries[fingerprint.digest]
            self.stats.expirations += 1
            return None
        self._entries.move_to_end(fingerprint.digest)
        self.stats.hits += 1
        return entry.value

    def make_entry(
        self,
        fingerprint: Fingerprint,
        value,
        ttl: Union[None, float, object] = _UNSET_TTL,
        epoch: int = 0,
        artifacts: object = None,
    ) -> CacheEntry:
        """Build a verified entry (runs the digest; no cache mutation).

        *ttl* defaults to the cache-wide setting; pass ``None``
        explicitly for a never-expiring entry, or a float override.
        *artifacts* is dropped unless the cache opted into
        ``keep_artifacts`` -- the digest never covers it, it is a
        warm-start accelerant, not part of the cached answer.
        """
        if ttl is _UNSET_TTL:
            ttl = self.ttl
        expires_at = None if ttl is None else self.clock() + float(ttl)
        return CacheEntry(
            fingerprint=fingerprint.digest,
            digest=self.digest_fn(value),
            value=value,
            expires_at=expires_at,
            epoch=epoch,
            artifacts=artifacts if self.keep_artifacts else None,
        )

    def peek_entry(self, fingerprint: Fingerprint) -> Optional[CacheEntry]:
        """Memory-tier read with *no* side effects: no recency bump, no
        stats, no expiry eviction.  For callers that want an entry's
        metadata (the admission digest, the epoch tag) without acting
        as a lookup -- the async front door reuses the recorded digest
        instead of re-digesting reports per response."""
        return self._entries.get(fingerprint.digest)

    def peek_fresh(self, fingerprint: Fingerprint) -> Optional[CacheEntry]:
        """Like :meth:`peek_entry`, but ``None`` for an expired entry.

        Still side-effect free (the expired entry is left for the next
        real lookup to evict and count); the delta path uses this to
        screen warm-start ancestors without perturbing LRU order or
        hit/expiration accounting.
        """
        entry = self._entries.get(fingerprint.digest)
        if entry is None or self._expired(entry):
            return None
        return entry

    def _expired(self, entry: CacheEntry) -> bool:
        # ``getattr``: entries pickled by a pre-TTL cache restore
        # without the new fields; they count as never-expiring.
        deadline = getattr(entry, "expires_at", None)
        return deadline is not None and self.clock() >= deadline

    def admit(self, entry: CacheEntry) -> None:
        """Insert *entry* into the memory tier, evicting LRU overflow."""
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    # ``invalidate`` is the plain single-threaded API; the per-tier
    # methods exist for the service, which drops the memory tier under
    # its lock and sweeps the disk directory (unpickling every file --
    # the expensive part) outside it, mirroring the get/admit split.

    def invalidate(
        self,
        fingerprint: Optional[Fingerprint] = None,
        predicate: Optional[Callable[[CacheEntry], bool]] = None,
        epoch_below: Optional[int] = None,
    ) -> int:
        """Drop matching entries from *both* tiers; returns the count.

        Exactly one selector: a single *fingerprint*, an arbitrary
        *predicate* over :class:`CacheEntry`, or ``epoch_below=n`` --
        the mutable-capacity bulk form, dropping every entry whose
        capacity-epoch tag is ``< n`` while current-epoch entries stay
        warm.  An entry with *no* epoch tag at all (pickled by a
        pre-epoch version of this cache) counts as generation 0 and is
        therefore swept by any ``epoch_below >= 1`` -- deliberately:
        an entry of unknown generation must not outlive a bulk
        invalidation that was issued precisely because old generations
        are no longer trustworthy.  (``epoch_below=0`` drops nothing,
        on any entry: no generation is below zero.)  Predicate and epoch
        selectors scan the disk directory, unpickling each file; the
        single-fingerprint form unlinks its file directly.  Unreadable
        disk files are left alone -- a later lookup degrades them to a
        verified miss through the normal :meth:`load_disk` path.
        """
        return self.invalidate_memory(
            fingerprint, predicate, epoch_below
        ) + self.invalidate_disk(fingerprint, predicate, epoch_below)

    @staticmethod
    def _invalidation_predicate(
        fingerprint: Optional[Fingerprint],
        predicate: Optional[Callable[[CacheEntry], bool]],
        epoch_below: Optional[int],
    ) -> Callable[[CacheEntry], bool]:
        """The one-selector rule, normalized to an entry predicate."""
        selectors = [
            s for s in (fingerprint, predicate, epoch_below) if s is not None
        ]
        if len(selectors) != 1:
            raise ValueError(
                "pass exactly one of fingerprint=, predicate=, epoch_below="
            )
        if fingerprint is not None:
            return lambda entry: entry.fingerprint == fingerprint.digest
        if epoch_below is not None:
            # ``getattr`` default 0: an epoch-less entry (pre-epoch
            # pickle) is generation 0 by definition, so every
            # ``epoch_below >= 1`` sweep drops it -- the conservative
            # reading, pinned by tests/test_cache_ttl.py.
            return lambda entry: getattr(entry, "epoch", 0) < epoch_below
        return predicate

    def invalidate_memory(
        self,
        fingerprint: Optional[Fingerprint] = None,
        predicate: Optional[Callable[[CacheEntry], bool]] = None,
        epoch_below: Optional[int] = None,
    ) -> int:
        """Tier-1 drop only (the part the service holds its lock for)."""
        match = self._invalidation_predicate(fingerprint, predicate, epoch_below)
        doomed = [d for d, e in self._entries.items() if match(e)]
        for digest in doomed:
            del self._entries[digest]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def invalidate_disk(
        self,
        fingerprint: Optional[Fingerprint] = None,
        predicate: Optional[Callable[[CacheEntry], bool]] = None,
        epoch_below: Optional[int] = None,
    ) -> int:
        """Tier-2 drop only; safe to run outside the caller's lock."""
        match = self._invalidation_predicate(fingerprint, predicate, epoch_below)
        if self.disk_dir is None:
            return 0
        dropped = 0
        if fingerprint is not None:
            try:
                self._path(fingerprint.digest).unlink()
                dropped = 1
            except OSError:
                pass
        elif self.disk_dir.is_dir():
            for path in sorted(self.disk_dir.glob("*.pkl")):
                try:
                    with path.open("rb") as fh:
                        entry = pickle.load(fh)
                    if not isinstance(entry, CacheEntry) or not match(entry):
                        continue
                    path.unlink()
                except Exception:
                    continue
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self.disk_dir / f"{digest}.pkl"

    def write_disk(self, entry: CacheEntry) -> bool:
        """Persist *entry* to the disk tier; True iff it was written.

        Best-effort by design: persistence failing (disk full,
        permissions, unpicklable payload) must never fail the request
        whose solve already succeeded, so errors are swallowed into
        ``stats.disk_write_failures`` -- the entry stays served from
        memory -- mirroring how a corrupt *read* degrades to a miss.
        No-op (False) without a disk tier.
        """
        if self.disk_dir is None:
            return False
        if getattr(entry, "artifacts", None) is not None:
            # Warm-start artifacts are a memory-tier accelerant only:
            # pickling a whole first-phase journal per store is exactly
            # the cost keep_artifacts= exists to avoid.
            entry = replace(entry, artifacts=None)
        tmp: Optional[Path] = None
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(entry.fingerprint)
            # Write-then-rename so a crashed writer leaves no half-file
            # that a later lookup could mistake for an entry.  The temp
            # name is pid/thread-unique: a *fixed* suffix would let two
            # concurrent writers of the same fingerprint interleave
            # writes into one temp file and rename the garble into
            # place -- each writer must rename only a file it wrote
            # whole (last rename wins, both renames are complete
            # entries).
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            with tmp.open("wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except Exception:
            self.stats.disk_write_failures += 1
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass
            return False
        return True

    def load_disk(self, fingerprint: Fingerprint) -> Optional[CacheEntry]:
        """Tier-2 probe: the verified entry, or ``None``.

        Reads, unpickles and digest-verifies without touching the
        memory tier, so callers may run it outside their locks; a
        failed verification deletes the file and counts a
        ``verify_failure`` (raising under ``strict=True``).
        """
        if self.disk_dir is None:
            return None
        path = self._path(fingerprint.digest)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            if not isinstance(entry, CacheEntry):
                raise TypeError(f"expected CacheEntry, got {type(entry).__name__}")
            recomputed = self.digest_fn(entry.value)
        except Exception as exc:
            return self._reject_disk(
                path, fingerprint,
                f"unreadable cache entry ({type(exc).__name__}: {exc})", exc,
            )
        if entry.fingerprint != fingerprint.digest or entry.digest != recomputed:
            return self._reject_disk(
                path, fingerprint,
                "semantic digest mismatch (stale or corrupted entry)", None,
            )
        if self._expired(entry):
            # Ordinary aging, not corruption: unlink and miss without
            # raising even under strict=True.
            self.stats.expirations += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return entry

    def _reject_disk(
        self, path: Path, fingerprint: Fingerprint, why: str, cause
    ) -> None:
        self.stats.verify_failures += 1
        try:
            path.unlink()
        except OSError:
            pass
        if self.strict:
            raise CacheIntegrityError(
                f"disk cache entry for fingerprint {fingerprint.short} "
                f"failed verification: {why}"
            ) from cause
        return None
