"""Two-tier, fingerprint-keyed result cache for the scheduling service.

Tier 1 is a bounded in-memory LRU (an ``OrderedDict`` in recency
order); tier 2 is an optional on-disk pickle directory that survives
process restarts and also acts as the overflow space for in-memory
evictions.  Both tiers are keyed by the full hex digest of a
:class:`~repro.service.fingerprint.Fingerprint`.

Entries are *verified*: when a value is admitted, its semantic digest
(:meth:`TwoPhaseResult.semantic_digest`, folded over the wide/narrow
parts of composite reports) is recorded next to it, and a disk entry
is re-checked against that digest after unpickling.  A mismatch --
bit rot, a partial write, a stale file from an incompatible version --
counts as a ``verify_failure``: the file is deleted and the lookup
degrades to a miss (or raises :class:`CacheIntegrityError`, naming the
offending fingerprint, under ``strict=True``).  A wrong cached answer
is the one failure mode a result cache must never have.

Statistics (:class:`CacheStats`) count hits per tier, misses, stores,
evictions and verification failures; the service and bench E18 report
them directly.
"""
from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.algorithms.base import AlgorithmReport
from repro.core.canonical import stable_digest
from repro.service.fingerprint import Fingerprint

__all__ = [
    "CacheEntry",
    "CacheIntegrityError",
    "CacheStats",
    "ResultCache",
    "report_semantic_digest",
]


class CacheIntegrityError(RuntimeError):
    """A cached entry failed its semantic-digest verification.

    The message always names the offending fingerprint, so a failed
    entry is attributable even when the lookup happened deep inside a
    coalesced batch.
    """


def report_semantic_form(report: AlgorithmReport):
    """An :class:`AlgorithmReport` as a digestible nested tuple.

    Folds the guarantee, the certified bound, the *served solution*
    (selected instance ids and their profits -- composite reports
    carry a merged solution with ``result=None`` on top, so the
    underlying semantic tuples alone would not cover it), the
    underlying :meth:`~repro.core.result.TwoPhaseResult.semantic_tuple`
    and -- recursively -- the wide/narrow parts of composite
    algorithms, so one digest covers everything the service hands out.
    """
    return (
        report.name,
        float(report.guarantee),
        float(report.certified_upper_bound),
        tuple(
            (d.instance_id, float(d.profit))
            for d in report.solution.selected
        ),
        None if report.result is None else report.result.semantic_tuple(),
        tuple(
            sorted(
                (name, report_semantic_form(part))
                for name, part in report.parts.items()
            )
        ),
    )


def report_semantic_digest(report: AlgorithmReport) -> str:
    """Stable hex digest of :func:`report_semantic_form`."""
    return stable_digest(report_semantic_form(report))


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting across both tiers."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    verify_failures: int = 0
    #: Persist attempts that errored (disk full, permissions); the
    #: entry stays served from memory, so this is degradation, not
    #: failure.
    disk_write_failures: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from either tier (0 when idle)."""
        if not self.lookups:
            return 0.0
        return (self.hits + self.disk_hits) / self.lookups

    def snapshot(self) -> dict:
        """A plain-dict copy (for findings JSON and service stats)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "verify_failures": self.verify_failures,
            "disk_write_failures": self.disk_write_failures,
            "hit_ratio": self.hit_ratio,
        }


@dataclass
class CacheEntry:
    """One admitted value plus its verification digest."""

    fingerprint: str
    digest: str
    value: object = field(repr=False)


class ResultCache:
    """Bounded LRU over verified entries, with an optional disk tier.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; the least recently used entry is
        evicted first.  Evicted entries survive on disk when a disk
        tier is configured (a later ``get`` re-admits them).
    disk_dir:
        Directory for the pickle tier; created on demand.  ``None``
        disables tier 2.
    digest_fn:
        Maps a value to its verification digest.  The default digests
        :class:`AlgorithmReport` semantic forms; pass a custom callable
        to cache other payloads.
    strict:
        When true, a disk entry failing verification raises
        :class:`CacheIntegrityError` instead of degrading to a miss.
    """

    def __init__(
        self,
        capacity: int = 128,
        disk_dir: Optional[str] = None,
        digest_fn: Callable[[object], str] = report_semantic_digest,
        strict: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.digest_fn = digest_fn
        self.strict = strict
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self._entries

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------
    # ``get``/``put`` are the plain single-threaded API.  The granular
    # methods below them exist for the service, which digests values
    # and touches the disk *outside* its lock (both are the expensive
    # steps) and takes the lock only around the memory-tier mutations
    # (``get_memory``/``admit``) and stats.

    def get(self, fingerprint: Fingerprint):
        """The cached value for *fingerprint*, or ``None`` on a miss.

        A memory hit refreshes recency; a disk hit re-admits the entry
        into memory (evicting as needed) after verifying its digest.
        """
        value = self.get_memory(fingerprint)
        if value is not None:
            return value
        entry = self.load_disk(fingerprint)
        if entry is not None:
            self.stats.disk_hits += 1
            self.admit(entry)
            return entry.value
        self.stats.misses += 1
        return None

    def put(self, fingerprint: Fingerprint, value) -> None:
        """Admit *value* under *fingerprint* into both tiers."""
        entry = self.make_entry(fingerprint, value)
        self.stats.stores += 1
        self.admit(entry)
        if self.disk_dir is not None:
            self.write_disk(entry)

    def get_memory(self, fingerprint: Fingerprint):
        """Tier-1 probe only: value or ``None``, refreshing recency."""
        entry = self._entries.get(fingerprint.digest)
        if entry is None:
            return None
        self._entries.move_to_end(fingerprint.digest)
        self.stats.hits += 1
        return entry.value

    def make_entry(self, fingerprint: Fingerprint, value) -> CacheEntry:
        """Build a verified entry (runs the digest; no cache mutation)."""
        return CacheEntry(
            fingerprint=fingerprint.digest,
            digest=self.digest_fn(value),
            value=value,
        )

    def admit(self, entry: CacheEntry) -> None:
        """Insert *entry* into the memory tier, evicting LRU overflow."""
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self.disk_dir / f"{digest}.pkl"

    def write_disk(self, entry: CacheEntry) -> bool:
        """Persist *entry* to the disk tier; True iff it was written.

        Best-effort by design: persistence failing (disk full,
        permissions, unpicklable payload) must never fail the request
        whose solve already succeeded, so errors are swallowed into
        ``stats.disk_write_failures`` -- the entry stays served from
        memory -- mirroring how a corrupt *read* degrades to a miss.
        No-op (False) without a disk tier.
        """
        if self.disk_dir is None:
            return False
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(entry.fingerprint)
            # Write-then-rename so a crashed writer leaves no half-file
            # that a later lookup could mistake for an entry.
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except Exception:
            self.stats.disk_write_failures += 1
            return False
        return True

    def load_disk(self, fingerprint: Fingerprint) -> Optional[CacheEntry]:
        """Tier-2 probe: the verified entry, or ``None``.

        Reads, unpickles and digest-verifies without touching the
        memory tier, so callers may run it outside their locks; a
        failed verification deletes the file and counts a
        ``verify_failure`` (raising under ``strict=True``).
        """
        if self.disk_dir is None:
            return None
        path = self._path(fingerprint.digest)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            if not isinstance(entry, CacheEntry):
                raise TypeError(f"expected CacheEntry, got {type(entry).__name__}")
            recomputed = self.digest_fn(entry.value)
        except Exception as exc:
            return self._reject_disk(
                path, fingerprint,
                f"unreadable cache entry ({type(exc).__name__}: {exc})", exc,
            )
        if entry.fingerprint != fingerprint.digest or entry.digest != recomputed:
            return self._reject_disk(
                path, fingerprint,
                "semantic digest mismatch (stale or corrupted entry)", None,
            )
        return entry

    def _reject_disk(
        self, path: Path, fingerprint: Fingerprint, why: str, cause
    ) -> None:
        self.stats.verify_failures += 1
        try:
            path.unlink()
        except OSError:
            pass
        if self.strict:
            raise CacheIntegrityError(
                f"disk cache entry for fingerprint {fingerprint.short} "
                f"failed verification: {why}"
            ) from cause
        return None
