"""The asyncio front door of the scheduling service.

:class:`AsyncSchedulingService` wraps the synchronous, thread-pooled
:class:`~repro.service.server.SchedulingService` behind ``asyncio`` so
the serving path can sit inside a real RPC process: ``await
front.solve(request)``, batches via :meth:`solve_batch`
(``asyncio.gather`` underneath), and a minimal newline-delimited
JSON-over-TCP endpoint (:meth:`serve`, built on
``asyncio.start_server``) for clients that are not even Python.

The event loop never runs solver code.  A request's blocking *front
half* -- validation, fingerprinting, the memory probe, dispatch -- runs
on a small admission pool owned by the front door (deliberately not
the service pool: solves occupy that one for seconds at a time, and a
memory hit must never queue behind them), while the solve itself runs
where it always has, on the warm service pool inside
:meth:`SchedulingService.submit`; the coroutine side only awaits the
resulting futures (``asyncio.wrap_future`` bridges them back into the
loop).  Caching and coalescing therefore behave exactly as in the
synchronous service: the front door is a veneer, not a second serving
path, and the results it hands out are the same shared objects.

**Backpressure.**  Serving millions of users means the front door, not
the solver, sees the arrival process (cf. the queueing-network
scheduling regime of Shah--Shin, arXiv:0908.3670): admission must be
bounded or a burst turns into an unbounded pile of in-flight work.  A
semaphore caps concurrently *admitted* requests at ``max_inflight``;
arrivals beyond the cap queue on the semaphore, and
:attr:`stats` exposes live queue depth, live in-flight count and their
high-water marks so an operator can see saturation directly.

**Drain.**  :meth:`drain` stops the TCP listener, lets every admitted
and queued request resolve, answers late arrivals with a rejection, and
closes the remaining connections; :meth:`aclose` (also the ``async
with`` exit) drains and then tears down the process-wide executor
pools via :func:`~repro.core.engines.backends.shutdown_pools`, so a
cleanly closed front door leaves zero live worker threads or
processes.

**Delta requests.**  :meth:`solve_delta` is the awaitable face of
:meth:`SchedulingService.solve_delta` -- answer a perturbed problem by
warm-starting from a cached ancestor's journal.  With
``delta_debounce > 0`` the front door additionally coalesces *change
storms*: rapid-fire delta submissions whose problems share a
:func:`~repro.service.delta.delta_key` collapse into one solve of the
latest snapshot after the quiet period
(:class:`~repro.service.delta.ChangeDebouncer`); earlier waiters get
the result flagged ``superseded``.  :meth:`drain` force-flushes
pending storms, so no waiter is stranded by shutdown.

Wire protocol (one JSON object per line, responses tagged with the
request's optional ``id``)::

    -> {"workload": "diurnal-cycle", "size": 64, "seed": 1,
        "knobs": {"mis": "greedy", "epsilon": 0.25}, "id": 7}
    <- {"ok": true, "id": 7, "label": "diurnal-cycle@64#1",
        "status": "miss", "profit": ..., "fingerprint": ...,
        "semantic_digest": ..., "latency_s": ...}
    -> {"op": "solve_delta", "workload": "diurnal-cycle", "size": 64,
        "seed": 1, "knobs": {...}, "id": 8}
    <- {"ok": true, "id": 8, "status": "delta",
        "delta": {"outcome": "warm", ...}, "superseded": false, ...}
    -> {"op": "stats"}
    <- {"ok": true, "stats": {...}}
    -> {"op": "metrics"}
    <- {"ok": true, "metrics": {"counters": ..., "gauges": ...,
        "histograms": ...}, "slo": {...}, "text": "# TYPE ..."}
    -> {"op": "invalidate", "epoch_below": 3, "id": 9}
    <- {"ok": true, "id": 9, "dropped": 17}

The ``metrics`` op is the structured telemetry face (see
:mod:`repro.obs`): a mergeable registry snapshot, the SLO attainment
report when the wrapped service configured one, and the same snapshot
rendered as Prometheus text exposition (``text``).  It answers even on
a telemetry-disabled service -- then it carries just the always-on
executor/pool series from the process-default registry.  ``stats``
is unchanged for compatibility.

Three optional request fields extend the solve ops without changing
the line discipline.  ``"trajectory": name`` (with ``"step": k``)
requests snapshot *k* of a registered churn trajectory instead of a
registry workload -- the wire face of the delta-solve path.
``"table": true`` adds the served *schedule table* (one
``[instance_id, demand_id, network_id, profit, height]`` cell per
selected instance, plus its digest) to the response.  ``"sub": key``
subscribes this connection to delta-push egress under *key*: the
response carries a ``"push"`` payload that is a full table on first
contact (or with ``"full_sync": true``) and only the
:class:`~repro.service.diff.ScheduleDelta` add/remove cells afterwards
-- O(changed cells) on the wire, digest-verified on both ends (see
:mod:`repro.service.diff`).

``semantic_digest`` is the served report's
:func:`~repro.service.cache.report_semantic_digest`, so a remote
client can verify bit-identity with a local
:func:`~repro.algorithms.auto.solve_auto` without unpickling anything.
Responses to pipelined requests may arrive out of order -- that is what
``id`` is for.  Errors come back as ``{"ok": false, "id": ...,
"error": "..."}`` on the same line discipline; a malformed line never
kills the connection.
"""
from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Set, Tuple

try:  # numpy is a core dependency, but jsonable() must not require it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.engines.backends import shutdown_pools
from repro.core.problem import Problem
from repro.obs import render_prometheus
from repro.service.cache import report_semantic_digest
from repro.service.delta import ChangeDebouncer, delta_key
from repro.service.diff import SchedulePusher, schedule_table, table_digest
from repro.service.fingerprint import SolveKnobs
from repro.service.server import (
    SchedulingService,
    ServiceError,
    ServiceResult,
    SolveRequest,
)
from repro.workloads.trajectories import build_trajectory

__all__ = ["AsyncSchedulingService", "jsonable"]

#: Per-line buffer limit of the TCP endpoint (asyncio's default 64 KiB
#: is small for a request carrying a large knobs object).
WIRE_LINE_LIMIT = 1 << 20


def jsonable(value):
    """*value* coerced into strictly JSON-serializable form.

    The stats surface aggregates counters from every layer of the
    service, and two classes of values used to repr-degrade when they
    deserve numbers: **numpy scalars** (the columnar engine's counters
    leak ``np.int64``, which unlike ``np.float64`` is *not* an ``int``
    subclass on 64-bit Linux) and **dataclasses** (e.g. a
    :class:`~repro.service.delta.DeltaStats` riding a stats payload).
    Numpy scalars now unwrap via ``.item()`` and dataclass instances
    encode as field dicts, recursively.  Everything still degrades
    gracefully: an unknown type becomes its ``repr`` -- one weird value
    must never turn the whole ``{"op": "stats"}`` wire op into
    ``ok:false``.  Dicts and sequences recurse; non-string dict keys
    (tuples, which ``json.dumps`` rejects) become strings.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if _np is not None and isinstance(value, _np.generic):
        # Covers np.bool_/np.integer/np.floating alike; .item() yields
        # the exact python scalar.  Must precede the int/float check:
        # np.float64 would pass through it, np.int64 would not.
        return value.item()
    if isinstance(value, (int, float)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            k if isinstance(k, str) else repr(k): jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return repr(value)


class AsyncSchedulingService:
    """An asyncio veneer over :class:`SchedulingService` with admission
    control, a JSON-over-TCP endpoint and graceful drain.

    Parameters
    ----------
    service:
        An existing synchronous service to front; mutually exclusive
        with *service_kwargs*, which construct a fresh one
        (``capacity=``, ``disk_dir=``, ``ttl=`` ... -- everything
        :class:`SchedulingService` takes).
    max_inflight:
        How many requests may be admitted (dispatched to the service)
        at once; arrivals beyond it wait their turn on the semaphore.
    delta_debounce:
        Quiet period, in seconds, for coalescing delta change storms
        (see the module docstring).  ``0`` (the default) disables
        debouncing: every :meth:`solve_delta` dispatches immediately.
    """

    def __init__(
        self,
        service: Optional[SchedulingService] = None,
        *,
        max_inflight: int = 32,
        delta_debounce: float = 0.0,
        **service_kwargs,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError("pass service= or service kwargs, not both")
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if delta_debounce < 0:
            raise ValueError(
                f"delta_debounce must be >= 0, got {delta_debounce}"
            )
        self.service = (
            service if service is not None else SchedulingService(**service_kwargs)
        )
        self.max_inflight = max_inflight
        self.delta_debounce = delta_debounce
        # The debounced solve path bypasses the draining check (the
        # drain itself flushes the debouncer, and those coalesced
        # requests were accepted before it began).
        self._debouncer: Optional[ChangeDebouncer] = (
            ChangeDebouncer(delta_debounce, self._debounced_solve)
            if delta_debounce > 0
            else None
        )
        self._sem = asyncio.Semaphore(max_inflight)
        # The admission pool runs the blocking *front half* of a
        # request -- validate + fingerprint + memory probe + dispatch
        # -- and response digest lookups.  Deliberately NOT the shared
        # service pool: solves occupy that pool's threads for their
        # whole duration, and admission queued behind them would make
        # even a sub-millisecond memory hit wait out a cold solve
        # (head-of-line blocking).  Owned by this front door and joined
        # on drain.
        self._admission_pool: Optional[ThreadPoolExecutor] = None
        self._closing = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._request_tasks: Set[asyncio.Task] = set()
        # Admission-control accounting: queued = waiting on the
        # semaphore, active = admitted and not yet resolved.
        self._queued = 0
        self._active = 0
        self._peak_queued = 0
        self._peak_active = 0
        self._served = 0
        self._rejected = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Async solve API
    # ------------------------------------------------------------------
    async def solve(self, request: SolveRequest) -> ServiceResult:
        """``await``-able :meth:`SchedulingService.solve`.

        Admission is bounded by ``max_inflight``; past the gate, the
        blocking submit (fingerprint + cache probe + dispatch) runs on
        the warm service pool and the coroutine awaits the resolution.
        Raises :class:`ServiceError` for solve failures (unchanged from
        the sync path) and for requests arriving after :meth:`drain`
        began.
        """
        return await self._admit(request, self.service.submit)

    async def solve_delta(self, request: SolveRequest) -> ServiceResult:
        """``await``-able :meth:`SchedulingService.solve_delta`.

        Without debouncing this is :meth:`solve` with the delta submit
        path underneath -- same admission gate, same accounting.  With
        ``delta_debounce > 0``, the request first parks in the
        :class:`~repro.service.delta.ChangeDebouncer` under its
        :func:`~repro.service.delta.delta_key` (computed on the
        admission pool -- it walks every network); only the storm's
        latest snapshot is solved, and superseded waiters can tell from
        ``result.superseded``.
        """
        if self._debouncer is None:
            return await self._admit(request, self.service.submit_delta)
        if self._closing:
            self._rejected += 1
            raise ServiceError(
                f"request {request.label or '<unlabeled>'} rejected: "
                "service is draining"
            )
        loop = asyncio.get_running_loop()
        key = await loop.run_in_executor(
            self._admission(), delta_key, request.problem, request.knobs
        )
        return await self._debouncer.submit(key, request)

    async def _debounced_solve(self, request: SolveRequest) -> ServiceResult:
        """The debouncer's solve callable: admit even while draining --
        drain's flush is how accepted-but-parked requests resolve."""
        return await self._admit(
            request, self.service.submit_delta, during_drain=True
        )

    async def _admit(
        self,
        request: SolveRequest,
        submit: Callable,
        during_drain: bool = False,
    ) -> ServiceResult:
        """The bounded-admission path shared by plain and delta solves."""
        if self._closing and not during_drain:
            self._rejected += 1
            raise ServiceError(
                f"request {request.label or '<unlabeled>'} rejected: "
                "service is draining"
            )
        metrics = self.service.metrics
        self._queued += 1
        self._peak_queued = max(self._peak_queued, self._queued)
        self._idle.clear()
        if metrics is not None:
            metrics.gauge("repro_admission_queue_depth").set(self._queued)
            t_arrive = time.perf_counter()
        admitted = False
        try:
            await self._sem.acquire()
            admitted = True
            self._queued -= 1
            self._active += 1
            self._peak_active = max(self._peak_active, self._active)
            if metrics is not None:
                # The semaphore wait *is* the admission queue time --
                # the saturation signal max_inflight exists to bound.
                metrics.histogram("repro_admission_wait_seconds").observe(
                    time.perf_counter() - t_arrive
                )
                metrics.gauge("repro_admission_queue_depth").set(self._queued)
                metrics.gauge("repro_admission_active").set(self._active)
            loop = asyncio.get_running_loop()
            # Two hops: the admission pool runs the (blocking) submit,
            # which returns the request's concurrent future; awaiting
            # that future is the solve/cache-hit resolution itself.
            inner = await loop.run_in_executor(
                self._admission(), submit, request
            )
            result = await asyncio.wrap_future(inner)
            self._served += 1
            return result
        finally:
            if admitted:
                self._active -= 1
                self._sem.release()
            else:
                self._queued -= 1
            if metrics is not None:
                metrics.gauge("repro_admission_queue_depth").set(self._queued)
                metrics.gauge("repro_admission_active").set(self._active)
            if self._queued == 0 and self._active == 0:
                self._idle.set()

    def _admission(self) -> ThreadPoolExecutor:
        if self._admission_pool is None:
            self._admission_pool = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-admission"
            )
        return self._admission_pool

    async def solve_batch(
        self, requests: Sequence[SolveRequest]
    ) -> List[ServiceResult]:
        """Serve a batch concurrently; results come back in input order.

        ``asyncio.gather`` underneath: duplicates coalesce inside the
        service exactly as in the synchronous batch path, and the first
        failure raises its attributable :class:`ServiceError`.
        """
        return list(await asyncio.gather(*(self.solve(r) for r in requests)))

    async def solve_problem(
        self,
        problem: Problem,
        knobs: Optional[SolveKnobs] = None,
        label: Optional[str] = None,
    ) -> ServiceResult:
        """Convenience mirror of :meth:`SchedulingService.submit_problem`."""
        return await self.solve(
            SolveRequest(
                problem=problem,
                knobs=knobs if knobs is not None else self.service.default_knobs,
                label=label,
            )
        )

    # ------------------------------------------------------------------
    # JSON-over-TCP front door
    # ------------------------------------------------------------------
    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start the TCP endpoint; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (the form tests and
        single-box demos use).  The listener runs on the current event
        loop until :meth:`drain`/:meth:`aclose`.
        """
        if self._server is not None:
            raise RuntimeError("serve() already called on this front door")
        if self._closing:
            raise RuntimeError("cannot serve() on a draining front door")
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=WIRE_LINE_LIMIT
        )
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client: spawn a task per request line, answer as done.

        Responses are written under a per-connection lock (stream
        writers are not task-safe) and may interleave across requests
        -- pipelining clients correlate by ``id``.
        """
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        pusher = SchedulePusher()
        pending: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # A line overran WIRE_LINE_LIMIT: the stream is no
                    # longer line-delimited, so the connection must
                    # end -- but gracefully: answer the offense, and
                    # fall through to the pending-gather below so
                    # already-accepted requests still get responses.
                    await self._write_response(
                        writer, write_lock,
                        {
                            "ok": False,
                            "id": None,
                            "error": (
                                "ValueError: request line exceeds "
                                f"{WIRE_LINE_LIMIT} bytes"
                            ),
                        },
                    )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock, pusher)
                )
                for registry in (pending, self._request_tasks):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
            if pending:
                await asyncio.gather(*tuple(pending), return_exceptions=True)
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        pusher: Optional[SchedulePusher] = None,
    ) -> None:
        response = await self._dispatch_wire(line, pusher)
        await self._write_response(writer, write_lock, response, pusher)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: dict,
        pusher: Optional[SchedulePusher] = None,
    ) -> None:
        """Write one response line; delta-push payloads materialize here.

        A subscribed response carries a private ``_push`` marker from
        :meth:`_dispatch_wire`; the actual diff runs *under the write
        lock* so the pusher's per-subscription base-table chain matches
        the order responses hit the wire (pipelined same-key requests
        would otherwise interleave state updates and writes).  The diff
        itself runs on the admission pool -- ``SequenceMatcher`` over a
        large table is exactly the blocking work the loop must not do.
        """
        push_spec = response.pop("_push", None)
        async with write_lock:
            if writer.is_closing():
                return
            if push_spec is not None and pusher is not None:
                sub, table, full_sync = push_spec
                loop = asyncio.get_running_loop()
                try:
                    response["push"] = await loop.run_in_executor(
                        self._admission(), pusher.push, sub, table, full_sync
                    )
                except Exception as exc:  # defensive: never kill the line
                    response["push"] = {
                        "mode": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()

    async def _dispatch_wire(
        self, line: bytes, pusher: Optional[SchedulePusher] = None
    ) -> dict:
        """One wire request -> one response dict; never raises."""
        req_id = None
        try:
            message = json.loads(line.decode("utf-8"))
            if not isinstance(message, dict):
                raise ValueError("request must be a JSON object")
            req_id = message.get("id")
            op = message.get("op")
            if op == "stats":
                return {"ok": True, "id": req_id, "stats": jsonable(self.stats)}
            if op == "metrics":
                return self._wire_metrics(req_id)
            if op == "invalidate":
                return await self._wire_invalidate(message, req_id)
            if op not in (None, "solve", "solve_delta"):
                raise ValueError(f"unknown op {op!r}")
            sub = message.get("sub")
            if sub is not None and not isinstance(sub, str):
                raise ValueError("sub must be a string subscription key")
            request = self._wire_request(message)
            if op == "solve_delta":
                result = await self.solve_delta(request)
            else:
                result = await self.solve(request)
            response = {
                "ok": True,
                "id": req_id,
                "label": result.label,
                "status": result.status,
                "profit": result.profit,
                "fingerprint": result.fingerprint.digest,
                "semantic_digest": await self._response_digest(result),
                "latency_s": result.latency_s,
            }
            if op == "solve_delta":
                response["delta"] = (
                    result.delta.snapshot() if result.delta is not None else None
                )
                response["superseded"] = result.superseded
            if sub is not None or message.get("table"):
                loop = asyncio.get_running_loop()
                table = await loop.run_in_executor(
                    self._admission(), schedule_table, result.report
                )
                if message.get("table"):
                    response["table"] = [list(c) for c in table]
                    response["table_digest"] = await loop.run_in_executor(
                        self._admission(), table_digest, table
                    )
                if sub is not None and pusher is not None:
                    response["_push"] = (
                        sub, table, bool(message.get("full_sync"))
                    )
            return response
        except Exception as exc:
            return {
                "ok": False,
                "id": req_id,
                "error": f"{type(exc).__name__}: {exc}",
            }

    def _wire_metrics(self, req_id) -> dict:
        """The ``metrics`` wire op: one consistent registry snapshot,
        the SLO attainment report (when configured), and the snapshot's
        Prometheus text exposition.  Snapshotting is a locked dict copy
        -- cheap enough for the event loop, and running it off-loop
        would only add a chance to observe a later state."""
        snap = self.service.metrics_snapshot()
        return {
            "ok": True,
            "id": req_id,
            "metrics": jsonable(snap["metrics"]),
            "slo": jsonable(snap["slo"]),
            "text": render_prometheus(snap["metrics"]),
        }

    async def _wire_invalidate(self, message: dict, req_id) -> dict:
        """The ``invalidate`` wire op: bulk-drop below a capacity epoch.

        Runs on the admission pool -- the disk sweep unpickles every
        file in the tier, blocking work by construction.  The shard
        router fans this op out to every shard.
        """
        if "epoch_below" not in message:
            raise ValueError("invalidate requires an epoch_below field")
        epoch_below = int(message["epoch_below"])
        loop = asyncio.get_running_loop()
        dropped = await loop.run_in_executor(
            self._admission(),
            lambda: self.service.invalidate(epoch_below=epoch_below),
        )
        return {"ok": True, "id": req_id, "dropped": dropped}

    async def _response_digest(self, result: ServiceResult) -> str:
        """The served report's semantic digest, cheaply.

        Every admitted result already had its digest computed by the
        cache (the recorded verification digest *is*
        :func:`report_semantic_digest` of the report under the default
        configuration), so the hot path is a locked metadata peek.
        Only when the entry has already left the memory tier (evicted,
        invalidated) is the digest recomputed -- and then on the
        admission pool, never on the event loop: digesting a report
        serializes the whole solution, exactly the class of work the
        loop must not run.
        """
        digest = self.service.peek_digest(result.fingerprint)
        if digest is not None:
            return digest
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._admission(), report_semantic_digest, result.report
        )

    @staticmethod
    def _wire_request(message: dict) -> SolveRequest:
        """Decode a wire message into a solve request.

        Two problem sources, mutually exclusive: ``"workload"`` names a
        registry workload; ``"trajectory"`` (with ``"step": k``) names a
        registered churn trajectory and requests its *k*-th snapshot.
        Trajectories are prefix-stable -- snapshot ``k`` of
        ``build_trajectory(name, size, seed, steps=k+1)`` is the same
        problem regardless of how many further steps exist -- so the
        wire face stays a pure value: no server-side trajectory state.
        """
        if "workload" in message and "trajectory" in message:
            raise ValueError("pass workload or trajectory, not both")
        try:
            size = int(message["size"])
        except KeyError as exc:
            raise ValueError(f"request is missing field {exc}") from exc
        seed = int(message.get("seed", 0))
        knobs = message.get("knobs") or {}
        if not isinstance(knobs, dict):
            raise ValueError("knobs must be a JSON object of SolveKnobs fields")
        if "trajectory" in message:
            name = message["trajectory"]
            step = int(message.get("step", 0))
            if step < 0:
                raise ValueError(f"step must be >= 0, got {step}")
            knobs.setdefault("seed", seed)
            snapshot = build_trajectory(
                name, size, seed=seed, steps=step + 1
            )[step]
            return SolveRequest(
                problem=snapshot.problem,
                knobs=SolveKnobs(**knobs),
                label=f"{name}@{size}#{seed}/{step}",
            )
        try:
            name = message["workload"]
        except KeyError as exc:
            raise ValueError(f"request is missing field {exc}") from exc
        return SolveRequest.from_workload(name, size, seed=seed, **knobs)

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Graceful stop: no new work, all accepted work resolves.

        Order matters: (1) stop accepting -- the TCP listener closes
        and :meth:`solve` starts rejecting, (2) every queued and
        admitted request resolves (their responses still go out), (3)
        surviving connections close, (4) the front door's own
        admission pool is joined.  Idempotent.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._debouncer is not None:
            # Coalesced delta requests were accepted before the drain
            # began: force-fire their buckets now (the debounced solve
            # path bypasses the rejection above), so the idle wait
            # below also covers them.
            await self._debouncer.flush_all()
        await self._idle.wait()
        if self._request_tasks:
            await asyncio.gather(
                *tuple(self._request_tasks), return_exceptions=True
            )
        for writer in tuple(self._writers):
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
        self._writers.clear()
        if self._admission_pool is not None:
            # Idle by construction at this point, so the join is quick.
            self._admission_pool.shutdown(wait=True)
            self._admission_pool = None

    async def aclose(self, shutdown_executors: bool = True) -> None:
        """Drain, then (by default) tear down the warm executor pools.

        The pool teardown
        (:func:`~repro.core.engines.backends.shutdown_pools`) is
        process-wide -- every family, epoch pools included -- which is
        exactly what a serving process wants on the way out: zero live
        executors after a clean close.  Pass
        ``shutdown_executors=False`` when other services in the process
        keep running; pools re-warm on demand either way.
        """
        await self.drain()
        if shutdown_executors:
            # Quick by construction: the drain left every pool idle.
            shutdown_pools(wait=True)

    async def __aenter__(self) -> "AsyncSchedulingService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Front-door admission counters plus the wrapped service's."""
        return {
            "max_inflight": self.max_inflight,
            "queued": self._queued,
            "active": self._active,
            "peak_queued": self._peak_queued,
            "peak_active": self._peak_active,
            "served": self._served,
            "rejected": self._rejected,
            "connections": len(self._writers),
            "draining": self._closing,
            "debouncer": (
                self._debouncer.stats_snapshot()
                if self._debouncer is not None
                else None
            ),
            "service": self.service.stats,
        }
