"""Random demand generators.

Profits, endpoints, heights and accessibility patterns for the
point-to-point (tree) experiments.  Everything is deterministic under
the seed.
"""
from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.demand import Demand
from repro.core.problem import Problem
from repro.trees.tree import TreeNetwork


def _random_profit(rng: random.Random, profile: str, pmax_over_pmin: float) -> float:
    """Draw a profit in ``[1, pmax_over_pmin]`` under the given profile."""
    if pmax_over_pmin < 1:
        raise ValueError("pmax/pmin must be at least 1")
    if profile == "uniform":
        return rng.uniform(1.0, pmax_over_pmin)
    if profile == "powerlaw":
        # Heavier tail: quadratic transform of a uniform draw.
        u = rng.random()
        return 1.0 + (pmax_over_pmin - 1.0) * u * u
    if profile == "two-point":
        return 1.0 if rng.random() < 0.5 else float(pmax_over_pmin)
    raise ValueError(f"unknown profit profile {profile!r}")


def _random_height(rng: random.Random, profile: str, hmin: float) -> float:
    if profile == "unit":
        return 1.0
    if profile == "uniform":
        return rng.uniform(hmin, 1.0)
    if profile == "narrow":
        return rng.uniform(hmin, 0.5)
    if profile == "wide":
        return rng.uniform(0.55, 1.0)
    if profile == "bimodal":
        return rng.uniform(hmin, 0.4) if rng.random() < 0.5 else rng.uniform(0.6, 1.0)
    raise ValueError(f"unknown height profile {profile!r}")


def _random_endpoints(
    rng: random.Random, network: TreeNetwork, locality: Optional[int]
) -> Tuple[int, int]:
    """A random vertex pair; with *locality*, endpoints at most that many
    edges apart (drawn via a random walk)."""
    verts = network.vertices
    u = rng.choice(verts)
    if locality is None:
        v = rng.choice(verts)
        while v == u:
            v = rng.choice(verts)
        return u, v
    v = u
    steps = rng.randint(1, max(1, locality))
    prev = None
    for _ in range(steps):
        options = [w for w in network.neighbors(v) if w != prev] or list(
            network.neighbors(v)
        )
        prev, v = v, rng.choice(options)
    if v == u:
        v = rng.choice(network.neighbors(u))
    return u, v


def random_tree_problem(
    networks: Dict[int, TreeNetwork],
    m: int,
    seed: int = 0,
    profit_profile: str = "uniform",
    pmax_over_pmin: float = 10.0,
    height_profile: str = "unit",
    hmin: float = 0.1,
    locality: Optional[int] = None,
    access_size: Optional[int] = None,
) -> Problem:
    """A random problem over the given tree-networks.

    Parameters
    ----------
    m:
        Number of demands (= processors).
    locality:
        If set, demand endpoints are at most this many edges apart.
    access_size:
        Networks accessible per processor (random subset); defaults to
        all networks.
    """
    rng = random.Random(seed)
    network_ids = sorted(networks)
    demands: List[Demand] = []
    access: Dict[int, Tuple[int, ...]] = {}
    # Endpoints must exist in every accessible network; all generators in
    # this package share the vertex set 0..n-1, so sample from the
    # smallest network to stay safe.
    smallest = min(networks.values(), key=lambda net: net.n_vertices)
    for demand_id in range(m):
        u, v = _random_endpoints(rng, smallest, locality)
        demands.append(
            Demand(
                demand_id=demand_id,
                u=u,
                v=v,
                profit=_random_profit(rng, profit_profile, pmax_over_pmin),
                height=_random_height(rng, height_profile, hmin),
            )
        )
        if access_size is None or access_size >= len(network_ids):
            access[demand_id] = tuple(network_ids)
        else:
            access[demand_id] = tuple(
                sorted(rng.sample(network_ids, access_size))
            )
    return Problem(networks=networks, demands=demands, access=access)
