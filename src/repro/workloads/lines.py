"""Random window workloads for line-networks (Section 7).

Jobs with release/deadline windows and processing times on one or more
line resources -- the "natural applications" setting of the paper's
introduction (machine scheduling over a timeline).
"""
from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.demand import WindowDemand
from repro.core.problem import Problem
from repro.trees.tree import TreeNetwork, make_line_network
from repro.workloads.demands import _random_height, _random_profit


def random_line_problem(
    n_slots: int,
    m: int,
    r: int = 1,
    seed: int = 0,
    min_processing: int = 1,
    max_processing: Optional[int] = None,
    window_slack: int = 4,
    profit_profile: str = "uniform",
    pmax_over_pmin: float = 10.0,
    height_profile: str = "unit",
    hmin: float = 0.1,
    access_size: Optional[int] = None,
) -> Problem:
    """A random window-scheduling problem on ``r`` line resources.

    Parameters
    ----------
    n_slots:
        Timeline length (number of timeslots per resource).
    window_slack:
        Window length exceeds the processing time by up to this many
        slots (0 = rigid jobs with a single placement per resource).
    """
    if max_processing is None:
        max_processing = max(min_processing, n_slots // 4)
    max_processing = min(max_processing, n_slots)
    rng = random.Random(seed)
    networks: Dict[int, TreeNetwork] = {
        q: make_line_network(q, n_slots) for q in range(r)
    }
    demands: List[WindowDemand] = []
    access: Dict[int, Tuple[int, ...]] = {}
    for demand_id in range(m):
        rho = rng.randint(min_processing, max_processing)
        slack = rng.randint(0, window_slack)
        release = rng.randint(0, max(0, n_slots - rho - slack))
        deadline = min(n_slots - 1, release + rho + slack - 1)
        demands.append(
            WindowDemand(
                demand_id=demand_id,
                release=release,
                deadline=deadline,
                processing=rho,
                profit=_random_profit(rng, profit_profile, pmax_over_pmin),
                height=_random_height(rng, height_profile, hmin),
            )
        )
        if access_size is None or access_size >= r:
            access[demand_id] = tuple(range(r))
        else:
            access[demand_id] = tuple(sorted(rng.sample(range(r), access_size)))
    return Problem(networks=networks, demands=demands, access=access)
