"""Churn trajectories: seeded mutation streams over registry workloads.

A *trajectory* is a deterministic sequence of problem snapshots: snapshot
0 is a registry workload (:mod:`repro.workloads.random_suite`), and each
later snapshot applies one small mutation to its predecessor -- the
change stream a scheduling service sees from a live cluster.  They are
the input of the delta-solve path (:mod:`repro.service.delta`): every
mutation here is *id-stable* (existing demand and network ids keep their
meaning), so consecutive snapshots diff into small touched sets and a
warm start from the previous snapshot's journal certifies most epochs.

Mutation kinds
--------------

* ``add`` -- clone a random existing demand under a fresh (max+1) id
  with a jittered profit; access copied from the template.  Instances of
  old demands keep their instance ids (new ids append at the tail).
* ``drop-recent`` -- remove the most recently added demand (the tail of
  the demand list), again keeping all surviving instance ids stable.
  Mid-list drops would shift every later instance id and defeat the
  per-epoch signature match; churn that *arrives* mid-list is what
  ``resize`` models instead.
* ``resize`` -- scale a random demand's profit (a tenant changing its
  bid).  Only that demand's epochs re-run.
* ``capacity-step`` -- scale a random demand's height (its share of
  edge capacity), clamped to its side of the wide/narrow boundary and
  never below the problem's global ``hmin``: crossing either line would
  change the stage-threshold schedule (``narrow_xi`` depends on
  ``hmin``) or the wide/narrow split, forcing a full re-run instead of
  a surgical one.  Falls back to ``resize`` when no demand can move.
* ``onboard`` -- a new tenant: one fresh network plus one or two
  demands that access only it.  Deliberately *not* sketch-preserving --
  the delta path must detect the network change and fall back cold;
  snapshots after the onboarding share the new sketch and warm again.

Determinism and prefix stability: ``build_trajectory(name, size, seed)``
drives all draws from one ``random.Random`` seeded by
``(name, size, seed)``, consuming draws strictly in step order -- so the
first ``k`` snapshots are identical regardless of the requested length,
and "snapshot 3 of churn-lines@80#1" means the same problem everywhere
(tests, benches, wire clients).
"""
from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.demand import WindowDemand
from repro.core.problem import Problem
from repro.trees.tree import TreeNetwork, make_line_network
from repro.workloads.demands import _random_endpoints
from repro.workloads.random_suite import REGISTRY, build_workload
from repro.workloads.trees import random_tree_edges

__all__ = [
    "MUTATION_KINDS",
    "TRAJECTORIES",
    "TrajectorySpec",
    "TrajectoryStep",
    "build_trajectory",
    "get_trajectory",
    "register_trajectory",
    "trajectory_names",
]

#: Legal mutation kinds; a typo in a spec must fail at registration.
MUTATION_KINDS = ("add", "drop-recent", "resize", "capacity-step", "onboard")


@dataclass(frozen=True)
class TrajectorySpec:
    """A named churn trajectory over a base registry workload.

    ``kinds``/``weights`` define the per-step mutation draw;
    ``capacity-step`` belongs only on bases with non-unit heights (on a
    unit workload every height is pinned at 1.0 and the mutation would
    silently degenerate).
    """

    name: str
    base: str
    kinds: Tuple[str, ...]
    weights: Tuple[float, ...]
    description: str


TRAJECTORIES: Dict[str, TrajectorySpec] = {}


def register_trajectory(spec: TrajectorySpec) -> TrajectorySpec:
    """Add *spec* to the registry (name unused, base + kinds valid)."""
    if spec.name in TRAJECTORIES:
        raise ValueError(f"trajectory {spec.name!r} is already registered")
    if spec.base not in REGISTRY:
        raise ValueError(
            f"trajectory base {spec.base!r} is not a registered workload"
        )
    for kind in spec.kinds:
        if kind not in MUTATION_KINDS:
            raise ValueError(
                f"unknown mutation kind {kind!r}; choose from {MUTATION_KINDS}"
            )
    if len(spec.weights) != len(spec.kinds):
        raise ValueError("weights must match kinds one-to-one")
    TRAJECTORIES[spec.name] = spec
    return spec


def get_trajectory(name: str) -> TrajectorySpec:
    """Look up a registered trajectory by name."""
    try:
        return TRAJECTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown trajectory {name!r}; choose from {sorted(TRAJECTORIES)}"
        )


def trajectory_names() -> Tuple[str, ...]:
    """All registered trajectory names, sorted."""
    return tuple(sorted(TRAJECTORIES))


@dataclass(frozen=True)
class TrajectoryStep:
    """One snapshot of a trajectory: the problem plus how it got here."""

    index: int
    kind: str
    detail: str
    problem: Problem


def build_trajectory(
    name: str, size: int, seed: int = 0, steps: int = 8
) -> Tuple[TrajectoryStep, ...]:
    """Build the named trajectory: ``steps`` snapshots, index 0 = base."""
    if steps < 1:
        raise ValueError(f"a trajectory needs at least one step, got {steps}")
    spec = get_trajectory(name)
    rng = random.Random(f"trajectory/{name}/{size}/{seed}")
    problem = build_workload(spec.base, size, seed=seed)
    out: List[TrajectoryStep] = [
        TrajectoryStep(0, "base", f"{spec.base}@{size}#{seed}", problem)
    ]
    for index in range(1, steps):
        kind = rng.choices(spec.kinds, weights=spec.weights)[0]
        problem, kind, detail = _MUTATIONS[kind](problem, rng)
        out.append(TrajectoryStep(index, kind, detail, problem))
    return tuple(out)


# ----------------------------------------------------------------------
# Mutations (each returns (new_problem, actual_kind, detail); fallback
# chains keep every draw productive, so no step is ever a no-op)
# ----------------------------------------------------------------------
def _copy_access(problem: Problem) -> Dict[int, Tuple[int, ...]]:
    return {i: tuple(nets) for i, nets in problem.access.items()}


def _next_demand_id(problem: Problem) -> int:
    return max(a.demand_id for a in problem.demands) + 1


def _mutate_add(
    problem: Problem, rng: random.Random
) -> Tuple[Problem, str, str]:
    template = rng.choice(problem.demands)
    new_id = _next_demand_id(problem)
    factor = rng.uniform(0.8, 1.25)
    clone = replace(template, demand_id=new_id, profit=template.profit * factor)
    access = _copy_access(problem)
    access[new_id] = tuple(problem.access[template.demand_id])
    return (
        Problem(
            networks=dict(problem.networks),
            demands=list(problem.demands) + [clone],
            access=access,
        ),
        "add",
        f"add demand {new_id} (clone of {template.demand_id}, "
        f"profit x{factor:.2f})",
    )


def _mutate_drop_recent(
    problem: Problem, rng: random.Random
) -> Tuple[Problem, str, str]:
    if len(problem.demands) < 2:
        return _mutate_add(problem, rng)
    victim = problem.demands[-1]
    demands = list(problem.demands[:-1])
    access = {a.demand_id: tuple(problem.access[a.demand_id]) for a in demands}
    return (
        Problem(networks=dict(problem.networks), demands=demands, access=access),
        "drop-recent",
        f"drop demand {victim.demand_id}",
    )


def _mutate_resize(
    problem: Problem, rng: random.Random
) -> Tuple[Problem, str, str]:
    idx = rng.randrange(len(problem.demands))
    target = problem.demands[idx]
    factor = rng.uniform(0.5, 1.6)
    demands = list(problem.demands)
    demands[idx] = replace(target, profit=target.profit * factor)
    return (
        Problem(
            networks=dict(problem.networks),
            demands=demands,
            access=_copy_access(problem),
        ),
        "resize",
        f"demand {target.demand_id} profit x{factor:.2f}",
    )


def _mutate_capacity_step(
    problem: Problem, rng: random.Random
) -> Tuple[Problem, str, str]:
    hmin = problem.hmin
    n_min = sum(1 for a in problem.demands if a.height == hmin)
    candidates = [
        i
        for i, a in enumerate(problem.demands)
        if a.height > hmin or n_min > 1
    ]
    if not candidates:
        return _mutate_resize(problem, rng)
    idx = rng.choice(candidates)
    target = problem.demands[idx]
    factor = rng.uniform(0.85, 1.3)
    new_height = target.height * factor
    if target.height <= 0.5:
        new_height = max(hmin, min(0.5, new_height))
    else:
        new_height = min(1.0, new_height)
        if new_height <= 0.5:
            new_height = target.height
    if new_height == target.height:
        return _mutate_resize(problem, rng)
    demands = list(problem.demands)
    demands[idx] = replace(target, height=new_height)
    return (
        Problem(
            networks=dict(problem.networks),
            demands=demands,
            access=_copy_access(problem),
        ),
        "capacity-step",
        f"demand {target.demand_id} height "
        f"{target.height:.3f} -> {new_height:.3f}",
    )


def _mutate_onboard(
    problem: Problem, rng: random.Random
) -> Tuple[Problem, str, str]:
    new_nid = max(problem.networks) + 1
    template = rng.choice(problem.demands)
    if isinstance(template, WindowDemand):
        # Match the slot count of a timeline the template already runs
        # on, so its window stays feasible on the new resource.
        home = problem.networks[min(problem.access[template.demand_id])]
        net = make_line_network(new_nid, home.n_vertices - 1)
    else:
        net = TreeNetwork(
            new_nid,
            random_tree_edges(rng.randint(6, 12), seed=rng.randrange(1 << 30)),
        )
    networks = dict(problem.networks)
    networks[new_nid] = net
    demands = list(problem.demands)
    access = _copy_access(problem)
    new_ids = []
    for _ in range(rng.randint(1, 2)):
        new_id = max(a.demand_id for a in demands) + 1
        factor = rng.uniform(0.8, 1.25)
        if isinstance(template, WindowDemand):
            clone = replace(
                template, demand_id=new_id, profit=template.profit * factor
            )
        else:
            u, v = _random_endpoints(rng, net, 3)
            clone = replace(
                template,
                demand_id=new_id,
                u=u,
                v=v,
                profit=template.profit * factor,
            )
        demands.append(clone)
        access[new_id] = (new_nid,)
        new_ids.append(new_id)
    return (
        Problem(networks=networks, demands=demands, access=access),
        "onboard",
        f"onboard network {new_nid} with demands {new_ids}",
    )


_MUTATIONS = {
    "add": _mutate_add,
    "drop-recent": _mutate_drop_recent,
    "resize": _mutate_resize,
    "capacity-step": _mutate_capacity_step,
    "onboard": _mutate_onboard,
}


# ----------------------------------------------------------------------
# The bundled trajectory families
# ----------------------------------------------------------------------
register_trajectory(
    TrajectorySpec(
        name="churn-lines",
        base="bursty-lines",
        kinds=("add", "resize", "drop-recent", "capacity-step"),
        weights=(0.35, 0.35, 0.15, 0.15),
        description=(
            "window-demand churn on burst timelines: arrivals, bid "
            "changes, cancellations, capacity steps"
        ),
    )
)
register_trajectory(
    TrajectorySpec(
        name="tenant-churn",
        base="multi-tenant-forest",
        kinds=("add", "resize", "drop-recent", "onboard"),
        weights=(0.35, 0.35, 0.2, 0.1),
        description=(
            "multi-tenant demand churn with occasional tenant "
            "onboarding (a new network, the sketch-breaking case)"
        ),
    )
)
register_trajectory(
    TrajectorySpec(
        name="capacity-steps",
        base="sparse-access-forest",
        kinds=("resize", "capacity-step"),
        weights=(0.5, 0.5),
        description=(
            "bimodal-height forest under profit and height resizing "
            "(the composite wide/narrow solve path)"
        ),
    )
)
