"""Named scenarios, including the paper's worked examples.

* :func:`figure1_problem` -- the line-network illustration of Figure 1
  (demands A, B, C with heights 0.5, 0.7, 0.4; {A,C} and {B,C} are
  feasible together, {A,B} is not).
* :func:`figure2_problem` -- the tree-network of Figure 2 (demands
  <1,10>, <2,3>, <12,13> all sharing edge <4,5>; with heights
  0.4/0.7/0.3 the first and third fit together).
* :func:`figure6_network` -- the example tree of Figure 6, consistent
  with every fact the paper states about it (path of <4,13> is
  4-2-5-8-13; bending points w.r.t. 3 and 9 are 2 and 5; node 4 has one
  wing <4,2>; node 8 has wings <5,8> and <8,13>; rooting at 1 captures
  <4,13> at node 2).

The fixed scenarios are registered by name in :data:`SCENARIOS` (and,
alongside the scale generators, in the unified registry of
:mod:`repro.workloads.random_suite`) so tests and benchmarks draw the
same instances from one place.
"""
from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.demand import Demand, WindowDemand
from repro.core.problem import Problem
from repro.trees.tree import TreeNetwork, make_line_network


def figure1_problem(
    profits: Tuple[float, float, float] = (1.0, 1.0, 1.0)
) -> Problem:
    """The Figure 1 line-network example.

    One resource of 10 timeslots; demands (as slot intervals):
    A = [1, 6] with height 0.5, B = [0, 3] with height 0.7,
    C = [5, 9] with height 0.4.  A and B overlap on slots [1, 3]
    (combined height 1.2 > 1); A and C overlap on [5, 6] (0.9 <= 1);
    B and C are disjoint.
    """
    network = make_line_network(0, 10)
    p_a, p_b, p_c = profits
    demands = [
        WindowDemand(demand_id=0, release=1, deadline=6, processing=6, profit=p_a, height=0.5),
        WindowDemand(demand_id=1, release=0, deadline=3, processing=4, profit=p_b, height=0.7),
        WindowDemand(demand_id=2, release=5, deadline=9, processing=5, profit=p_c, height=0.4),
    ]
    return Problem(networks={0: network}, demands=demands)


FIGURE2_EDGES = [
    (2, 1), (12, 1), (1, 4), (4, 5), (5, 9), (9, 10), (5, 13), (13, 3),
    (4, 6), (6, 7), (5, 8), (9, 11), (13, 14),
]


def figure2_network(network_id: int = 0) -> TreeNetwork:
    """The Figure 2 tree-network (14 vertices).

    Constructed so the three demands <1,10>, <2,3>, <12,13> all route
    through the edge <4,5>, as the caption requires.
    """
    return TreeNetwork(network_id, FIGURE2_EDGES)


def figure2_problem(unit_height: bool = False) -> Problem:
    """The Figure 2 example: three demands sharing edge <4,5>.

    With ``unit_height`` all heights are 1 (only one demand can be
    scheduled); otherwise heights are 0.4, 0.7, 0.3 (first and third
    coexist).
    """
    network = figure2_network()
    heights = (1.0, 1.0, 1.0) if unit_height else (0.4, 0.7, 0.3)
    demands = [
        Demand(demand_id=0, u=1, v=10, profit=1.0, height=heights[0]),
        Demand(demand_id=1, u=2, v=3, profit=1.0, height=heights[1]),
        Demand(demand_id=2, u=12, v=13, profit=1.0, height=heights[2]),
    ]
    return Problem(networks={0: network}, demands=demands)


FIGURE6_EDGES = [
    (1, 2), (2, 4), (2, 5), (5, 8), (8, 13), (5, 9), (9, 12),
    (1, 15), (15, 6), (15, 14), (6, 3), (6, 10), (3, 7), (14, 11),
]


def figure6_network(network_id: int = 0) -> TreeNetwork:
    """The Figure 6 example tree-network (15 vertices, labelled 1..15)."""
    return TreeNetwork(network_id, FIGURE6_EDGES)


def figure6_demand() -> Demand:
    """The demand <4, 13> discussed throughout Section 4."""
    return Demand(demand_id=0, u=4, v=13, profit=1.0)


def figure6_problem() -> Problem:
    """A small unit-height problem on the Figure 6 tree.

    Includes <4,13> plus a handful of demands that exercise captures at
    several depths of the decompositions.
    """
    demands = [
        figure6_demand(),
        Demand(demand_id=1, u=12, v=13, profit=2.0),
        Demand(demand_id=2, u=7, v=10, profit=1.5),
        Demand(demand_id=3, u=11, v=6, profit=1.0),
        Demand(demand_id=4, u=4, v=7, profit=3.0),
        Demand(demand_id=5, u=9, v=8, profit=1.0),
    ]
    return Problem(networks={0: figure6_network()}, demands=demands)


#: The paper's worked examples, by name.  Values are zero-argument
#: builders returning a fresh :class:`Problem`.
SCENARIOS: Dict[str, Callable[[], Problem]] = {
    "figure1": figure1_problem,
    "figure2": figure2_problem,
    "figure2-unit": lambda: figure2_problem(unit_height=True),
    "figure6": figure6_problem,
}


def scenario(name: str) -> Problem:
    """Build the named worked example (see :data:`SCENARIOS`)."""
    try:
        return SCENARIOS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
