"""Random tree generators.

All generators are deterministic under their seed and produce trees
over the vertex set ``0..n-1``.  Shapes cover the regimes that stress
different parts of the decomposition machinery: uniform random trees
(Prüfer), paths (worst case for root-fixing depth), stars (best case),
caterpillars, complete-ish binary trees, and brooms.
"""
from __future__ import annotations

import random
from typing import List, Tuple

from repro.trees.tree import TreeNetwork

SHAPES = ("uniform", "path", "star", "caterpillar", "binary", "broom")


def random_tree_edges(n: int, seed: int = 0, shape: str = "uniform") -> List[Tuple[int, int]]:
    """Edge list of a random tree on vertices ``0..n-1``."""
    if n < 1:
        raise ValueError("a tree needs at least one vertex")
    if n == 1:
        return []
    rng = random.Random(seed)
    if shape == "uniform":
        return _from_pruefer(n, rng)
    if shape == "path":
        return [(i, i + 1) for i in range(n - 1)]
    if shape == "star":
        return [(0, i) for i in range(1, n)]
    if shape == "caterpillar":
        spine = max(2, n // 2)
        edges = [(i, i + 1) for i in range(spine - 1)]
        for v in range(spine, n):
            edges.append((rng.randrange(spine), v))
        return edges
    if shape == "binary":
        return [((v - 1) // 2, v) for v in range(1, n)]
    if shape == "broom":
        handle = max(2, n // 2)
        edges = [(i, i + 1) for i in range(handle - 1)]
        for v in range(handle, n):
            edges.append((handle - 1, v))
        return edges
    raise ValueError(f"unknown tree shape {shape!r}; choose from {SHAPES}")


def _from_pruefer(n: int, rng: random.Random) -> List[Tuple[int, int]]:
    """Uniformly random labelled tree via a random Prüfer sequence."""
    if n == 2:
        return [(0, 1)]
    seq = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for x in seq:
        degree[x] += 1
    edges: List[Tuple[int, int]] = []
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in seq:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return edges


def random_tree(n: int, seed: int = 0, shape: str = "uniform", network_id: int = 0) -> TreeNetwork:
    """A random :class:`TreeNetwork` on ``0..n-1``."""
    return TreeNetwork(network_id, random_tree_edges(n, seed, shape))


def random_forest(
    n: int, r: int, seed: int = 0, shape: str = "uniform"
) -> dict[int, TreeNetwork]:
    """``r`` independent random tree-networks over the same vertex set."""
    return {
        q: TreeNetwork(q, random_tree_edges(n, seed + 7919 * q, shape))
        for q in range(r)
    }
