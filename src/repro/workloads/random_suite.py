"""Named, scale-parameterized random workloads (the heavy-traffic suite).

The registry maps workload names to :class:`WorkloadSpec` entries whose
``build(size, seed)`` callables produce deterministic problems whose
instance counts grow roughly linearly with ``size``.  Benchmarks
(``bench_e16_engine_scaling``) and tests (golden equivalence, engine
invariants) draw from this one registry, so "the workload named
``bursty-lines`` at size 80, seed 3" means the same instances
everywhere.

Bundled generators cover the regimes that stress the first-phase engine
differently:

* ``powerlaw-trees`` -- heavy-tailed profits on a uniform forest; the
  wide profit range maximizes steps per stage (the kill-chain of
  Lemma 5.1 runs ``~log(pmax/pmin)`` deep).
* ``deep-trees`` -- caterpillar-shaped trees with far-apart endpoints;
  long paths make every satisfaction check expensive and the conflict
  graph dense.
* ``bursty-lines`` -- window demands whose releases cluster around a few
  burst centers, with narrow heights: many overlapping placements in a
  small part of the timeline, plus the height raise rule's long
  ``xi = c/(c+hmin)`` stage schedules.
* ``wide-vod-lines`` -- video-on-demand style: wide (``h > 1/2``)
  requests with generous windows on long timelines, so each demand
  expands into many instances per resource.
* ``sparse-access-forest`` -- bimodal heights over several networks with
  single-network accessibility, the multi-network merge path.
* ``multi-tenant-forest`` -- many small disjoint tenant trees, each with
  its own demand mix and only a couple of local demands: the regime
  where first-phase epochs are most independent of each other (few
  shared edges/demands across groups), i.e. where the epoch-graph
  planner (:mod:`repro.core.plan`) finds the widest waves for
  ``engine="parallel"``.
* ``diurnal-cycle`` -- window demands whose arrival intensity follows a
  sinusoidal day/night cycle over the timeline: load swells and ebbs in
  smooth waves rather than bursts, the classic VoD traffic shape.  One
  of the service-traffic sources of bench E18, where re-submitted peak
  windows are exactly what a result cache amortizes.

The paper's fixed worked examples (Figures 1, 2, 6) are registered too,
with ``scale=False``; their builders ignore ``(size, seed)``.
"""
from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.demand import Demand, WindowDemand
from repro.core.problem import Problem
from repro.trees.tree import TreeNetwork, make_line_network
from repro.workloads.demands import (
    _random_endpoints,
    _random_height,
    _random_profit,
    random_tree_problem,
)
from repro.workloads.lines import random_line_problem
from repro.workloads.scenarios import SCENARIOS
from repro.workloads.trees import random_forest, random_tree_edges


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload generator.

    ``kind`` is ``'tree'`` or ``'line'`` (which algorithm family
    applies); ``heights`` is ``'unit'``, ``'narrow'``, ``'wide'`` or
    ``'mixed'`` (which raise rules are legal); ``scale`` says whether
    ``build`` actually uses its ``(size, seed)`` arguments or returns a
    fixed instance.
    """

    name: str
    kind: str
    heights: str
    description: str
    build: Callable[[int, int], Problem]
    scale: bool = True


REGISTRY: Dict[str, WorkloadSpec] = {}

#: Legal ``WorkloadSpec.heights`` tags; consumers pick raise rules from
#: this tag, so a typo must fail at registration, not mis-run silently.
HEIGHT_TAGS = ("unit", "narrow", "wide", "mixed")


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add *spec* to the registry (name must be unused)."""
    if spec.name in REGISTRY:
        raise ValueError(f"workload {spec.name!r} is already registered")
    if spec.kind not in ("tree", "line"):
        raise ValueError(f"workload kind must be 'tree' or 'line', got {spec.kind!r}")
    if spec.heights not in HEIGHT_TAGS:
        raise ValueError(
            f"workload heights must be one of {HEIGHT_TAGS}, got {spec.heights!r}"
        )
    REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a registered workload by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(REGISTRY)}"
        )


def build_workload(name: str, size: int, seed: int = 0) -> Problem:
    """Build the named workload at the given scale and seed."""
    if size < 1:
        raise ValueError(f"workload size must be positive, got {size}")
    return get_workload(name).build(size, seed)


def workload_names(
    kind: Optional[str] = None, scale: Optional[bool] = None
) -> Tuple[str, ...]:
    """Registered names, optionally filtered by kind and scalability."""
    return tuple(
        sorted(
            name
            for name, spec in REGISTRY.items()
            if (kind is None or spec.kind == kind)
            and (scale is None or spec.scale == scale)
        )
    )


# ----------------------------------------------------------------------
# Scale generators
# ----------------------------------------------------------------------
#: Per-tenant demand mixes of the multi-tenant forest: a (profit
#: profile, pmax/pmin) pair is assigned to each tenant in rotation.
TENANT_MIXES = (
    ("uniform", 10.0),
    ("powerlaw", 100.0),
    ("two-point", 20.0),
)


def multi_tenant_forest_problem(
    n_tenants: int,
    m: int,
    seed: int = 0,
    tenant_size_range: Tuple[int, int] = (8, 20),
    locality: int = 3,
    shapes: Tuple[str, ...] = ("uniform", "caterpillar", "binary"),
) -> Problem:
    """Many small disjoint tenant trees with local, single-tenant demands.

    Each of the ``n_tenants`` tree-networks gets its own size, shape and
    demand mix (:data:`TENANT_MIXES`, in rotation); the ``m`` demands are
    spread round-robin over the tenants, each accessible on its own
    tenant's network only, with endpoints at most ``locality`` edges
    apart.  Because every demand has exactly one instance and two short
    paths in a small tree rarely overlap, different epochs of the merged
    layered decomposition share few edges and demands -- the workload
    family where the epoch-graph planner finds the widest independence
    classes.
    """
    if n_tenants < 1:
        raise ValueError("at least one tenant is required")
    if m < n_tenants:
        raise ValueError(
            f"need at least one demand per tenant, got m={m} for {n_tenants} tenants"
        )
    lo, hi = tenant_size_range
    if not 2 <= lo <= hi:
        raise ValueError(f"tenant sizes must satisfy 2 <= lo <= hi, got {tenant_size_range}")
    rng = random.Random(seed)
    networks: Dict[int, TreeNetwork] = {}
    for t in range(n_tenants):
        size = rng.randint(lo, hi)
        shape = shapes[t % len(shapes)]
        networks[t] = TreeNetwork(t, random_tree_edges(size, seed=seed + 31 * t, shape=shape))
    demands: List[Demand] = []
    access: Dict[int, Tuple[int, ...]] = {}
    for demand_id in range(m):
        tenant = demand_id % n_tenants
        profile, pmax = TENANT_MIXES[tenant % len(TENANT_MIXES)]
        u, v = _random_endpoints(rng, networks[tenant], locality)
        demands.append(
            Demand(
                demand_id=demand_id,
                u=u,
                v=v,
                profit=_random_profit(rng, profile, pmax),
                height=1.0,
            )
        )
        access[demand_id] = (tenant,)
    return Problem(networks=networks, demands=demands, access=access)


def _windowed_line_problem(
    rng: random.Random,
    n_slots: int,
    m: int,
    r: int,
    draw_release: Callable[[random.Random], int],
    window_slack: int,
    height_profile: str,
    hmin: float,
    profit_profile: str,
    pmax_over_pmin: float,
) -> Problem:
    """Shared scaffolding of the arrival-pattern line generators.

    Builds ``r`` line resources and ``m`` window demands whose release
    slots come from *draw_release* (the only thing the bursty and
    diurnal generators differ in); processing times, window slack,
    profits and heights are drawn here so the feasibility clamps --
    ``rho`` fits the remaining timeline, deadlines stay on it -- live
    in exactly one place.
    """
    networks: Dict[int, TreeNetwork] = {
        q: make_line_network(q, n_slots) for q in range(r)
    }
    demands: List[WindowDemand] = []
    for demand_id in range(m):
        release = draw_release(rng)
        rho = rng.randint(1, max(1, n_slots // 6))
        rho = min(rho, n_slots - release)
        deadline = min(n_slots - 1, release + rho + rng.randint(0, window_slack) - 1)
        demands.append(
            WindowDemand(
                demand_id=demand_id,
                release=release,
                deadline=deadline,
                processing=rho,
                profit=_random_profit(rng, profit_profile, pmax_over_pmin),
                height=_random_height(rng, height_profile, hmin),
            )
        )
    return Problem(networks=networks, demands=demands)


def bursty_line_problem(
    n_slots: int,
    m: int,
    r: int = 1,
    seed: int = 0,
    n_bursts: int = 3,
    burst_spread: int = 3,
    height_profile: str = "narrow",
    hmin: float = 0.2,
    profit_profile: str = "powerlaw",
    pmax_over_pmin: float = 50.0,
) -> Problem:
    """Window demands whose releases cluster around burst centers.

    Unlike :func:`repro.workloads.lines.random_line_problem` (uniform
    releases), jobs arrive in ``n_bursts`` waves: each release is a
    burst center plus noise of at most ``burst_spread`` slots, so load
    concentrates and conflict components grow large -- the adversarial
    regime for the first phase.
    """
    if n_slots < 4:
        raise ValueError("a bursty timeline needs at least 4 slots")
    rng = random.Random(seed)
    centers = [rng.randint(0, max(0, n_slots - 2)) for _ in range(max(1, n_bursts))]

    def draw_release(rng: random.Random) -> int:
        center = rng.choice(centers)
        return min(
            max(0, center + rng.randint(-burst_spread, burst_spread)), n_slots - 2
        )

    return _windowed_line_problem(
        rng, n_slots, m, r, draw_release, window_slack=burst_spread,
        height_profile=height_profile, hmin=hmin,
        profit_profile=profit_profile, pmax_over_pmin=pmax_over_pmin,
    )


def diurnal_line_problem(
    n_slots: int,
    m: int,
    r: int = 1,
    seed: int = 0,
    n_cycles: int = 2,
    amplitude: float = 0.9,
    window_slack: int = 3,
    height_profile: str = "narrow",
    hmin: float = 0.2,
    profit_profile: str = "uniform",
    pmax_over_pmin: float = 10.0,
) -> Problem:
    """Window demands under a sinusoidal (diurnal) arrival intensity.

    Release slots are drawn with probability proportional to
    ``1 + amplitude * sin(2 pi * n_cycles * t / n_slots)``: ``n_cycles``
    day/night waves over the timeline, with ``amplitude`` controlling
    how empty the troughs get (``0`` degenerates to a uniform draw,
    ``1`` leaves the troughs almost silent).  Unlike ``bursty-lines``
    (point masses plus noise), load here varies *smoothly*, so conflict
    density tracks the wave -- and repeated peak-hour submissions make
    it a natural traffic source for the service-layer benchmarks.
    """
    if n_slots < 8:
        raise ValueError("a diurnal timeline needs at least 8 slots")
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"amplitude must lie in [0, 1], got {amplitude}")
    if n_cycles < 1:
        raise ValueError(f"at least one cycle is required, got {n_cycles}")
    rng = random.Random(seed)
    slots = range(n_slots - 1)
    intensity = [
        1.0 + amplitude * math.sin(2.0 * math.pi * n_cycles * t / n_slots)
        for t in slots
    ]

    def draw_release(rng: random.Random) -> int:
        return rng.choices(slots, weights=intensity)[0]

    return _windowed_line_problem(
        rng, n_slots, m, r, draw_release, window_slack=window_slack,
        height_profile=height_profile, hmin=hmin,
        profit_profile=profit_profile, pmax_over_pmin=pmax_over_pmin,
    )


def _powerlaw_trees(size: int, seed: int) -> Problem:
    return random_tree_problem(
        random_forest(max(16, size // 2), 2, seed=seed),
        m=size,
        seed=seed + 1,
        profit_profile="powerlaw",
        pmax_over_pmin=100.0,
    )


def _deep_trees(size: int, seed: int) -> Problem:
    return random_tree_problem(
        random_forest(max(16, size), 2, seed=seed, shape="caterpillar"),
        m=size,
        seed=seed + 1,
        profit_profile="powerlaw",
        pmax_over_pmin=100.0,
    )


def _bursty_lines(size: int, seed: int) -> Problem:
    return bursty_line_problem(
        n_slots=max(12, size // 2),
        m=size,
        r=2,
        seed=seed,
        n_bursts=max(2, size // 40),
    )


def _wide_vod_lines(size: int, seed: int) -> Problem:
    return random_line_problem(
        n_slots=max(20, size),
        m=size,
        r=2,
        seed=seed,
        window_slack=8,
        profit_profile="powerlaw",
        pmax_over_pmin=50.0,
        height_profile="wide",
    )


def _multi_tenant_forest(size: int, seed: int) -> Problem:
    # Mostly single-demand tenants with tight locality: per-tenant
    # coupling between epochs stays rare even at large tenant counts, so
    # the planner's epoch-independence width survives scaling.
    return multi_tenant_forest_problem(
        n_tenants=max(4, (3 * size) // 4),
        m=size,
        seed=seed,
        tenant_size_range=(10, 24),
        locality=2,
    )


def _diurnal_cycle(size: int, seed: int) -> Problem:
    return diurnal_line_problem(
        n_slots=max(16, size // 2),
        m=size,
        r=2,
        seed=seed,
        n_cycles=max(2, size // 50),
    )


def _sparse_access_forest(size: int, seed: int) -> Problem:
    return random_tree_problem(
        random_forest(max(12, size // 3), 3, seed=seed),
        m=size,
        seed=seed + 1,
        profit_profile="two-point",
        pmax_over_pmin=20.0,
        height_profile="bimodal",
        hmin=0.15,
        access_size=1,
    )


register_workload(
    WorkloadSpec(
        name="powerlaw-trees",
        kind="tree",
        heights="unit",
        description="uniform forest, heavy-tailed profits (pmax/pmin = 100)",
        build=_powerlaw_trees,
    )
)
register_workload(
    WorkloadSpec(
        name="deep-trees",
        kind="tree",
        heights="unit",
        description="caterpillar trees, long paths, heavy-tailed profits",
        build=_deep_trees,
    )
)
register_workload(
    WorkloadSpec(
        name="bursty-lines",
        kind="line",
        heights="narrow",
        description="clustered release bursts, narrow heights, 2 resources",
        build=_bursty_lines,
    )
)
register_workload(
    WorkloadSpec(
        name="wide-vod-lines",
        kind="line",
        heights="wide",
        description="video-on-demand style wide requests, generous windows",
        build=_wide_vod_lines,
    )
)
register_workload(
    WorkloadSpec(
        name="diurnal-cycle",
        kind="line",
        heights="narrow",
        description="sinusoidal arrival intensity (day/night waves), 2 resources",
        build=_diurnal_cycle,
    )
)
register_workload(
    WorkloadSpec(
        name="multi-tenant-forest",
        kind="tree",
        heights="unit",
        description="many small disjoint tenant trees, local per-tenant demand mixes",
        build=_multi_tenant_forest,
    )
)
register_workload(
    WorkloadSpec(
        name="sparse-access-forest",
        kind="tree",
        heights="mixed",
        description="3 networks, single-network access, bimodal heights",
        build=_sparse_access_forest,
    )
)

# The paper's fixed worked examples, under the same registry roof.
_SCENARIO_TRAITS = {
    "figure1": ("line", "mixed"),
    "figure2": ("tree", "mixed"),
    "figure2-unit": ("tree", "unit"),
    "figure6": ("tree", "unit"),
}
for _name, (_kind, _heights) in _SCENARIO_TRAITS.items():
    _builder = SCENARIOS[_name]
    register_workload(
        WorkloadSpec(
            name=_name,
            kind=_kind,
            heights=_heights,
            description=f"fixed worked example ({_name})",
            build=lambda size, seed, _b=_builder: _b(),
            scale=False,
        )
    )
