"""Workload generators, the worked examples, and the named registry."""
from repro.workloads.demands import random_tree_problem
from repro.workloads.lines import random_line_problem
from repro.workloads.random_suite import (
    REGISTRY,
    WorkloadSpec,
    build_workload,
    bursty_line_problem,
    diurnal_line_problem,
    get_workload,
    multi_tenant_forest_problem,
    register_workload,
    workload_names,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    figure1_problem,
    figure2_network,
    figure2_problem,
    figure6_demand,
    figure6_network,
    figure6_problem,
    scenario,
)
from repro.workloads.trajectories import (
    MUTATION_KINDS,
    TRAJECTORIES,
    TrajectorySpec,
    TrajectoryStep,
    build_trajectory,
    get_trajectory,
    register_trajectory,
    trajectory_names,
)
from repro.workloads.trees import SHAPES, random_forest, random_tree, random_tree_edges

__all__ = [
    "MUTATION_KINDS",
    "REGISTRY",
    "SCENARIOS",
    "SHAPES",
    "TRAJECTORIES",
    "TrajectorySpec",
    "TrajectoryStep",
    "WorkloadSpec",
    "build_trajectory",
    "build_workload",
    "bursty_line_problem",
    "diurnal_line_problem",
    "figure1_problem",
    "figure2_network",
    "figure2_problem",
    "figure6_demand",
    "figure6_network",
    "figure6_problem",
    "get_trajectory",
    "get_workload",
    "multi_tenant_forest_problem",
    "random_forest",
    "random_line_problem",
    "random_tree",
    "random_tree_edges",
    "random_tree_problem",
    "register_trajectory",
    "register_workload",
    "scenario",
    "trajectory_names",
    "workload_names",
]
