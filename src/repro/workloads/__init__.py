"""Workload generators and the paper's worked examples."""
from repro.workloads.demands import random_tree_problem
from repro.workloads.lines import random_line_problem
from repro.workloads.scenarios import (
    figure1_problem,
    figure2_network,
    figure2_problem,
    figure6_demand,
    figure6_network,
    figure6_problem,
)
from repro.workloads.trees import SHAPES, random_forest, random_tree, random_tree_edges

__all__ = [
    "SHAPES",
    "figure1_problem",
    "figure2_network",
    "figure2_problem",
    "figure6_demand",
    "figure6_network",
    "figure6_problem",
    "random_forest",
    "random_line_problem",
    "random_tree",
    "random_tree_edges",
    "random_tree_problem",
]
