"""Greedy admission baselines.

Not part of the paper's contributions, but the natural practical
comparator: sort demands by a priority key and admit each on the first
accessible placement that still fits.  Greedy has no constant-factor
guarantee on these inputs (long cheap demands can block many short
profitable ones), which the benchmarks make visible.
"""
from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.base import AlgorithmReport
from repro.core.demand import DemandInstance
from repro.core.problem import Problem
from repro.core.solution import CapacityLedger, Solution


def solve_greedy(problem: Problem, key: str = "profit") -> AlgorithmReport:
    """Greedy baseline.

    ``key`` selects the priority: ``'profit'`` (largest profit first) or
    ``'density'`` (largest profit per unit path length first).
    """
    by_demand: Dict[int, List[DemandInstance]] = {}
    for d in problem.instances:
        by_demand.setdefault(d.demand_id, []).append(d)
    for placements in by_demand.values():
        placements.sort(key=lambda d: (d.length, d.instance_id))

    if key == "profit":
        priority: Callable[[int], float] = lambda a_id: problem.demand_by_id(a_id).profit
    elif key == "density":

        def priority(a_id: int) -> float:
            shortest = min(d.length for d in by_demand[a_id])
            return problem.demand_by_id(a_id).profit / shortest

    else:
        raise ValueError(f"unknown greedy key {key!r}")

    order = sorted(by_demand, key=lambda a_id: (-priority(a_id), a_id))
    ledger = CapacityLedger()
    chosen: List[DemandInstance] = []
    for a_id in order:
        for d in by_demand[a_id]:
            if ledger.fits(d):
                ledger.add(d)
                chosen.append(d)
                break
    solution = Solution.from_instances(chosen)
    return AlgorithmReport(
        name=f"greedy({key})",
        solution=solution,
        guarantee=float("inf"),
        certified_upper_bound=float("inf"),
    )
