"""Exact optimum via branch-and-bound.

Explores demands in descending-profit order; at each demand it either
skips it or schedules one of its instances that still fits, pruning
branches whose optimistic completion (current profit + all remaining
profits) cannot beat the incumbent.  Exponential in the worst case --
intended for the small instances used to measure true approximation
ratios.  For larger instances use :func:`repro.core.lp.lp_upper_bound`
or the per-run dual certificates instead.
"""
from __future__ import annotations

from typing import Dict, List

from repro.core.demand import DemandInstance
from repro.core.problem import Problem
from repro.core.solution import CapacityLedger, Solution
from repro.core.types import EPS


class ExactSizeError(ValueError):
    """Raised when the instance is too large for branch-and-bound."""


def solve_exact(problem: Problem, max_demands: int = 26) -> Solution:
    """Compute a maximum-profit feasible solution exactly."""
    demands = sorted(problem.demands, key=lambda a: (-a.profit, a.demand_id))
    if len(demands) > max_demands:
        raise ExactSizeError(
            f"{len(demands)} demands exceeds the branch-and-bound cap "
            f"({max_demands}); use the LP bound instead"
        )
    by_demand: Dict[int, List[DemandInstance]] = {a.demand_id: [] for a in demands}
    for d in problem.instances:
        by_demand[d.demand_id].append(d)
    suffix = [0.0] * (len(demands) + 1)
    for i in range(len(demands) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + demands[i].profit

    best_profit = 0.0
    best_selection: List[DemandInstance] = []
    ledger = CapacityLedger()
    current: List[DemandInstance] = []

    def recurse(i: int, profit: float) -> None:
        nonlocal best_profit, best_selection
        if profit > best_profit + EPS:
            best_profit = profit
            best_selection = list(current)
        if i == len(demands):
            return
        if profit + suffix[i] <= best_profit + EPS:
            return  # even taking everything left cannot win
        a = demands[i]
        for d in by_demand[a.demand_id]:
            if ledger.fits(d):
                ledger.add(d)
                current.append(d)
                recurse(i + 1, profit + a.profit)
                current.pop()
                ledger.remove(d)
        recurse(i + 1, profit)  # skip demand i

    recurse(0, 0.0)
    return Solution.from_instances(best_selection)
