"""Panconesi-Sozio baselines [15, 16] for line-networks.

Reproduced in the vocabulary of this paper's framework (see the Remark
after Theorem 5.3): the PS algorithm uses the same length-class layered
decomposition (``Delta = 3``) but each epoch consists of a *single*
stage with satisfaction threshold ``lambda_0 = 1/(5+eps)`` -- an
instance that is ``lambda_0``-satisfied is simply ignored for the rest
of the first phase.  The slackness is therefore ``lambda = 1/(5+eps)``
and Lemma 3.1 gives an approximation factor of ``(Delta+1)/lambda =
4 * (5+eps) = 20 + eps'`` for the unit-height case.

For arbitrary heights, PS combine a wide run (unit-height algorithm)
with a narrow run under the same single-stage threshold; Lemma 6.1 then
gives ``(2 Delta^2 + 1)/lambda`` for the narrow side.  Their published
constant is ``55 + eps`` via a sharper case analysis; we report the
per-run certified bound, which is what the head-to-head experiments
compare.
"""
from __future__ import annotations

from typing import Optional

from repro.algorithms.base import AlgorithmReport, line_layouts, validate_engine_knobs
from repro.core.dual import HeightRaise, UnitRaise
from repro.core.framework import run_two_phase
from repro.core.problem import Problem
from repro.core.solution import combine_per_network

PS_UNIT_GUARANTEE = 20.0
PS_ARBITRARY_GUARANTEE = 55.0


def solve_ps_unit_lines(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    allow_heights: bool = False,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """The PS unit-height line algorithm (single stage, lambda=1/(5+eps))."""
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not allow_heights and not problem.is_unit_height:
        raise ValueError("PS unit-height baseline requires unit heights")
    layout = line_layouts(problem)
    lambda0 = 1.0 / (5.0 + epsilon)
    result = run_two_phase(
        problem.instances, layout, UnitRaise(), [lambda0], mis=mis, seed=seed,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    delta = max(layout.critical_set_size, 1)
    return AlgorithmReport(
        name="panconesi-sozio-unit",
        solution=result.solution,
        guarantee=(delta + 1) / lambda0,
        certified_upper_bound=result.certified_upper_bound,
        result=result,
    )


def solve_ps_arbitrary_lines(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """The PS arbitrary-height line algorithm (wide/narrow combination)."""
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not problem.has_wide:
        return _ps_narrow(
            problem, epsilon, mis, seed, engine, workers, backend,
            plan_granularity, phase2_engine,
        )
    if not problem.has_narrow:
        return solve_ps_unit_lines(
            problem, epsilon=epsilon, mis=mis, seed=seed, allow_heights=True,
            engine=engine, workers=workers, backend=backend,
            plan_granularity=plan_granularity, phase2_engine=phase2_engine,
        )
    wide_problem, narrow_problem = problem.split_by_width()
    wide = solve_ps_unit_lines(
        wide_problem, epsilon=epsilon, mis=mis, seed=seed, allow_heights=True,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    narrow = _ps_narrow(
        narrow_problem, epsilon, mis, seed, engine, workers, backend,
        plan_granularity, phase2_engine,
    )
    combined = combine_per_network(
        wide.solution, narrow.solution, sorted(problem.networks)
    )
    return AlgorithmReport(
        name="panconesi-sozio-arbitrary",
        solution=combined,
        guarantee=wide.guarantee + narrow.guarantee,
        certified_upper_bound=wide.certified_upper_bound + narrow.certified_upper_bound,
        parts={"wide": wide, "narrow": narrow},
    )


def _ps_narrow(
    problem: Problem, epsilon: float, mis: str, seed: int,
    engine: str = "reference", workers: Optional[int] = None,
    backend: Optional[str] = None, plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """PS narrow side: height raise rule, single-stage threshold."""
    layout = line_layouts(problem)
    lambda0 = 1.0 / (5.0 + epsilon)
    result = run_two_phase(
        problem.instances, layout, HeightRaise(), [lambda0], mis=mis, seed=seed,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    delta = max(layout.critical_set_size, 1)
    return AlgorithmReport(
        name="panconesi-sozio-narrow",
        solution=result.solution,
        guarantee=(2 * delta * delta + 1) / lambda0,
        certified_upper_bound=result.certified_upper_bound,
        result=result,
    )
