"""Exact polynomial-time optimum for unit heights on a single tree.

The unit-height, single-tree special case of the throughput
maximization problem -- maximum-weight edge-disjoint paths in a tree --
is solvable in polynomial time (Tarjan [18] via clique separators).  We
implement the standard bottom-up dynamic program:

Root the tree.  Every demand is *anchored* at the top vertex of its
path (the LCA of its endpoints), where it occupies one or two child
edges (its wings) plus a descending chain of edges in each wing's
subtree.  Processing vertices in post-order:

* ``best[v]`` -- optimal profit from demands anchored inside ``v``'s
  subtree -- equals the sum of the children's ``best`` plus the value
  of a maximum-weight matching over the demands anchored at ``v``
  (each demand is an edge joining its one or two wing children; two
  demands may not share a wing child).
* A demand's matching weight is its profit plus, for each wing chain,
  the *replacement cost* of blocking that chain: along the chain the
  anchored-demand matchings are re-solved with the chain's child edge
  banned.

Matchings are solved with :func:`networkx.max_weight_matching` on a
star gadget (single-wing demands get an auxiliary partner node).  The
function returns the optimal *value*; the test-suite cross-checks it
against branch-and-bound on random instances.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.demand import DemandInstance
from repro.core.problem import Problem
from repro.core.types import Vertex
from repro.trees.tree import TreeNetwork


class TreeDPError(ValueError):
    """Raised when the input is outside this solver's special case."""


def _anchored_demands(
    network: TreeNetwork, instances: Sequence[DemandInstance]
) -> Dict[Vertex, List[DemandInstance]]:
    anchored: Dict[Vertex, List[DemandInstance]] = {}
    for d in instances:
        top = min(d.path_vertex_seq, key=network.depth_of)
        anchored.setdefault(top, []).append(d)
    return anchored


def _wing_children(network: TreeNetwork, d: DemandInstance, top: Vertex) -> List[Vertex]:
    """Children of *top* through which ``path(d)`` descends (1 or 2)."""
    seq = d.path_vertex_seq
    i = seq.index(top)
    wings = []
    if i > 0:
        wings.append(seq[i - 1])
    if i < len(seq) - 1:
        wings.append(seq[i + 1])
    return wings


def _chain_below(d: DemandInstance, top: Vertex, wing: Vertex) -> List[Vertex]:
    """The descending path vertices from *wing* to the endpoint of *d*."""
    seq = list(d.path_vertex_seq)
    i = seq.index(top)
    if i > 0 and seq[i - 1] == wing:
        return list(reversed(seq[:i]))
    return seq[i + 1 :]


def solve_tree_dp(problem: Problem) -> float:
    """Exact optimum value for a unit-height single-tree problem."""
    if len(problem.networks) != 1:
        raise TreeDPError("tree DP requires exactly one network")
    if not problem.is_unit_height:
        raise TreeDPError("tree DP requires unit heights")
    (network,) = problem.networks.values()
    instances = problem.instances
    per_demand: Dict[int, int] = {}
    for d in instances:
        per_demand[d.demand_id] = per_demand.get(d.demand_id, 0) + 1
    if any(count > 1 for count in per_demand.values()):
        raise TreeDPError("tree DP requires one instance per demand")

    anchored = _anchored_demands(network, instances)
    best: Dict[Vertex, float] = {}
    matching_cache: Dict[Tuple[Vertex, Optional[Vertex]], float] = {}

    def children_sum(v: Vertex) -> float:
        return sum(best[c] for c in network.children_of(v))

    def chain_value(d: DemandInstance, top: Vertex, wing: Vertex) -> float:
        """Profit obtainable inside ``subtree(wing)`` while the chain of
        ``path(d)`` through it is blocked."""
        chain = _chain_below(d, top, wing)
        value = best[chain[-1]]  # endpoint vertex: nothing blocked below it
        for i in range(len(chain) - 2, -1, -1):
            y, nxt = chain[i], chain[i + 1]
            value += children_sum(y) - best[nxt] + matching_value(y, nxt)
        return value

    def demand_weight(d: DemandInstance, top: Vertex) -> float:
        w = d.profit
        for wing in _wing_children(network, d, top):
            w += chain_value(d, top, wing) - best[wing]
        return w

    def matching_value(v: Vertex, banned: Optional[Vertex]) -> float:
        """Max-weight selection of demands anchored at *v*, no two
        sharing a wing child, none using the *banned* child."""
        key = (v, banned)
        if key in matching_cache:
            return matching_cache[key]
        graph = nx.Graph()
        single_best: Dict[Vertex, float] = {}
        for d in anchored.get(v, []):
            wings = _wing_children(network, d, v)
            if banned is not None and banned in wings:
                continue
            w = demand_weight(d, v)
            if w <= 0:
                continue
            if len(wings) == 1:
                c = wings[0]
                single_best[c] = max(single_best.get(c, 0.0), w)
            else:
                c1, c2 = wings
                if not graph.has_edge(c1, c2) or graph[c1][c2]["weight"] < w:
                    graph.add_edge(c1, c2, weight=w)
        for c, w in single_best.items():
            graph.add_edge(c, ("aux", c), weight=w)
        if graph.number_of_edges() == 0:
            matching_cache[key] = 0.0
            return 0.0
        matching = nx.max_weight_matching(graph, maxcardinality=False)
        value = sum(graph[a][b]["weight"] for a, b in matching)
        matching_cache[key] = value
        return value

    # Post-order over the rooted tree.
    order: List[Vertex] = []
    stack = [network.root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(network.children_of(v))
    for v in reversed(order):
        best[v] = children_sum(v) + matching_value(v, None)
    return best[network.root]
