"""Baselines: Panconesi-Sozio, greedy, exact branch-and-bound, tree DP."""
from repro.baselines.exact import ExactSizeError, solve_exact
from repro.baselines.greedy import solve_greedy
from repro.baselines.panconesi_sozio import (
    solve_ps_arbitrary_lines,
    solve_ps_unit_lines,
)
from repro.baselines.tree_dp import TreeDPError, solve_tree_dp

__all__ = [
    "ExactSizeError",
    "TreeDPError",
    "solve_exact",
    "solve_greedy",
    "solve_ps_arbitrary_lines",
    "solve_ps_unit_lines",
    "solve_tree_dp",
]
