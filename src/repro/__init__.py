"""repro: reproduction of *Distributed Algorithms for Scheduling on Line
and Tree Networks* (Chakaravarthy, Roy, Sabharwal; PODC 2012).

Quickstart::

    from repro import (
        Demand, Problem, TreeNetwork,
        solve_unit_trees, solve_exact,
    )

    net = TreeNetwork(0, [(0, 1), (1, 2), (1, 3)])
    demands = [Demand(0, 0, 2, profit=2.0), Demand(1, 2, 3, profit=1.0)]
    problem = Problem(networks={0: net}, demands=demands)
    report = solve_unit_trees(problem, epsilon=0.05)
    print(report.profit, "vs opt", solve_exact(problem).profit)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim reproductions.
"""
from repro.algorithms import (
    AlgorithmReport,
    solve_arbitrary_lines,
    solve_arbitrary_trees,
    solve_auto,
    solve_narrow_lines,
    solve_narrow_trees,
    solve_sequential,
    solve_unit_lines,
    solve_unit_trees,
)
from repro.baselines import (
    solve_exact,
    solve_greedy,
    solve_ps_arbitrary_lines,
    solve_ps_unit_lines,
    solve_tree_dp,
)
from repro.core import (
    Demand,
    DemandInstance,
    Problem,
    Solution,
    WindowDemand,
)
from repro.core.lp import lp_upper_bound
from repro.trees import (
    TreeDecomposition,
    TreeNetwork,
    build_balancing,
    build_ideal,
    build_root_fixing,
    make_line_network,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmReport",
    "Demand",
    "DemandInstance",
    "Problem",
    "Solution",
    "TreeDecomposition",
    "TreeNetwork",
    "WindowDemand",
    "build_balancing",
    "build_ideal",
    "build_root_fixing",
    "lp_upper_bound",
    "make_line_network",
    "solve_arbitrary_lines",
    "solve_arbitrary_trees",
    "solve_auto",
    "solve_exact",
    "solve_greedy",
    "solve_narrow_lines",
    "solve_narrow_trees",
    "solve_ps_arbitrary_lines",
    "solve_ps_unit_lines",
    "solve_sequential",
    "solve_tree_dp",
    "solve_unit_lines",
    "solve_unit_trees",
    "__version__",
]
