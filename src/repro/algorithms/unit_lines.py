"""Theorem 7.1: distributed (4+eps)-approximation, unit heights, lines.

Line-networks with windows: demands expand into one instance per
(resource, start slot).  The length-class layered decomposition
(``Delta = 3``, implicit in Panconesi-Sozio [16]) replaces the ideal
tree decomposition, and the stage ratio becomes ``xi = 8/9``
(``= 2*4/(2*4+1)``).  Lemma 3.1 certifies
``p(S) >= ((1-eps)/4) p(Opt)`` -- a factor-5 improvement over the
Panconesi-Sozio guarantee of ``20+eps``.
"""
from __future__ import annotations

from typing import Optional

from repro.algorithms.base import AlgorithmReport, line_layouts, validate_engine_knobs
from repro.core.dual import UnitRaise
from repro.core.framework import geometric_thresholds, run_two_phase, unit_xi
from repro.core.problem import Problem

#: Critical set size of the length-class decomposition (Section 7).
LINE_DELTA = 3


def solve_unit_lines(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    allow_heights: bool = False,
    xi: Optional[float] = None,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Run the Theorem 7.1 algorithm on a line-network problem."""
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not allow_heights and not problem.is_unit_height:
        raise ValueError(
            "unit-height algorithm requires unit heights "
            "(pass allow_heights=True to relax wide instances)"
        )
    layout = line_layouts(problem)
    delta = max(layout.critical_set_size, 1)
    if xi is None:
        xi = unit_xi(max(delta, LINE_DELTA))
    thresholds = geometric_thresholds(xi, epsilon)
    result = run_two_phase(
        problem.instances, layout, UnitRaise(), thresholds, mis=mis, seed=seed,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    guarantee = (delta + 1) / result.slackness
    return AlgorithmReport(
        name="unit-lines",
        solution=result.solution,
        guarantee=guarantee,
        certified_upper_bound=result.certified_upper_bound,
        result=result,
    )
