"""Theorem 5.3: distributed (7+eps)-approximation, unit heights, trees.

Per tree-network, build the ideal tree decomposition (Lemma 4.1) and its
layered decomposition (Lemma 4.3, ``Delta = 6``); then run the two-phase
framework with stage thresholds ``1 - xi^j`` where ``xi = 14/15``
(``= 2*7/(2*7+1)``), until every instance is ``(1-eps)``-satisfied.
Lemma 3.1 then certifies ``p(S) >= ((1-eps)/7) p(Opt)``.
"""
from __future__ import annotations

from typing import Optional

from repro.algorithms.base import AlgorithmReport, tree_layouts, validate_engine_knobs
from repro.core.dual import UnitRaise
from repro.core.framework import geometric_thresholds, run_two_phase, unit_xi
from repro.core.problem import Problem

#: Critical set size guaranteed by the ideal decomposition (Lemma 4.3).
TREE_DELTA = 6


def solve_unit_trees(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    decomposition: str = "ideal",
    allow_heights: bool = False,
    xi: Optional[float] = None,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Run the Theorem 5.3 algorithm on *problem*.

    Parameters
    ----------
    problem:
        The scheduling problem; demands must have unit height unless
        ``allow_heights`` is set (used by the wide-instance subroutine of
        Section 6, where edge-disjointness is the correct relaxation).
    epsilon:
        The paper's ``eps``; the slackness reached is ``>= 1 - eps``.
    mis:
        MIS oracle: ``'luby'`` (randomized, the paper's headline choice)
        or ``'greedy'`` (deterministic sweep).
    decomposition:
        ``'ideal'`` (paper), or ``'balancing'`` / ``'root_fixing'`` for
        the ablation of Section 4.2.
    xi:
        Override the stage ratio (defaults to ``2(Delta+1)/(2(Delta+1)+1)``
        for the realized ``Delta``, i.e. ``14/15`` when ``Delta = 6``).
    engine:
        First-phase engine: ``'reference'``, ``'incremental'``,
        ``'parallel'`` or ``'vectorized'`` (the numpy columnar kernel).
    workers:
        Pool size for the pooled engines (``'parallel'``, and
        ``'vectorized'`` when given; default: usable CPUs, capped).
    backend:
        Execution backend for the pooled engines: ``'thread'``
        (default), ``'process'`` (real CPU parallelism via pickled epoch
        jobs) or ``'serial'`` (debugging).
    plan_granularity:
        ``'epoch'`` (default, bit-identical to the serial engines),
        ``'component'`` (relaxed: splits an epoch's disconnected
        conflict components across workers; schedule counters may
        differ) or ``'auto'`` (split only when the plan's component
        structure predicts a win, strict otherwise).
    phase2_engine:
        Second-phase (admission) engine: ``'reference'``, ``'sliced'``
        (capacity-disjoint components popped on the executor backends)
        or ``'vectorized'`` (columnar CSR ledger) -- bit-identical by
        construction (:mod:`repro.core.engines.admission`).
    """
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not allow_heights and not problem.is_unit_height:
        raise ValueError(
            "unit-height algorithm requires unit heights "
            "(pass allow_heights=True to relax wide instances)"
        )
    layout, _ = tree_layouts(problem, decomposition)
    delta = max(layout.critical_set_size, 1)
    if xi is None:
        xi = unit_xi(max(delta, TREE_DELTA))
    thresholds = geometric_thresholds(xi, epsilon)
    result = run_two_phase(
        problem.instances, layout, UnitRaise(), thresholds, mis=mis, seed=seed,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    guarantee = (delta + 1) / result.slackness
    return AlgorithmReport(
        name=f"unit-trees({decomposition})",
        solution=result.solution,
        guarantee=guarantee,
        certified_upper_bound=result.certified_upper_bound,
        result=result,
    )
