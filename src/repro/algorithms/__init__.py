"""The paper's algorithms (Theorems 5.3, 6.3, 7.1, 7.2; Appendix A)."""
from repro.algorithms.arbitrary_lines import solve_arbitrary_lines, solve_narrow_lines
from repro.algorithms.arbitrary_trees import solve_arbitrary_trees
from repro.algorithms.auto import problem_family, solve_auto
from repro.algorithms.base import AlgorithmReport, line_layouts, tree_layouts
from repro.algorithms.narrow_trees import solve_narrow_trees
from repro.algorithms.sequential import solve_sequential
from repro.algorithms.unit_lines import solve_unit_lines
from repro.algorithms.unit_trees import solve_unit_trees

__all__ = [
    "AlgorithmReport",
    "line_layouts",
    "problem_family",
    "solve_arbitrary_lines",
    "solve_arbitrary_trees",
    "solve_auto",
    "solve_narrow_lines",
    "solve_narrow_trees",
    "solve_sequential",
    "solve_unit_lines",
    "solve_unit_trees",
    "tree_layouts",
]
