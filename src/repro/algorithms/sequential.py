"""Appendix A: the sequential two-phase algorithm.

Per network, root the tree arbitrarily (the root-fixing decomposition)
and order demand instances by *descending* depth of their capture node
``mu(d)``.  Process networks one by one; in each iteration raise the
single earliest unsatisfied instance, taking as critical edges the
wing(s) of ``mu(d)`` on ``path(d)`` (``Delta = 2``).  Observation A.1
gives the interference property, and with slackness ``lambda = 1``
Lemma 3.1 yields a 3-approximation.

With a single tree-network, every demand has exactly one instance, so
the ``alpha`` variables are unnecessary; skipping them improves the
objective-increase factor from ``Delta + 1`` to ``Delta`` and the ratio
to 2 -- matching Lewin-Eytan et al. [13].

The round complexity is one iteration per raise (up to ``n``), which is
exactly the inefficiency the distributed algorithm of Section 5 removes.
"""
from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.algorithms.base import AlgorithmReport, validate_engine_knobs
from repro.core.demand import DemandInstance
from repro.core.dual import UnitRaise
from repro.core.framework import (
    InstanceLayout,
    TwoPhaseResult,
    run_first_phase,
    run_second_phase,
)
from repro.core.problem import Problem
from repro.core.types import InstanceId
from repro.trees.layered import wings
from repro.trees.root_fixing import build_root_fixing


class EarliestInSigmaOracle:
    """'MIS' oracle returning the single earliest instance in sigma.

    A module-level class (not a closure) so the oracle pickles, which
    the parallel engine's process backend and component mode require;
    ``rank`` maps instance id -> (network order, -capture depth, id).
    """

    def __init__(self, rank: Dict[InstanceId, Tuple[int, int, int]]) -> None:
        self.rank = rank

    def __call__(
        self, candidates: Sequence[DemandInstance], adjacency, context=None
    ) -> Tuple[Set[InstanceId], int]:
        return (
            {min((d.instance_id for d in candidates), key=self.rank.__getitem__)},
            0,
        )


def solve_sequential(
    problem: Problem,
    use_alpha: Optional[bool] = None,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Run the Appendix A sequential algorithm.

    ``use_alpha`` defaults to skipping alpha exactly when no demand has
    more than one instance (the single-tree refinement).
    """
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not problem.is_unit_height:
        raise ValueError("the Appendix A algorithm is for the unit-height case")
    instances = problem.instances
    if use_alpha is None:
        per_demand: Dict[int, int] = {}
        for d in instances:
            per_demand[d.demand_id] = per_demand.get(d.demand_id, 0) + 1
        use_alpha = any(count > 1 for count in per_demand.values())

    # Build root-fixing decompositions, capture depths and wing sets.
    group_of: Dict[InstanceId, int] = {}
    pi: Dict[InstanceId, Tuple] = {}
    rank: Dict[InstanceId, Tuple[int, int, int]] = {}
    network_order = {nid: i + 1 for i, nid in enumerate(sorted(problem.networks))}
    by_net = problem.instances_by_network
    for nid in sorted(problem.networks):
        mine = by_net.get(nid, ())
        if not mine:
            continue
        td = build_root_fixing(problem.networks[nid])
        for d in mine:
            mu = td.capture_node(d)
            group_of[d.instance_id] = network_order[nid]
            pi[d.instance_id] = wings(d, mu)
            # Deeper captures first within the network (descending depth).
            rank[d.instance_id] = (
                network_order[nid],
                -td.depth[mu],
                d.instance_id,
            )
    layout = InstanceLayout(
        group_of=group_of, pi=pi, n_epochs=len(network_order)
    )

    # One epoch per network, single stage with threshold 1 (lambda = 1).
    pooled = engine in ("parallel", "vectorized")
    sliced_pop = phase2_engine == "sliced"
    dual, stack, events, counters = run_first_phase(
        instances, layout, UnitRaise(use_alpha=use_alpha), [1.0],
        EarliestInSigmaOracle(rank),
        engine=engine,
        workers=workers if (pooled or not sliced_pop) else None,
        backend=backend if (pooled or not sliced_pop) else None,
        plan_granularity=plan_granularity,
    )
    solution = run_second_phase(
        stack,
        engine=phase2_engine,
        workers=workers if sliced_pop else None,
        backend=backend if sliced_pop else None,
        dual=dual,
        counters=counters,
    )
    result = TwoPhaseResult(
        solution=solution,
        dual=dual,
        events=events,
        stack=stack,
        slackness=1.0,
        layout=layout,
        counters=counters,
        thresholds=[1.0],
    )
    delta = max((len(p) for p in pi.values()), default=0)
    guarantee = float(delta + (1 if use_alpha else 0))
    return AlgorithmReport(
        name="sequential" + ("" if use_alpha else "-single-tree"),
        solution=solution,
        guarantee=guarantee,
        certified_upper_bound=result.certified_upper_bound,
        result=result,
    )
