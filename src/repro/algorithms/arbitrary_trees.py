"""Theorem 6.3: distributed (80+eps)-approximation, arbitrary heights, trees.

Split the demands into wide (``h > 1/2``) and narrow (``h <= 1/2``):

* wide instances can never overlap pairwise in a feasible solution, so
  the unit-height algorithm of Theorem 5.3 applies verbatim and yields a
  ``(7+eps)`` guarantee against the wide-only optimum;
* narrow instances run the Lemma 6.2 algorithm, ``(73+eps)``.

The two solutions are merged network-by-network, keeping whichever side
earns more on each tree (Section 6, "Overall Algorithm").  Since
``p(Opt) <= p(Opt_wide) + p(Opt_narrow)`` and the merged solution earns
``max(p(S1), p(S2))``, the combined guarantee is the *sum* of the two
factors: ``80 + eps``.
"""
from __future__ import annotations

from typing import Optional

from repro.algorithms.base import AlgorithmReport, validate_engine_knobs
from repro.algorithms.narrow_trees import solve_narrow_trees
from repro.algorithms.unit_trees import solve_unit_trees
from repro.core.problem import Problem
from repro.core.solution import combine_per_network


def solve_arbitrary_trees(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    decomposition: str = "ideal",
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Run the Theorem 6.3 algorithm on *problem* (any heights)."""
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not problem.has_wide:
        return solve_narrow_trees(
            problem, epsilon=epsilon, mis=mis, seed=seed,
            decomposition=decomposition, engine=engine, workers=workers,
            backend=backend, plan_granularity=plan_granularity,
            phase2_engine=phase2_engine,
        )
    if not problem.has_narrow:
        return solve_unit_trees(
            problem,
            epsilon=epsilon,
            mis=mis,
            seed=seed,
            decomposition=decomposition,
            allow_heights=True,
            engine=engine,
            workers=workers,
            backend=backend,
            plan_granularity=plan_granularity,
            phase2_engine=phase2_engine,
        )
    wide_problem, narrow_problem = problem.split_by_width()
    wide = solve_unit_trees(
        wide_problem,
        epsilon=epsilon,
        mis=mis,
        seed=seed,
        decomposition=decomposition,
        allow_heights=True,
        engine=engine,
        workers=workers,
        backend=backend,
        plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    narrow = solve_narrow_trees(
        narrow_problem, epsilon=epsilon, mis=mis, seed=seed,
        decomposition=decomposition, engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    combined = combine_per_network(
        wide.solution, narrow.solution, sorted(problem.networks)
    )
    return AlgorithmReport(
        name="arbitrary-trees",
        solution=combined,
        guarantee=wide.guarantee + narrow.guarantee,
        certified_upper_bound=wide.certified_upper_bound + narrow.certified_upper_bound,
        parts={"wide": wide, "narrow": narrow},
    )
