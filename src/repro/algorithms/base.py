"""Shared plumbing for the paper's algorithms.

Each algorithm is a thin configuration of the two-phase framework:
a layout (which layered decomposition), a threshold schedule, and a
raise rule.  :class:`AlgorithmReport` is the uniform result object the
examples, tests and benchmarks consume.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.framework import (
    BACKENDS,
    ENGINES,
    InstanceLayout,
    TwoPhaseResult,
    validate_backend as _validate_backend,
    validate_engine as _validate_engine,
    validate_phase2_engine as _validate_phase2_engine,
    validate_plan_granularity as _validate_plan_granularity,
)
from repro.core.engines.journal import active_journal
from repro.core.problem import Problem
from repro.core.solution import Solution
from repro.lines.layered import layered_by_length
from repro.trees.balancing import build_balancing
from repro.trees.decomposition import TreeDecomposition
from repro.trees.ideal import build_ideal
from repro.trees.layered import LayeredDecomposition, layered_from_tree_decomposition
from repro.trees.root_fixing import build_root_fixing
from repro.trees.tree import TreeNetwork

#: Named tree-decomposition builders (Section 4).
DECOMPOSITION_BUILDERS: Dict[str, Callable[[TreeNetwork], TreeDecomposition]] = {
    "ideal": build_ideal,
    "balancing": build_balancing,
    "root_fixing": build_root_fixing,
}


def validate_engine(engine: str) -> str:
    """Validate a first-phase engine name early, before any layout work.

    Every ``solve_*`` entry point accepts ``engine=`` and passes it to
    :func:`repro.core.framework.run_two_phase`; validating here gives
    composite algorithms (wide/narrow splits) one error site instead of
    failing halfway through the first sub-run.  Delegates to
    :func:`repro.core.framework.validate_engine`, the single source of
    truth for the engine registry and its error message.
    """
    return _validate_engine(engine)


def validate_backend(backend):
    """Validate a parallel-engine backend name early (``None`` = default).

    Same single-error-site rationale as :func:`validate_engine`;
    delegates to :func:`repro.core.framework.validate_backend`.
    """
    return _validate_backend(backend)


def validate_engine_knobs(
    engine, backend=None, plan_granularity=None, phase2_engine="reference"
) -> str:
    """Validate the engine/backend/granularity/phase2 knobs before any
    layout work.

    The one-call form every ``solve_*`` entry point uses: composite
    algorithms (wide/narrow splits) fail at a single site instead of
    halfway through the first sub-run, and each name is checked by its
    single source of truth in :mod:`repro.core.framework`.
    """
    _validate_engine(engine)
    _validate_backend(backend)
    _validate_plan_granularity(plan_granularity)
    _validate_phase2_engine(phase2_engine)
    return engine


@dataclass
class AlgorithmReport:
    """Uniform result of one algorithm run.

    ``guarantee`` is the *provable* per-run approximation factor implied
    by Lemma 3.1 / Lemma 6.1 for the realized ``Delta`` and ``lambda``
    (e.g. ``7/(1-eps)`` for Theorem 5.3); ``certified_upper_bound`` is
    the weak-duality bound ``val(alpha, beta)/lambda >= p(Opt)`` computed
    from the run's own duals.
    """

    name: str
    solution: Solution
    guarantee: float
    certified_upper_bound: float
    result: Optional[TwoPhaseResult] = None
    parts: Dict[str, "AlgorithmReport"] = field(default_factory=dict)

    @property
    def profit(self) -> float:
        """``p(S)``."""
        return self.solution.profit

    @property
    def certified_ratio(self) -> float:
        """Certified upper bound divided by achieved profit."""
        if self.profit <= 0:
            return float("inf")
        return self.certified_upper_bound / self.profit

    @property
    def communication_rounds(self) -> int:
        """Simulated synchronous rounds (summed over parts if composite)."""
        if self.result is not None:
            return self.result.counters.communication_rounds
        return sum(p.communication_rounds for p in self.parts.values())


def tree_layouts(
    problem: Problem, decomposition: str = "ideal"
) -> Tuple[InstanceLayout, Dict[int, TreeDecomposition]]:
    """Build per-network tree decompositions and merge their layered
    decompositions into one :class:`InstanceLayout` (Lemma 4.3).

    When a first-phase journal is active (the delta-solve path), the
    per-network work is served from the journal's layout cache where
    the inputs match: a tree decomposition is a pure function of the
    network, and a layered decomposition of (decomposition, instance
    expansion), so the cache keys embed exactly that content and a
    reused object is value-identical to a rebuild.  This -- not the
    epoch replay -- is the bulk of a warm start's latency win: churn
    mutates demands far more often than networks.
    """
    try:
        builder = DECOMPOSITION_BUILDERS[decomposition]
    except KeyError:
        raise ValueError(
            f"unknown decomposition {decomposition!r}; "
            f"choose from {sorted(DECOMPOSITION_BUILDERS)}"
        )
    journal = active_journal()
    decomps: Dict[int, TreeDecomposition] = {}
    layered: List[LayeredDecomposition] = []
    by_net = problem.instances_by_network
    for nid in sorted(problem.networks):
        instances = by_net.get(nid, ())
        if not instances:
            continue
        net = problem.networks[nid]
        td = ld = None
        if journal is not None:
            dkey = (nid, decomposition, net.vertices, tuple(sorted(net.edges())))
            lkey = dkey + (instances,)
            td = journal.lookup_decomp(dkey)
            ld = journal.lookup_layered(lkey)
        if ld is not None:
            journal.layouts_reused += 1
        if td is None:
            td = builder(net)
        if ld is None:
            ld = layered_from_tree_decomposition(td, instances)
        if journal is not None:
            journal.record_layouts(dkey, td, lkey, ld)
        decomps[nid] = td
        layered.append(ld)
    return InstanceLayout.from_layered(layered), decomps


def line_layouts(problem: Problem) -> InstanceLayout:
    """Length-class layered decompositions for every line-network
    (Section 7, ``Delta = 3``).

    Like :func:`tree_layouts`, an active first-phase journal (the
    delta-solve path) serves the per-network work from its
    content-keyed layout cache: ``layered_by_length`` is a pure
    function of (network id, instance expansion), which is exactly
    what the key embeds, so a reused object is value-identical to a
    rebuild.
    """
    journal = active_journal()
    layered: List[LayeredDecomposition] = []
    by_net = problem.instances_by_network
    for nid in sorted(problem.networks):
        if not problem.networks[nid].is_path_graph():
            raise ValueError(f"network {nid} is not a line-network")
        instances = by_net.get(nid, ())
        if not instances:
            continue
        ld = lkey = None
        if journal is not None:
            lkey = (nid, "length", instances)
            ld = journal.lookup_layered(lkey)
        if ld is not None:
            journal.layouts_reused += 1
        else:
            ld = layered_by_length(nid, instances)
        if journal is not None:
            journal.record_layered(lkey, ld)
        layered.append(ld)
    return InstanceLayout.from_layered(layered)
