"""Lemma 6.2: distributed algorithm for narrow instances on trees.

All demands must be narrow (``h <= 1/2``).  Uses the same layered
decompositions as the unit-height case (``Delta = 6``) but the
height-generalized dual and raise rule of Section 6.1, and the slower
stage ratio ``xi = c/(c + hmin)`` so the kill-chain argument still
doubles profits.  Lemma 6.1 certifies
``p(S) >= (lambda / (2 Delta^2 + 1)) p(Opt)``, i.e. ``(73+eps)`` for
``Delta = 6``.
"""
from __future__ import annotations

from typing import Optional

from repro.algorithms.base import AlgorithmReport, tree_layouts, validate_engine_knobs
from repro.algorithms.unit_trees import TREE_DELTA
from repro.core.dual import HeightRaise
from repro.core.framework import geometric_thresholds, narrow_xi, run_two_phase
from repro.core.problem import Problem


def solve_narrow_trees(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    decomposition: str = "ideal",
    hmin: Optional[float] = None,
    xi: Optional[float] = None,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Run the Lemma 6.2 narrow-instance algorithm on *problem*.

    ``hmin`` defaults to the smallest demand height; the paper assumes it
    is known to (or fixed a priori for) all processors.
    """
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not all(a.is_narrow for a in problem.demands):
        raise ValueError("narrow algorithm requires every height <= 1/2")
    if hmin is None:
        hmin = problem.hmin
    if hmin > problem.hmin:
        raise ValueError(f"hmin={hmin} exceeds an actual demand height")
    layout, _ = tree_layouts(problem, decomposition)
    delta = max(layout.critical_set_size, 1)
    if xi is None:
        xi = narrow_xi(max(delta, TREE_DELTA), hmin)
    thresholds = geometric_thresholds(xi, epsilon)
    result = run_two_phase(
        problem.instances, layout, HeightRaise(), thresholds, mis=mis, seed=seed,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    guarantee = (2 * delta * delta + 1) / result.slackness
    return AlgorithmReport(
        name=f"narrow-trees({decomposition})",
        solution=result.solution,
        guarantee=guarantee,
        certified_upper_bound=result.certified_upper_bound,
        result=result,
    )
