"""Theorem 7.2: distributed (23+eps)-approximation, arbitrary heights, lines.

The wide/narrow combination of Section 6 instantiated with the
length-class decomposition (``Delta = 3``): wide instances run the
Theorem 7.1 algorithm (``4+eps``), narrow instances run the
height-raise framework with ``xi = c'/(c' + hmin)``
(``(2*9+1)/lambda = 19+eps``), and the per-network merge gives
``23 + eps`` -- improving Panconesi-Sozio's ``55 + eps``.
"""
from __future__ import annotations

from typing import Optional

from repro.algorithms.base import AlgorithmReport, line_layouts, validate_engine_knobs
from repro.algorithms.unit_lines import LINE_DELTA, solve_unit_lines
from repro.core.dual import HeightRaise
from repro.core.framework import geometric_thresholds, narrow_xi, run_two_phase
from repro.core.problem import Problem
from repro.core.solution import combine_per_network


def solve_narrow_lines(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    hmin: Optional[float] = None,
    xi: Optional[float] = None,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Narrow-instance algorithm on lines (Section 7, arbitrary heights)."""
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not all(a.is_narrow for a in problem.demands):
        raise ValueError("narrow algorithm requires every height <= 1/2")
    if hmin is None:
        hmin = problem.hmin
    layout = line_layouts(problem)
    delta = max(layout.critical_set_size, 1)
    if xi is None:
        xi = narrow_xi(max(delta, LINE_DELTA), hmin)
    thresholds = geometric_thresholds(xi, epsilon)
    result = run_two_phase(
        problem.instances, layout, HeightRaise(), thresholds, mis=mis, seed=seed,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    guarantee = (2 * delta * delta + 1) / result.slackness
    return AlgorithmReport(
        name="narrow-lines",
        solution=result.solution,
        guarantee=guarantee,
        certified_upper_bound=result.certified_upper_bound,
        result=result,
    )


def solve_arbitrary_lines(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Run the Theorem 7.2 algorithm on a line-network problem."""
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if not problem.has_wide:
        return solve_narrow_lines(
            problem, epsilon=epsilon, mis=mis, seed=seed, engine=engine,
            workers=workers, backend=backend,
            plan_granularity=plan_granularity,
            phase2_engine=phase2_engine,
        )
    if not problem.has_narrow:
        return solve_unit_lines(
            problem, epsilon=epsilon, mis=mis, seed=seed, allow_heights=True,
            engine=engine, workers=workers, backend=backend,
            plan_granularity=plan_granularity,
            phase2_engine=phase2_engine,
        )
    wide_problem, narrow_problem = problem.split_by_width()
    wide = solve_unit_lines(
        wide_problem, epsilon=epsilon, mis=mis, seed=seed, allow_heights=True,
        engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    narrow = solve_narrow_lines(
        narrow_problem, epsilon=epsilon, mis=mis, seed=seed, engine=engine,
        workers=workers, backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
    combined = combine_per_network(
        wide.solution, narrow.solution, sorted(problem.networks)
    )
    return AlgorithmReport(
        name="arbitrary-lines",
        solution=combined,
        guarantee=wide.guarantee + narrow.guarantee,
        certified_upper_bound=wide.certified_upper_bound + narrow.certified_upper_bound,
        parts={"wide": wide, "narrow": narrow},
    )
