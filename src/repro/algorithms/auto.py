"""Family-dispatching solve entry point (the service-facing facade).

The paper's algorithms split by network family: line-networks get the
length-class machinery of Section 7 (``Delta = 3``), general trees the
layered tree decompositions of Sections 4-6 (``Delta = 6``).  Callers
that hold a concrete :class:`~repro.core.problem.Problem` -- the
scheduling service most of all -- should not have to re-derive that
choice, so :func:`solve_auto` inspects the problem and delegates to the
arbitrary-heights entry point of the right family (which in turn
subsumes the unit/narrow/wide special cases).

Dispatch rule: a problem is *line-shaped* when it contains a window
demand (windows only expand on path networks) or when every network is
a path graph -- the length-class decomposition is then valid and gives
the strictly better ``Delta``.  Everything else is tree-shaped.
"""
from __future__ import annotations

from typing import Optional

from repro.algorithms.arbitrary_lines import solve_arbitrary_lines
from repro.algorithms.arbitrary_trees import solve_arbitrary_trees
from repro.algorithms.base import AlgorithmReport, validate_engine_knobs
from repro.core.demand import WindowDemand
from repro.core.problem import Problem

__all__ = ["problem_family", "solve_auto"]


def problem_family(problem: Problem) -> str:
    """``'line'`` or ``'tree'``: which algorithm family applies."""
    if any(isinstance(a, WindowDemand) for a in problem.demands):
        return "line"
    if all(net.is_path_graph() for net in problem.networks.values()):
        return "line"
    return "tree"


def solve_auto(
    problem: Problem,
    epsilon: float = 0.1,
    mis: str = "luby",
    seed: int = 0,
    decomposition: str = "ideal",
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> AlgorithmReport:
    """Solve *problem* with the algorithm family its networks demand.

    Accepts the union of the family entry points' knobs;
    ``decomposition`` applies to the tree family only (the line family
    always uses length classes) and is ignored for line-shaped
    problems.
    """
    validate_engine_knobs(engine, backend, plan_granularity, phase2_engine)
    if problem_family(problem) == "line":
        return solve_arbitrary_lines(
            problem, epsilon=epsilon, mis=mis, seed=seed, engine=engine,
            workers=workers, backend=backend, plan_granularity=plan_granularity,
            phase2_engine=phase2_engine,
        )
    return solve_arbitrary_trees(
        problem, epsilon=epsilon, mis=mis, seed=seed,
        decomposition=decomposition, engine=engine, workers=workers,
        backend=backend, plan_granularity=plan_granularity,
        phase2_engine=phase2_engine,
    )
