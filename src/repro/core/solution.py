"""Feasible solutions and capacity accounting.

A feasible solution (Section 2) selects a subset ``S`` of demand
instances such that (i) at most one instance per demand is selected and
(ii) on every edge of every network the selected heights sum to at most
one unit.  :class:`CapacityLedger` maintains that state incrementally and
is the engine behind the second phase of the framework, the greedy
baselines, and the exact solvers.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.demand import DemandInstance
from repro.core.types import EPS, DemandId, EdgeKey


class InfeasibleSolutionError(ValueError):
    """Raised when a claimed solution violates feasibility."""


class CapacityLedger:
    """Incremental feasibility state: per-edge load and used demand ids."""

    def __init__(self) -> None:
        self._load: Dict[EdgeKey, float] = {}
        self._used_demands: Set[DemandId] = set()

    def fits(self, d: DemandInstance) -> bool:
        """Whether *d* can be added without violating feasibility."""
        if d.demand_id in self._used_demands:
            return False
        for e in d.path_edges:
            if self._load.get(e, 0.0) + d.height > 1.0 + EPS:
                return False
        return True

    def add(self, d: DemandInstance) -> None:
        """Add *d*; raises if it does not fit."""
        if not self.fits(d):
            raise InfeasibleSolutionError(
                f"instance {d.instance_id} (demand {d.demand_id}) does not fit"
            )
        self._used_demands.add(d.demand_id)
        for e in d.path_edges:
            self._load[e] = self._load.get(e, 0.0) + d.height

    def remove(self, d: DemandInstance) -> None:
        """Undo a previous :meth:`add` of *d* (used by branch-and-bound)."""
        if d.demand_id not in self._used_demands:
            raise KeyError(f"demand {d.demand_id} is not in the ledger")
        self._used_demands.discard(d.demand_id)
        for e in d.path_edges:
            remaining = self._load.get(e, 0.0) - d.height
            if remaining <= EPS:
                self._load.pop(e, None)
            else:
                self._load[e] = remaining

    def load(self, e: EdgeKey) -> float:
        """Current height load on edge *e*."""
        return self._load.get(e, 0.0)

    def demand_used(self, demand_id: DemandId) -> bool:
        """Whether some instance of this demand was already admitted."""
        return demand_id in self._used_demands


@dataclass(frozen=True)
class Solution:
    """An (assumed feasible) set of selected demand instances."""

    selected: Tuple[DemandInstance, ...]

    @staticmethod
    def from_instances(instances: Iterable[DemandInstance]) -> "Solution":
        """Build a solution with a deterministic instance order."""
        return Solution(tuple(sorted(instances, key=lambda d: d.instance_id)))

    @property
    def profit(self) -> float:
        """Total profit ``p(S)``."""
        return sum(d.profit for d in self.selected)

    @property
    def demand_ids(self) -> Tuple[DemandId, ...]:
        """Ids of the scheduled demands."""
        return tuple(sorted(d.demand_id for d in self.selected))

    def __len__(self) -> int:
        return len(self.selected)

    def verify(self) -> None:
        """Raise :class:`InfeasibleSolutionError` unless feasible."""
        ledger = CapacityLedger()
        for d in self.selected:
            ledger.add(d)

    def is_feasible(self) -> bool:
        """Whether the selection satisfies all feasibility constraints."""
        try:
            self.verify()
        except InfeasibleSolutionError:
            return False
        return True

    def restricted_to_network(self, network_id: int) -> "Solution":
        """Instances of this solution scheduled on the given network."""
        return Solution(
            tuple(d for d in self.selected if d.network_id == network_id)
        )


def combine_per_network(
    first: Solution, second: Solution, network_ids: Iterable[int]
) -> Solution:
    """Combine two feasible solutions network-by-network (Section 6).

    For each network, keep whichever of the two solutions earns more
    profit *on that network*.  Used by the arbitrary-height algorithms to
    merge the wide-instance and narrow-instance solutions; feasibility is
    preserved because the two sides schedule disjoint sets of demands
    (every demand is entirely wide or entirely narrow).
    """
    chosen: List[DemandInstance] = []
    for nid in network_ids:
        a = first.restricted_to_network(nid)
        b = second.restricted_to_network(nid)
        chosen.extend(a.selected if a.profit >= b.profit else b.selected)
    return Solution.from_instances(chosen)
