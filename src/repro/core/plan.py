"""Epoch-graph planning for the first phase.

The first phase (Figure 7) iterates epochs strictly in sequence, but the
dual variables live only on edges (``beta``) and demands (``alpha``):
epoch ``k``'s behaviour depends on an earlier epoch ``j`` only if some
instance of ``Gk`` reads a dual variable that some instance of ``Gj``
writes.  Raises on ``d`` write ``alpha(a_d)`` and ``beta`` on
``pi(d) <= path(d)``; the satisfaction test of ``d'`` reads
``alpha(a_d')`` and ``beta`` over ``path(d')``.  Hence the conservative
*interaction* test used here: **two epochs interact iff their groups
share a path edge or a demand** -- the same reverse-index buckets that
power :class:`repro.distributed.conflict.InstanceIndex`.

:class:`EpochPlan` materializes

* per-epoch slices of the instance set (members, in input order),
* per-epoch conflict adjacency (the conflict graph induced on the
  group -- all any engine's MIS ever looks at),
* per-epoch :class:`~repro.distributed.conflict.InstanceIndex` reverse
  indices (dirty-set queries restricted to the group),
* the epoch-interaction graph, and
* *waves*: the longest-path layering of the interaction precedence DAG
  (``j -> k`` iff ``j < k`` and they interact).  Epochs in one wave are
  pairwise non-interacting, and every interacting predecessor of an
  epoch sits in an earlier wave -- so a wave's epochs can execute
  concurrently while the whole schedule stays equivalent to the strict
  sequential order.  Waves are the independence classes the parallel
  engine (:mod:`repro.core.engines.parallel`) executes.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.demand import DemandInstance
from repro.core.engines.artifacts import InstanceLayout, group_members
from repro.core.types import InstanceId
from repro.distributed.conflict import (
    ConflictAdjacency,
    InstanceIndex,
    build_instance_index,
)

#: Planner granularities: ``"epoch"`` (strict, bit-identical to the
#: serial engines), ``"component"`` (split one epoch's disconnected
#: conflict components into separate jobs; relaxed counter contract)
#: and ``"auto"`` (split only when the plan's component structure
#: predicts a win -- see :meth:`EpochPlan.recommend_split`; inherits
#: the relaxed contract only when it actually splits).
GRANULARITIES = ("epoch", "component", "auto")

#: The auto heuristic's decision threshold: split when at least this
#: fraction of the member mass lies outside the epochs' largest
#: conflict components (the mass that splitting actually peels off the
#: per-epoch critical path).  Below it, the extra jobs, oracle clones
#: and merges cannot pay for themselves.
AUTO_SPLIT_RATIO = 0.25

#: The auto heuristic's overhead guard: mean members per component must
#: reach this before splitting.  Every component job pays a fixed toll
#: (oracle clone, dual priming, merge bookkeeping); a plan shattered
#: into near-singleton components -- high gain, no per-job work to
#: amortize the toll -- is the regime where component mode measurably
#: *loses* to strict epochs, so auto keeps it strict.
AUTO_MIN_COMPONENT_SIZE = 4


def validate_granularity(granularity: str) -> str:
    """Validate a planner granularity name (the single source of truth)."""
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown plan granularity {granularity!r}; "
            f"choose from {GRANULARITIES}"
        )
    return granularity


@dataclass
class EpochPlan:
    """A plan for executing the first phase's epochs out of strict order.

    ``waves[w]`` lists the epochs (ascending) executable concurrently in
    wave ``w``; empty epochs (no members) carry no constraints and land
    in wave 0.
    """

    n_epochs: int
    #: epoch -> its group members, in global instance order.
    members: Dict[int, List[DemandInstance]]
    #: epoch -> conflict adjacency induced on its members.
    adjacency: Dict[int, ConflictAdjacency]
    #: epoch -> reverse edge/demand index over its members.
    index: Dict[int, InstanceIndex]
    #: epoch -> interacting epochs (symmetric, irreflexive).
    interactions: Dict[int, Set[int]]
    #: epoch -> path edges / demands it shares with *other* epochs: the
    #: only dual-variable keys whose master values an epoch can inherit
    #: from earlier waves (everything else it touches is private to it).
    shared_edges: Dict[int, Set] = field(default_factory=dict)
    shared_demands: Dict[int, Set] = field(default_factory=dict)
    #: independence classes in execution order.
    waves: List[List[int]] = field(default_factory=list)
    #: the granularity this plan was built for (informational; the
    #: component cache below is filled lazily either way).
    granularity: str = "epoch"
    #: epoch -> connected components of its conflict graph, as member-id
    #: lists ordered by smallest id (lazy cache; see epoch_components).
    components: Dict[int, List[List[InstanceId]]] = field(default_factory=dict)

    @property
    def n_waves(self) -> int:
        """Length of the wave schedule (sequential depth)."""
        return len(self.waves)

    @property
    def width(self) -> int:
        """Max number of *non-empty* epochs in one wave -- the measured
        epoch-independence width (1 means no exploitable parallelism)."""
        widths = [
            sum(1 for k in wave if self.members.get(k))
            for wave in self.waves
        ]
        return max(widths, default=0)

    def epoch_components(self, epoch: int) -> List[List[InstanceId]]:
        """Connected components of *epoch*'s conflict graph (cached).

        Members of different components share no demand and no path edge
        (sharing either is a conflict), so their dual reads and writes
        are disjoint: each component can run the first-phase loop on its
        own and the union reproduces the epoch's feasible output -- the
        relaxed ``plan_granularity="component"`` mode.  Components are
        listed by ascending smallest member id, members sorted within,
        so the split is deterministic.
        """
        cached = self.components.get(epoch)
        if cached is None:
            adj = self.adjacency[epoch]
            seen: Set[InstanceId] = set()
            comps: List[List[InstanceId]] = []
            for root in sorted(adj):
                if root in seen:
                    continue
                comp = [root]
                seen.add(root)
                frontier = [root]
                while frontier:
                    for nb in adj[frontier.pop()]:
                        if nb not in seen:
                            seen.add(nb)
                            comp.append(nb)
                            frontier.append(nb)
                comps.append(sorted(comp))
            cached = self.components.setdefault(epoch, comps)
        return cached

    def component_split_gain(self) -> float:
        """Fraction of member mass that component-splitting parallelizes.

        For each non-empty epoch, the largest conflict component is the
        split schedule's critical path -- everything *outside* it is
        work that ``plan_granularity="component"`` can run concurrently
        with that path.  The gain is that outside mass over the total
        member count: 0.0 when every epoch is one connected component
        (splitting is pure overhead), approaching 1.0 for many small
        equal components (the component-count / member-size regime
        where splitting shines, e.g. merged multi-tenant epochs).
        """
        total = 0
        largest = 0
        for epoch, mine in self.members.items():
            if not mine:
                continue
            total += len(mine)
            largest += max(
                (len(c) for c in self.epoch_components(epoch)), default=0
            )
        if total == 0:
            return 0.0
        return 1.0 - largest / total

    def mean_component_size(self) -> float:
        """Mean members per conflict component over non-empty epochs."""
        total = 0
        n_components = 0
        for epoch, mine in self.members.items():
            if not mine:
                continue
            total += len(mine)
            n_components += len(self.epoch_components(epoch))
        if n_components == 0:
            return 0.0
        return total / n_components

    def recommend_split(
        self,
        threshold: float = AUTO_SPLIT_RATIO,
        min_component_size: float = AUTO_MIN_COMPONENT_SIZE,
    ) -> bool:
        """The ``"auto"`` granularity decision: split iff the gain pays.

        Two conditions, both from the component-count / member-size
        structure of the plan: :meth:`component_split_gain` must reach
        *threshold* (enough mass moves off the per-epoch critical
        components to matter) and :meth:`mean_component_size` must
        reach *min_component_size* (enough work per job to amortize
        its fixed toll -- near-singleton shatter is where splitting
        loses).  Deterministic per plan, so ``"auto"`` keys caches and
        reproduces runs stably.
        """
        return (
            self.component_split_gain() >= threshold
            and self.mean_component_size() >= min_component_size
        )

    def component_slices(
        self, epoch: int
    ) -> List[Tuple[List[DemandInstance], ConflictAdjacency, InstanceIndex]]:
        """Per-component ``(members, adjacency, index)`` slices of *epoch*.

        Members keep their global input order; adjacency neighbor sets
        are shared with (already lie within) the epoch slice; the
        reverse index is rebuilt over the component's members only
        (via :func:`~repro.distributed.conflict.build_instance_index`,
        the same constructor the incremental engine uses globally).
        These are exactly the job ingredients the parallel engine hands
        a backend under ``plan_granularity="component"``.
        """
        epoch_adj = self.adjacency[epoch]
        slices = []
        for ids in self.epoch_components(epoch):
            keep = set(ids)
            members = [d for d in self.members[epoch] if d.instance_id in keep]
            adjacency = {i: epoch_adj[i] for i in ids}
            slices.append((members, adjacency, build_instance_index(members)))
        return slices

    def verify(self) -> None:
        """Check the plan's defining invariants (for tests and benches).

        Raises ``AssertionError`` if a wave contains interacting epochs,
        if an interacting pair is not ordered by wave the way epoch order
        demands, or if the waves don't partition ``1..n_epochs``.
        """
        seen: List[int] = []
        wave_of: Dict[int, int] = {}
        for w, wave in enumerate(self.waves):
            for k in wave:
                wave_of[k] = w
            seen.extend(wave)
            for a in wave:
                inside = self.interactions.get(a, set()).intersection(wave)
                assert not inside, f"wave {w} contains interacting epochs {a} and {inside}"
        assert sorted(seen) == list(range(1, self.n_epochs + 1)), (
            "waves must partition the epochs"
        )
        for k, nbrs in self.interactions.items():
            for j in nbrs:
                if j < k:
                    assert wave_of[j] < wave_of[k], (
                        f"interacting epochs {j} < {k} must run in earlier waves"
                    )

    @staticmethod
    def build(
        instances: Sequence[DemandInstance],
        layout: InstanceLayout,
        conflict_adj: Optional[ConflictAdjacency] = None,
        granularity: str = "epoch",
    ) -> "EpochPlan":
        """Build the plan for *instances* under *layout*.

        When *conflict_adj* (a prebuilt global conflict graph) is given,
        per-epoch adjacency is sliced from it; otherwise each group's
        conflict graph is built directly -- cheaper, since cross-epoch
        conflict pairs are never materialized.  ``granularity="component"``
        and ``granularity="auto"`` additionally precompute each epoch's
        conflict components (the lazily-cached :meth:`epoch_components`)
        -- the component mode needs them to slice jobs, the auto mode to
        take its :meth:`recommend_split` decision.
        """
        validate_granularity(granularity)
        groups = group_members(instances, layout)
        members: Dict[int, List[DemandInstance]] = {}
        adjacency: Dict[int, ConflictAdjacency] = {}
        index: Dict[int, InstanceIndex] = {}
        # Reverse buckets over *all* instances: which epochs touch each
        # path edge / demand.  Any bucket with >= 2 epochs makes all its
        # epoch pairs interact.
        epochs_by_edge: Dict[object, Set[int]] = {}
        epochs_by_demand: Dict[int, Set[int]] = {}
        for epoch, mine in groups.items():
            members[epoch] = mine
            # One bucketing pass per epoch feeds all three products: the
            # reverse index, the group conflict adjacency, and the
            # epoch-interaction buckets.
            by_edge: Dict[object, Set[InstanceId]] = {}
            by_demand: Dict[int, Set[InstanceId]] = {}
            for d in mine:
                by_demand.setdefault(d.demand_id, set()).add(d.instance_id)
                for e in d.path_edges:
                    by_edge.setdefault(e, set()).add(d.instance_id)
            # Plain sets instead of InstanceIndex's canonical frozensets:
            # nothing mutates the buckets after this point, and skipping
            # the conversion keeps plan construction cheap.
            index[epoch] = InstanceIndex(by_edge=by_edge, by_demand=by_demand)
            if conflict_adj is not None:
                ids: Set[InstanceId] = {d.instance_id for d in mine}
                adj = {i: conflict_adj[i] & ids for i in ids}
            else:
                adj = {d.instance_id: set() for d in mine}
                for bucket in list(by_edge.values()) + list(by_demand.values()):
                    if len(bucket) < 2:
                        continue
                    for i in bucket:
                        adj[i] |= bucket
                for i, nbrs in adj.items():
                    nbrs.discard(i)
            adjacency[epoch] = adj
            for e in by_edge:
                epochs_by_edge.setdefault(e, set()).add(epoch)
            for a in by_demand:
                epochs_by_demand.setdefault(a, set()).add(epoch)
        interactions: Dict[int, Set[int]] = {
            k: set() for k in range(1, layout.n_epochs + 1)
        }
        shared_edges: Dict[int, Set] = {k: set() for k in groups}
        shared_demands: Dict[int, Set] = {k: set() for k in groups}
        for e, bucket in epochs_by_edge.items():
            if len(bucket) < 2:
                continue
            for a in bucket:
                interactions[a] |= bucket
                shared_edges[a].add(e)
        for dem, bucket in epochs_by_demand.items():
            if len(bucket) < 2:
                continue
            for a in bucket:
                interactions[a] |= bucket
                shared_demands[a].add(dem)
        for k, nbrs in interactions.items():
            nbrs.discard(k)
        # Longest-path layering of the precedence DAG (edges j -> k for
        # interacting j < k): wave(k) = 1 + max wave over predecessors.
        level: Dict[int, int] = {}
        for k in range(1, layout.n_epochs + 1):
            preds = [level[j] for j in interactions[k] if j < k]
            level[k] = (1 + max(preds)) if preds else 0
        waves: List[List[int]] = [[] for _ in range(max(level.values(), default=-1) + 1)]
        for k in sorted(level):
            waves[level[k]].append(k)
        plan = EpochPlan(
            n_epochs=layout.n_epochs,
            members=members,
            adjacency=adjacency,
            index=index,
            interactions=interactions,
            shared_edges=shared_edges,
            shared_demands=shared_demands,
            waves=waves,
            granularity=granularity,
        )
        if granularity in ("component", "auto"):
            for epoch in groups:
                plan.epoch_components(epoch)
        return plan
