"""Deterministic byte encoding and stable digests of nested values.

The service layer keys its result cache by content hashes, and the
disk tier re-verifies unpickled entries against a recorded digest of
the result's semantic tuple -- both need *one* encoding of nested
Python values that is stable across processes, interpreter runs and
platforms.  ``repr`` is not that encoding: float repr depends on the
shortest-round-trip algorithm only since 3.1 (fine), but set and
frozenset iteration order is randomized per process, and relying on
``repr`` of containers silently couples the hash to it.

:func:`canonical_bytes` therefore defines its own tiny recursive
format:

* ints and bools encode with an explicit type tag (so ``1`` and
  ``True`` differ);
* floats encode via :meth:`float.hex` -- exact, locale-independent,
  round-trippable;
* strings/bytes are length-prefixed;
* tuples and lists encode elementwise (tagged by kind);
* sets and frozensets are encoded as the *sorted* sequence of their
  elements' encodings, making the result independent of hash
  randomization;
* dicts encode as the sequence of ``(key, value)`` pairs sorted by the
  key's encoding;
* ``None`` has its own tag.

Anything else is rejected loudly: a new type sneaking into a semantic
tuple must make the caller decide how it canonicalizes, not silently
hash by object identity.
"""
from __future__ import annotations

import hashlib
from typing import List

__all__ = ["CanonicalizationError", "canonical_bytes", "stable_digest"]


class CanonicalizationError(TypeError):
    """Raised when a value has no defined canonical encoding."""


def _encode(value, out: List[bytes]) -> None:
    # Exact-type fast paths first: semantic tuples and canonical problem
    # forms are almost entirely ints, floats and tuples, and the
    # per-element dispatch below is the measured hot spot of
    # fingerprinting.  Subclasses (bool included -- it must not encode
    # as its int value) fall through to the isinstance chain, which
    # preserves the exact same byte output.
    kind = type(value)
    if kind is int:
        out.append(b"i%d;" % value)
        return
    if kind is float:
        out.append(b"f" + value.hex().encode("ascii") + b";")
        return
    if kind is tuple:
        out.append(b"t(")
        for item in value:
            _encode(item, out)
        out.append(b")")
        return
    if value is None:
        out.append(b"N;")
    elif value is True:
        out.append(b"b1;")
    elif value is False:
        out.append(b"b0;")
    elif isinstance(value, int):
        out.append(b"i" + str(value).encode("ascii") + b";")
    elif isinstance(value, float):
        out.append(b"f" + value.hex().encode("ascii") + b";")
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s" + str(len(raw)).encode("ascii") + b":" + raw)
    elif isinstance(value, bytes):
        out.append(b"y" + str(len(value)).encode("ascii") + b":" + value)
    elif isinstance(value, (tuple, list)):
        out.append(b"t(" if isinstance(value, tuple) else b"l(")
        for item in value:
            _encode(item, out)
        out.append(b")")
    elif isinstance(value, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in value)
        out.append(b"S(")
        out.extend(parts)
        out.append(b")")
    elif isinstance(value, dict):
        pairs = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in value.items()
        )
        out.append(b"d(")
        for k, v in pairs:
            out.extend((k, v))
        out.append(b")")
    else:
        raise CanonicalizationError(
            f"no canonical encoding for {type(value).__name__}: {value!r}"
        )


def canonical_bytes(value) -> bytes:
    """Encode *value* as deterministic, process-independent bytes."""
    out: List[bytes] = []
    _encode(value, out)
    return b"".join(out)


def stable_digest(value) -> str:
    """Hex SHA-256 of the canonical encoding of *value*."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
