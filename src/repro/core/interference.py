"""Verification of the interference property (Section 3.2).

The approximation guarantee of Lemma 3.1 requires: for any two
*overlapping* instances ``d1, d2`` raised in the first phase with ``d1``
raised first, ``path(d2)`` must include a critical edge of ``d1``.
(Conflicts through the shared demand are handled by ``alpha`` and need no
edge condition.)

These checkers replay actual raise logs and re-derive the key
inequalities of the proofs, turning the paper's lemmas into executable
assertions used across the test suite:

* :func:`check_interference` -- the property itself.
* :func:`check_predecessor_bound` -- claim (2) of Lemma 3.1:
  ``p(d) >= sum_{d' in pred(d)} delta(d')`` for every raised ``d``.
* :func:`check_dual_objective_bound` -- ``val(alpha,beta) <=
  (increase factor) * sum delta`` (inequalities (1) and (4)).
"""
from __future__ import annotations

from typing import Sequence

from repro.core.dual import DualState, RaiseEvent, RaiseRule


class InterferenceViolation(AssertionError):
    """Raised when a raise log violates the interference property."""


def check_interference(events: Sequence[RaiseEvent]) -> None:
    """Check the interference property over a full raise log.

    Events raised in the same step belong to one independent set and are
    mutually non-conflicting, so only strictly earlier raises matter; we
    still check every ordered pair for safety (a same-step overlapping
    pair would itself be a bug).
    """
    for i, first in enumerate(events):
        d1 = first.instance
        crit = set(first.critical_edges)
        for later in events[i + 1 :]:
            d2 = later.instance
            if not d1.overlaps(d2):
                continue
            if d2.path_edges.isdisjoint(crit):
                raise InterferenceViolation(
                    f"instance {d2.instance_id} (raised at {later.step_tuple}) "
                    f"misses every critical edge of earlier instance "
                    f"{d1.instance_id} (raised at {first.step_tuple})"
                )


def check_predecessor_bound(events: Sequence[RaiseEvent]) -> None:
    """Claim (2) of Lemma 3.1 on the actual log.

    For each raised instance ``d``, the sum of ``delta`` over its
    predecessors (conflicting instances raised no later) must not exceed
    ``p(d)``.  This is the inequality that turns the interference
    property into the approximation bound.
    """
    for i, ev in enumerate(events):
        d = ev.instance
        pred_sum = ev.delta
        for earlier in events[:i]:
            if earlier.instance.conflicts_with(d):
                pred_sum += earlier.delta
        if pred_sum > d.profit + 1e-6 * max(1.0, d.profit):
            raise InterferenceViolation(
                f"predecessor deltas of instance {d.instance_id} sum to "
                f"{pred_sum:.6g} > profit {d.profit:.6g}"
            )


def check_dual_objective_bound(
    dual: DualState, events: Sequence[RaiseEvent], raise_rule: RaiseRule
) -> None:
    """Inequality (1)/(4): the dual objective is at most the per-raise
    increase factor times the sum of deltas."""
    budget = sum(
        raise_rule.objective_increase_factor(len(ev.critical_edges)) * ev.delta
        for ev in events
    )
    value = dual.value()
    if value > budget + 1e-6 * max(1.0, budget):
        raise InterferenceViolation(
            f"dual objective {value:.6g} exceeds raise budget {budget:.6g}"
        )
